//! The checked-in sample dataset must stay parseable forever: these tests
//! double as wire-format regression fixtures.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use bgp_community_intent::dictionary::GroundTruthDictionary;
use bgp_community_intent::intent::{run_inference, InferenceConfig};
use bgp_community_intent::mrt::obs::read_observations;
use bgp_community_intent::relationships::SiblingMap;
use bgp_community_intent::types::{Intent, Observation};

fn sample(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("data/sample")
        .join(name)
}

fn load_mrt(name: &str) -> Vec<Observation> {
    let file = File::open(sample(name)).unwrap_or_else(|e| panic!("open {name}: {e}"));
    read_observations(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn rib_snapshot_parses_with_expected_shape() {
    let observations = load_mrt("rib.mrt");
    assert_eq!(observations.len(), 2713, "RIB route count drifted");
    // Every observation has the vantage point at the head of its path.
    for obs in &observations {
        assert_eq!(obs.path.head(), Some(obs.vp));
        assert!(!obs.path.has_loop());
    }
    // Communities are present in bulk.
    let with_comms = observations
        .iter()
        .filter(|o| !o.communities.is_empty())
        .count();
    assert!(
        with_comms * 2 > observations.len(),
        "most routes should carry communities"
    );
}

#[test]
fn update_stream_parses() {
    let observations = load_mrt("updates.day1.mrt");
    assert_eq!(observations.len(), 72, "update count drifted");
    // Update timestamps are one day after the RIB snapshot.
    assert!(observations
        .iter()
        .all(|o| o.time >= 1_682_899_200 + 86_400));
}

#[test]
fn dictionary_and_siblings_parse() {
    let dict = GroundTruthDictionary::from_json(BufReader::new(
        File::open(sample("dictionary.json")).unwrap(),
    ))
    .unwrap();
    let (action, info) = dict.entry_counts();
    assert_eq!((action, info), (55, 118), "dictionary entry counts drifted");
    assert_eq!(dict.covered_ases().len(), 10);

    let siblings: SiblingMap =
        serde_json::from_reader(BufReader::new(File::open(sample("siblings.json")).unwrap()))
            .unwrap();
    assert!(siblings.org_count() > 50);
}

#[test]
fn end_to_end_inference_on_sample_data() {
    let mut observations = load_mrt("rib.mrt");
    observations.extend(load_mrt("updates.day1.mrt"));
    let dict = GroundTruthDictionary::from_json(BufReader::new(
        File::open(sample("dictionary.json")).unwrap(),
    ))
    .unwrap();
    let siblings: SiblingMap =
        serde_json::from_reader(BufReader::new(File::open(sample("siblings.json")).unwrap()))
            .unwrap();

    let result = run_inference(
        &observations,
        &siblings,
        &InferenceConfig::default(),
        Some(&dict),
    );
    let eval = result.evaluation.expect("dictionary supplied");
    assert!(
        eval.total > 50,
        "too few covered communities: {}",
        eval.total
    );
    // The tiny 0.08-scale world is below the threshold's comfort zone;
    // demand decent-but-not-full-scale accuracy.
    assert!(eval.accuracy() > 0.7, "accuracy {:.3}", eval.accuracy());

    // And score against the full truth file, not just the dictionary.
    let truth: Vec<serde_json::Value> =
        serde_json::from_reader(BufReader::new(File::open(sample("truth.json")).unwrap())).unwrap();
    let truth_map: std::collections::HashMap<String, Intent> = truth
        .iter()
        .map(|v| {
            (
                v["community"].as_str().unwrap().to_string(),
                v["intent"].as_str().unwrap().parse().unwrap(),
            )
        })
        .collect();
    let mut total = 0;
    let mut correct = 0;
    for (c, label) in &result.inference.labels {
        if let Some(t) = truth_map.get(&c.to_string()) {
            total += 1;
            if t == label {
                correct += 1;
            }
        }
    }
    assert!(total > 200);
    assert!(
        correct as f64 / total as f64 > 0.7,
        "all-AS accuracy {:.3} over {total}",
        correct as f64 / total as f64
    );
}
