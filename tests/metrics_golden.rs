//! Library-level golden-metrics determinism: the deterministic sections
//! of the metrics snapshot (counters, gauges, histograms) must be
//! byte-identical regardless of worker-thread count, because every value
//! in them is a pure function of the input — sharded ingestion, the
//! sharded stats kernel, and per-thread histogram shards all merge to
//! the same totals the sequential run produces.

use std::fs;
use std::path::PathBuf;

use bgp_experiments::{Scenario, ScenarioConfig};
use bgp_intent::{run_inference_store_telemetry, InferenceConfig};
use bgp_mrt::obs::{
    read_observations_parallel_store_telemetry, write_rib_dump, write_update_stream,
};
use bgp_mrt::{IngestTuning, RecoverConfig};
use bgp_types::obs::Telemetry;
use bgp_types::store::ObservationStore;
use bgp_types::Asn;

/// Write the scenario's dataset as on-disk MRT archives (one RIB file,
/// two churn days) so the parallel file reader has real sharding to do.
fn archives(scenario: &Scenario) -> Vec<PathBuf> {
    let dir = std::env::temp_dir().join("bgp-metrics-golden");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let sim = scenario.simulator();
    let mut paths = Vec::new();

    let mut buf = Vec::new();
    let rib = sim.collect_rib(&scenario.vps);
    write_rib_dump(&mut buf, scenario.sim_cfg.base_timestamp, &rib).unwrap();
    let rib_path = dir.join("rib.mrt");
    fs::write(&rib_path, &buf).unwrap();
    paths.push(rib_path);

    for day in 1..3u32 {
        buf.clear();
        let updates = sim.collect_churn_day(&scenario.vps, day);
        write_update_stream(&mut buf, Asn::new(6447), &updates).unwrap();
        let path = dir.join(format!("updates.day{day}.mrt"));
        fs::write(&path, &buf).unwrap();
        paths.push(path);
    }
    paths
}

#[test]
fn deterministic_metrics_are_byte_identical_across_thread_counts() {
    let scenario = Scenario::build(&ScenarioConfig {
        scale: 0.08,
        documented: 10,
        ..ScenarioConfig::default()
    });
    let paths = archives(&scenario);

    let run = |threads: usize| {
        let tel = Telemetry::with_metrics();
        let (files, _report) = read_observations_parallel_store_telemetry(
            &paths,
            &RecoverConfig::default(),
            &IngestTuning::default(),
            threads,
            &tel,
        );
        let mut store = ObservationStore::new();
        for file in files {
            store.merge(&file.store);
        }
        let result = run_inference_store_telemetry(
            &store,
            &scenario.siblings,
            &InferenceConfig {
                threads,
                ..InferenceConfig::default()
            },
            Some(&scenario.dict),
            &tel,
        );
        let snapshot = result.metrics.expect("telemetry run records a snapshot");
        serde_json::to_string_pretty(&snapshot.deterministic()).unwrap()
    };

    let golden = run(1);
    assert!(golden.contains("ingest/records_read"), "{golden}");
    // The readahead/view-decode counters are pure functions of the input
    // too: blocks are completely filled (count = ceil(bytes / block size)
    // per file) and the scratch high-water mark is determined by the
    // largest record, so both must hold byte-identical across threads.
    assert!(golden.contains("ingest/readahead_blocks"), "{golden}");
    assert!(golden.contains("ingest/arena_bytes"), "{golden}");
    assert!(golden.contains("classify/cluster_ratio"), "{golden}");
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            golden,
            "metrics diverged at {threads} threads"
        );
    }
}
