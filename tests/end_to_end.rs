//! Cross-crate integration tests: the full pipeline from world generation
//! through MRT serialization to inference and evaluation.

use bgp_community_intent::experiments::{Scenario, ScenarioConfig};
use bgp_community_intent::intent::{run_inference, Exclusion, InferenceConfig};
use bgp_community_intent::topology::Tier;
use bgp_community_intent::types::{Asn, Intent};

fn small_scenario() -> Scenario {
    Scenario::build(&ScenarioConfig {
        scale: 0.25,
        documented: 25,
        ..ScenarioConfig::default()
    })
}

#[test]
fn pipeline_reaches_high_accuracy_on_a_small_world() {
    let scenario = small_scenario();
    let observations = scenario.collect(2);
    assert!(!observations.is_empty());
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        Some(&scenario.dict),
    );
    let eval = result.evaluation.expect("dictionary supplied");
    assert!(eval.total > 100, "only {} covered communities", eval.total);
    assert!(
        eval.accuracy() > 0.85,
        "accuracy {:.3} too low at small scale",
        eval.accuracy()
    );
    // Both intents must be represented in the output.
    let (action, info) = result.inference.intent_counts();
    assert!(action > 20, "only {action} action labels");
    assert!(info > 20, "only {info} info labels");
    assert!(
        info > action,
        "info should outnumber action (paper: 54K vs 24K)"
    );
}

#[test]
fn clustering_beats_no_clustering() {
    // The paper's central Fig 9 claim, as an invariant.
    let scenario = small_scenario();
    let observations = scenario.collect(2);
    let clustered = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        Some(&scenario.dict),
    );
    let isolated = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig {
            min_gap: 0,
            ..InferenceConfig::default()
        },
        Some(&scenario.dict),
    );
    let acc_clustered = clustered.evaluation.unwrap().accuracy();
    let acc_isolated = isolated.evaluation.unwrap().accuracy();
    assert!(
        acc_clustered > acc_isolated,
        "clustering ({acc_clustered:.3}) must beat isolation ({acc_isolated:.3})"
    );
}

#[test]
fn ixp_route_server_communities_are_excluded_not_classified() {
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );
    let rses: Vec<Asn> = scenario.topo.asns_of_tier(Tier::IxpRouteServer);
    let mut saw_rs_community = false;
    for (c, reason) in &result.inference.excluded {
        if rses.iter().any(|rs| rs.value() == c.asn as u32) {
            saw_rs_community = true;
            assert_eq!(*reason, Exclusion::NeverOnPath, "wrong exclusion for {c}");
        }
    }
    // And none were labeled.
    for c in result.inference.labels.keys() {
        assert!(
            !rses.iter().any(|rs| rs.value() == c.asn as u32),
            "route-server community {c} was classified"
        );
    }
    assert!(saw_rs_community, "no route-server community ever observed");
}

#[test]
fn private_asn_communities_are_excluded() {
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );
    let private: Vec<_> = result
        .inference
        .excluded
        .iter()
        .filter(|(c, _)| Asn::new(c.asn as u32).is_private())
        .collect();
    assert!(!private.is_empty(), "no private-ASN residue observed");
    for (_, reason) in private {
        assert_eq!(*reason, Exclusion::PrivateAsn);
    }
}

#[test]
fn mrt_round_trip_preserves_inference_results() {
    // Inference over directly-collected observations must equal inference
    // over the same data after an MRT write/read cycle (Scenario::collect
    // already round-trips; compare against the raw simulator output).
    let scenario = small_scenario();
    let sim = scenario.simulator();
    let direct = sim.collect_rib(&scenario.vps);
    let via_mrt = scenario.collect(1);

    let cfg = InferenceConfig::default();
    let a = run_inference(&direct, &scenario.siblings, &cfg, None);
    let b = run_inference(&via_mrt, &scenario.siblings, &cfg, None);
    assert_eq!(a.inference.labels, b.inference.labels);
    assert_eq!(a.inference.excluded, b.inference.excluded);
}

#[test]
fn determinism_across_full_pipeline() {
    let cfg = ScenarioConfig {
        scale: 0.1,
        documented: 10,
        ..ScenarioConfig::default()
    };
    let run = || {
        let scenario = Scenario::build(&cfg);
        let observations = scenario.collect(2);
        let result = run_inference(
            &observations,
            &scenario.siblings,
            &InferenceConfig::default(),
            Some(&scenario.dict),
        );
        (
            observations.len(),
            result.inference.labels.len(),
            result.evaluation.unwrap().accuracy(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ground_truth_dictionary_is_sound_for_observed_communities() {
    // Every observed community the dictionary labels must agree with the
    // owning AS's true policy — the dictionary never overgeneralizes.
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let mut checked = 0;
    for obs in &observations {
        for c in &obs.communities {
            if let Some(dict_label) = scenario.dict.lookup(*c) {
                let truth = scenario
                    .policies
                    .intent_of(*c)
                    .expect("dictionary only covers defined values");
                assert_eq!(dict_label, truth, "dictionary mislabels {c}");
                checked += 1;
            }
        }
    }
    assert!(checked > 1000, "only {checked} labeled sightings");
}

#[test]
fn sibling_expansion_changes_exclusions_only_conservatively() {
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let with = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );
    let without = run_inference(
        &observations,
        &bgp_community_intent::relationships::SiblingMap::default(),
        &InferenceConfig::default(),
        None,
    );
    // Sibling expansion can only move communities from excluded to
    // classified (never-on-path gets rescued by a sibling in paths), and
    // can flip off-path counts to on-path.
    assert!(with.inference.excluded.len() <= without.inference.excluded.len());
}

#[test]
fn intent_labels_mostly_match_true_policies_even_outside_dictionary() {
    // The dictionary covers only documented ASes, but the simulation knows
    // every AS's truth: overall (undocumented included) accuracy should
    // also be high.
    let scenario = small_scenario();
    let observations = scenario.collect(2);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );
    let mut total = 0;
    let mut correct = 0;
    for (c, label) in &result.inference.labels {
        if let Some(truth) = scenario.policies.intent_of(*c) {
            total += 1;
            if truth == *label {
                correct += 1;
            }
        }
    }
    assert!(total > 300);
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.85, "all-AS accuracy {accuracy:.3}");
}

#[test]
fn excluded_plus_labeled_equals_observed() {
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );
    assert_eq!(
        result.inference.labels.len() + result.inference.excluded.len(),
        result.stats.community_count()
    );
}

#[test]
fn evaluation_confusion_sums_to_total() {
    let scenario = small_scenario();
    let observations = scenario.collect(1);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        Some(&scenario.dict),
    );
    let eval = result.evaluation.unwrap();
    let sum: usize = eval.confusion.iter().flatten().sum();
    assert_eq!(sum, eval.total);
    let diag = eval.confusion[0][0] + eval.confusion[1][1];
    assert_eq!(diag, eval.correct);
    // Precision/recall are well-defined for both classes here.
    for class in [Intent::Action, Intent::Information] {
        assert!(eval.precision(class) > 0.0);
        assert!(eval.recall(class) > 0.0);
    }
}
