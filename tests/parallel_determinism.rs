//! The parallel pipeline's headline guarantee: at *any* thread count the
//! output is bit-identical to the sequential run — for multi-file MRT
//! ingestion (including files with injected corruption, where the merged
//! byte ledger must still balance), for strict ingestion, and for the full
//! statistics → clustering → classification → evaluation pipeline.

use std::fs;
use std::path::{Path, PathBuf};

use bgp_community_intent::experiments::{Scenario, ScenarioConfig};
use bgp_community_intent::intent::{run_inference, InferenceConfig, PipelineResult};
use bgp_community_intent::mrt::faults::corrupt_stream;
use bgp_community_intent::mrt::obs::{
    read_observations_parallel, read_observations_parallel_strict, read_observations_resilient,
    read_observations_strict, write_update_stream,
};
use bgp_community_intent::mrt::readahead::DEFAULT_BLOCK_SIZE;
use bgp_community_intent::mrt::RecoverConfig;
use bgp_community_intent::types::{Asn, Observation};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn scenario() -> Scenario {
    Scenario::build(&ScenarioConfig {
        scale: 0.1,
        documented: 10,
        ..ScenarioConfig::default()
    })
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bgp-par-determinism-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Split `observations` into three MRT update archives; optionally corrupt
/// the middle one with seeded faults. Returns the file paths.
fn archives(dir: &Path, observations: &[Observation], corrupt_middle: bool) -> Vec<PathBuf> {
    let chunk = observations.len().div_ceil(3).max(1);
    observations
        .chunks(chunk)
        .enumerate()
        .map(|(i, obs)| {
            let mut buf = Vec::new();
            write_update_stream(&mut buf, Asn::new(6447), obs).unwrap();
            if corrupt_middle && i == 1 {
                let (damaged, log) = corrupt_stream(&buf, 11, 0.05);
                assert!(log.count() > 0, "corruption must actually land");
                buf = damaged;
            }
            let path = dir.join(format!("chunk{i}.mrt"));
            fs::write(&path, buf).unwrap();
            path
        })
        .collect()
}

#[test]
fn lenient_multi_file_ingest_is_identical_at_any_thread_count() {
    let observations = scenario().collect(1);
    assert!(observations.len() >= 3, "scenario too small to split");
    let dir = workdir("lenient");
    let paths = archives(&dir, &observations, true);
    let cfg = RecoverConfig::default();

    // Sequential reference: one resilient read per file, in order.
    let reference: Vec<_> = paths
        .iter()
        .map(|p| read_observations_resilient(fs::File::open(p).unwrap(), &cfg))
        .collect();

    for threads in THREAD_COUNTS {
        let (files, merged) = read_observations_parallel(&paths, &cfg, threads);
        assert_eq!(files.len(), paths.len());
        for (file, (obs, report)) in files.iter().zip(&reference) {
            assert_eq!(&file.observations, obs, "threads = {threads}");
            // The supervised chain prefetches through a readahead layer the
            // direct read does not have; its block count is deterministic
            // (completely filled blocks of the default size). Everything
            // else in the report matches the direct read exactly.
            let mut normalized = file.report.clone();
            assert_eq!(
                normalized.readahead_blocks,
                normalized.bytes_read.div_ceil(DEFAULT_BLOCK_SIZE as u64),
                "threads = {threads}"
            );
            normalized.readahead_blocks = report.readahead_blocks;
            assert_eq!(&normalized, report, "threads = {threads}");
        }
        // The merged ledger must balance even with a corrupted file in the
        // middle: every byte is either decoded or accounted as skipped.
        assert_eq!(
            merged.bytes_ok + merged.bytes_skipped,
            merged.bytes_read,
            "threads = {threads}"
        );
        assert!(merged.bytes_skipped > 0, "corruption went unnoticed");
        let mut by_hand = reference.iter().fold(
            bgp_community_intent::mrt::IngestReport::default(),
            |mut acc, (_, r)| {
                acc.merge(r);
                acc
            },
        );
        // Direct reads carry no readahead layer; the supervised merge sums
        // one deterministic block count per file.
        assert_eq!(
            merged.readahead_blocks,
            files.iter().map(|f| f.report.readahead_blocks).sum::<u64>(),
            "threads = {threads}"
        );
        by_hand.readahead_blocks = merged.readahead_blocks;
        assert_eq!(merged, by_hand, "threads = {threads}");
    }
}

#[test]
fn strict_multi_file_ingest_is_identical_at_any_thread_count() {
    let observations = scenario().collect(1);
    let dir = workdir("strict");
    let paths = archives(&dir, &observations, false);

    let reference: Vec<_> = paths
        .iter()
        .map(|p| read_observations_strict(fs::File::open(p).unwrap()).unwrap())
        .collect();

    for threads in THREAD_COUNTS {
        let per_file = read_observations_parallel_strict(&paths, threads).unwrap();
        assert_eq!(per_file, reference, "threads = {threads}");
    }
}

#[test]
fn full_pipeline_result_is_identical_at_any_thread_count() {
    let scenario = scenario();
    let observations = scenario.collect(1);

    let run = |threads: usize| -> PipelineResult {
        let cfg = InferenceConfig {
            threads,
            ..InferenceConfig::default()
        };
        run_inference(
            &observations,
            &scenario.siblings,
            &cfg,
            Some(&scenario.dict),
        )
    };

    let baseline = run(1);
    assert!(
        baseline.stats.community_count() > 0,
        "scenario produced no communities"
    );
    for threads in THREAD_COUNTS {
        assert_eq!(run(threads), baseline, "threads = {threads}");
    }
    // `0` resolves to one worker per CPU — still identical.
    assert_eq!(run(0), baseline, "threads = 0");
}
