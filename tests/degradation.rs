//! End-to-end degradation guarantee: seeded corruption of the sample MRT
//! archives must never panic the pipeline, every skipped record and byte
//! must be accounted for, and headline accuracy must degrade gracefully
//! (<2 points at 1% record corruption).

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use bgp_community_intent::dictionary::GroundTruthDictionary;
use bgp_community_intent::intent::{run_inference_with_report, InferenceConfig};
use bgp_community_intent::mrt::faults::corrupt_stream;
use bgp_community_intent::mrt::obs::{read_observations, read_observations_resilient};
use bgp_community_intent::mrt::{IngestReport, RecoverConfig};
use bgp_community_intent::relationships::SiblingMap;
use bgp_community_intent::types::Observation;

fn sample(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("data/sample")
        .join(name)
}

fn sample_bytes(name: &str) -> Vec<u8> {
    std::fs::read(sample(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn load_context() -> (GroundTruthDictionary, SiblingMap) {
    let dict = GroundTruthDictionary::from_json(BufReader::new(
        File::open(sample("dictionary.json")).unwrap(),
    ))
    .unwrap();
    let siblings: SiblingMap =
        serde_json::from_reader(BufReader::new(File::open(sample("siblings.json")).unwrap()))
            .unwrap();
    (dict, siblings)
}

/// Ingest both sample archives after corrupting each with the given seed
/// and per-record corruption rate.
fn ingest_corrupted(seed: u64, rate: f64) -> (Vec<Observation>, IngestReport) {
    let mut observations = Vec::new();
    let mut merged = IngestReport::default();
    for name in ["rib.mrt", "updates.day1.mrt"] {
        let clean = sample_bytes(name);
        let (damaged, log) = corrupt_stream(&clean, seed, rate);
        if rate > 0.0 {
            assert!(log.count() > 0, "{name}: corruption must land at {rate}");
        }
        let (obs, report) = read_observations_resilient(&damaged[..], &RecoverConfig::default());
        // Byte accounting must balance exactly: every byte of the damaged
        // stream is either part of a decoded record or counted as skipped.
        assert_eq!(
            report.bytes_ok + report.bytes_skipped,
            report.bytes_read,
            "{name} seed={seed} rate={rate}: byte accounting"
        );
        assert_eq!(
            report.bytes_read,
            damaged.len() as u64,
            "{name} seed={seed} rate={rate}: whole stream consumed"
        );
        observations.extend(obs);
        merged.merge(&report);
    }
    (observations, merged)
}

fn accuracy_for(observations: &[Observation], report: IngestReport) -> f64 {
    let (dict, siblings) = load_context();
    let result = run_inference_with_report(
        observations,
        &siblings,
        &InferenceConfig::default(),
        Some(&dict),
        report,
    );
    result.evaluation.expect("dictionary supplied").accuracy()
}

fn baseline_accuracy() -> f64 {
    let mut observations =
        read_observations(&sample_bytes("rib.mrt")[..]).expect("clean rib parses");
    observations
        .extend(read_observations(&sample_bytes("updates.day1.mrt")[..]).expect("clean updates"));
    accuracy_for(&observations, IngestReport::default())
}

#[test]
fn accuracy_degrades_gracefully_under_one_percent_corruption() {
    let baseline = baseline_accuracy();
    assert!(baseline > 0.7, "baseline accuracy {baseline:.3}");
    for seed in [1, 2, 3] {
        let (observations, report) = ingest_corrupted(seed, 0.01);
        assert!(!report.is_clean(), "seed={seed}: damage must be visible");
        let accuracy = accuracy_for(&observations, report);
        assert!(
            baseline - accuracy < 0.02,
            "seed={seed}: accuracy fell {:.4} points ({baseline:.4} -> {accuracy:.4})",
            baseline - accuracy
        );
    }
}

#[test]
fn five_percent_corruption_completes_with_bounded_loss() {
    let baseline = baseline_accuracy();
    for seed in [1, 2, 3] {
        let (observations, report) = ingest_corrupted(seed, 0.05);
        assert!(
            !observations.is_empty(),
            "seed={seed}: most of the archive must survive"
        );
        // The reader, not the fault injector, decides how much survives:
        // demand the bulk of records decode even at 5% damage.
        assert!(
            report.records_read as f64 / (report.records_read + report.records_skipped) as f64
                > 0.8,
            "seed={seed}: {} read / {} skipped",
            report.records_read,
            report.records_skipped
        );
        let accuracy = accuracy_for(&observations, report);
        assert!(
            baseline - accuracy < 0.15,
            "seed={seed}: accuracy collapsed ({baseline:.4} -> {accuracy:.4})"
        );
    }
}

#[test]
fn zero_rate_corruption_is_the_identity() {
    let (observations, report) = ingest_corrupted(9, 0.0);
    assert!(report.is_clean());
    let clean_count = {
        let mut o = read_observations(&sample_bytes("rib.mrt")[..]).unwrap();
        o.extend(read_observations(&sample_bytes("updates.day1.mrt")[..]).unwrap());
        o.len()
    };
    assert_eq!(observations.len(), clean_count);
}
