//! The label artifact: inference output as a servable binary file.
//!
//! `infer`'s JSON label dump is fine for humans and diffs, but the north
//! star is serving "is `3356:2003` action or information?" at millions of
//! lookups per second. This crate defines the on-disk **label artifact**
//! — sorted dense columns keyed by the packed `(α:β)` word — plus a
//! zero-copy loader and the binary-search lookup kernel on top of it.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! header (48 bytes)
//!   0  magic        "BGPA"
//!   4  version      u32  (= 1)
//!   8  entries      u64  (n, > 0)
//!   16 owners       u64  (m = distinct α values)
//!   24 checksum     u64  (FNV-1a 64 over the whole payload)
//!   32 payload_len  u64
//!   40 reserved     u64  (zero)
//! payload (sections in fixed order, each 8-byte aligned)
//!   keys        n × u64   packed community keys, strictly ascending
//!   labels      n × u8    0 = action, 1 = information (padded to 8)
//!   confidence  n × f64   label confidence in (0, 1]
//!   ratio       n × f64   the containing cluster's on:off ratio
//!   on_paths    n × u64   cluster on-path unique-path total
//!   off_paths   n × u64   cluster off-path unique-path total
//!   owners      m × (u32 α, u32 start)   first row index per owner α
//! ```
//!
//! The key is [`Community::packed_key`]: `(α << 16 | β)` widened to `u64`.
//! Point lookups binary-search the key column (`O(log n)`, ~27 probes at
//! the paper's 80k labels); `α`-prefix scans binary-search the owner
//! index instead and return a contiguous row range.
//!
//! # Why mmap is safe here
//!
//! Artifacts are written with the same atomic temp-file-then-rename
//! discipline as checkpoints and never modified in place, so a reader
//! can never observe a torn write. Loading validates the magic, version,
//! section geometry, payload checksum, key ordering, and owner index
//! before any lookup runs. And every access after that goes through
//! bounds-checked byte slices (`u64::from_le_bytes` on subslices) — no
//! pointer casts, no alignment assumptions — so even a hostile file that
//! somehow passed validation could only yield wrong values, never
//! undefined behavior. The one `unsafe` block in this crate is the
//! `mmap`/`munmap` pair itself, confined to [`backing`], and a plain
//! heap read ([`LabelArtifact::load_heap`]) provides the same artifact
//! with no `unsafe` at all (and is the non-unix fallback).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bgp_types::par::{effective_threads, par_map_indexed};
use bgp_types::{Community, Intent};

/// First four bytes of every label artifact.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"BGPA";

/// Layout version this build reads and writes; bump on any layout change
/// so an old reader refuses instead of misreading.
pub const ARTIFACT_VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 48;

// FNV-1a 64 (same constants as the checkpoint manifest checksum).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One classified community as served from (or written into) an artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelRow {
    /// The community.
    pub community: Community,
    /// Its inferred intent.
    pub label: Intent,
    /// Label confidence in `(0, 1]`: 1.0 for the unambiguous never-off-path
    /// / never-on-path cases, otherwise how far the cluster ratio sits from
    /// the decision threshold.
    pub confidence: f64,
    /// The containing cluster's on:off ratio (the classification evidence).
    pub ratio: f64,
    /// The containing cluster's on-path unique-path total.
    pub on_paths: u64,
    /// The containing cluster's off-path unique-path total.
    pub off_paths: u64,
}

/// Why loading an artifact was refused. Corruption is always a clean typed
/// error — never a panic, never a partially-validated artifact served.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read at all (missing, permissions, I/O).
    Io {
        /// The artifact path.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file does not start with the artifact magic.
    BadMagic {
        /// The artifact path.
        path: PathBuf,
    },
    /// A well-formed header written by an incompatible layout version.
    BadVersion {
        /// The artifact path.
        path: PathBuf,
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads.
        expected: u32,
    },
    /// The byte length does not match the recorded geometry (truncated
    /// download, torn copy, or a header bit flip in the counts).
    Truncated {
        /// The artifact path.
        path: PathBuf,
        /// What exactly failed to line up.
        detail: String,
    },
    /// The payload checksum does not match (bit rot, payload corruption).
    ChecksumMismatch {
        /// The artifact path.
        path: PathBuf,
        /// Checksum recorded in the header.
        recorded: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// A structurally valid artifact with zero entries — nothing to serve,
    /// and almost certainly an upstream inference bug; refused rather than
    /// silently answering "unknown" to every query.
    Empty {
        /// The artifact path.
        path: PathBuf,
    },
    /// The payload passed its checksum but violates an invariant the
    /// lookup kernel relies on (unsorted keys, bad label byte, owner
    /// index mismatch) — only reachable for files not produced by
    /// [`write_artifact_atomic`].
    Invalid {
        /// The artifact path.
        path: PathBuf,
        /// The violated invariant.
        detail: String,
    },
}

impl ArtifactError {
    /// Whether the file existed but its *contents* were rejected — the
    /// cases a caller should surface as a refused artifact rather than a
    /// generic I/O failure (mirrors `CheckpointLoadError::is_invalid_data`).
    pub fn is_invalid_data(&self) -> bool {
        !matches!(self, ArtifactError::Io { .. })
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            ArtifactError::BadMagic { path } => {
                write!(f, "{}: not a label artifact (bad magic)", path.display())
            }
            ArtifactError::BadVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: artifact version {found}, this build reads {expected}",
                path.display()
            ),
            ArtifactError::Truncated { path, detail } => {
                write!(
                    f,
                    "{}: truncated or torn artifact ({detail})",
                    path.display()
                )
            }
            ArtifactError::ChecksumMismatch {
                path,
                recorded,
                computed,
            } => write!(
                f,
                "{}: payload checksum {recorded:#018x} recorded, {computed:#018x} computed",
                path.display()
            ),
            ArtifactError::Empty { path } => {
                write!(f, "{}: artifact holds zero labels", path.display())
            }
            ArtifactError::Invalid { path, detail } => {
                write!(f, "{}: invalid artifact ({detail})", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Byte offsets of each payload section, derived from the entry and owner
/// counts. Shared by the writer and the loader so they cannot disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sections {
    keys: usize,
    labels: usize,
    confidence: usize,
    ratio: usize,
    on: usize,
    off: usize,
    owners: usize,
    payload_len: usize,
}

impl Sections {
    /// `None` when the counts overflow the layout arithmetic — only
    /// reachable from a corrupted header (a bit flip in the count fields
    /// can claim ~2^63 entries), so the loader treats it as truncation.
    fn for_counts(n: usize, m: usize) -> Option<Sections> {
        let n8 = n.checked_mul(8)?;
        let keys = 0;
        let labels = n8;
        let labels_padded = n.checked_add(7)? & !7;
        let confidence = labels.checked_add(labels_padded)?;
        let ratio = confidence.checked_add(n8)?;
        let on = ratio.checked_add(n8)?;
        let off = on.checked_add(n8)?;
        let owners = off.checked_add(n8)?;
        let payload_len = owners.checked_add(m.checked_mul(8)?)?;
        Some(Sections {
            keys,
            labels,
            confidence,
            ratio,
            on,
            off,
            owners,
            payload_len,
        })
    }
}

fn label_byte(intent: Intent) -> u8 {
    match intent {
        Intent::Action => 0,
        Intent::Information => 1,
    }
}

/// Serialize `rows` (which must be sorted strictly ascending by
/// [`Community::packed_key`]) into artifact bytes: header + payload.
///
/// Exposed so tests and in-memory consumers can build an artifact without
/// touching the filesystem; [`write_artifact_atomic`] is the production
/// entry point.
pub fn encode_artifact(rows: &[LabelRow]) -> io::Result<Vec<u8>> {
    for pair in rows.windows(2) {
        if pair[0].community.packed_key() >= pair[1].community.packed_key() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "label rows must be sorted strictly ascending by packed key \
                     ({} does not precede {})",
                    pair[0].community, pair[1].community
                ),
            ));
        }
    }
    let n = rows.len();
    let mut owner_index: Vec<(u16, u32)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        if owner_index.last().map(|&(a, _)| a) != Some(row.community.asn) {
            owner_index.push((row.community.asn, i as u32));
        }
    }
    let m = owner_index.len();
    let sec = Sections::for_counts(n, m).expect("in-memory row count cannot overflow the layout");

    let mut payload = vec![0u8; sec.payload_len];
    for (i, row) in rows.iter().enumerate() {
        payload[sec.keys + i * 8..sec.keys + i * 8 + 8]
            .copy_from_slice(&row.community.packed_key().to_le_bytes());
        payload[sec.labels + i] = label_byte(row.label);
        payload[sec.confidence + i * 8..sec.confidence + i * 8 + 8]
            .copy_from_slice(&row.confidence.to_le_bytes());
        payload[sec.ratio + i * 8..sec.ratio + i * 8 + 8].copy_from_slice(&row.ratio.to_le_bytes());
        payload[sec.on + i * 8..sec.on + i * 8 + 8].copy_from_slice(&row.on_paths.to_le_bytes());
        payload[sec.off + i * 8..sec.off + i * 8 + 8].copy_from_slice(&row.off_paths.to_le_bytes());
    }
    for (j, &(alpha, start)) in owner_index.iter().enumerate() {
        payload[sec.owners + j * 8..sec.owners + j * 8 + 4]
            .copy_from_slice(&u32::from(alpha).to_le_bytes());
        payload[sec.owners + j * 8 + 4..sec.owners + j * 8 + 8]
            .copy_from_slice(&start.to_le_bytes());
    }

    let mut out = Vec::with_capacity(HEADER_LEN + sec.payload_len);
    out.extend_from_slice(&ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
    out.extend_from_slice(&(sec.payload_len as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Write an artifact with the atomic temp-file-then-rename discipline:
/// serialize to `<path>.tmp` in the same directory, fsync, rename over
/// `path`. A crash at any point leaves either the previous artifact or
/// the new one — never a torn file (the precondition for mmap serving).
pub fn write_artifact_atomic(path: &Path, rows: &[LabelRow]) -> io::Result<()> {
    let bytes = encode_artifact(rows)?;
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string())
    ));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The memory-mapped (unix) backing; plain `Vec<u8>` everywhere else and
/// as the fallback. This module owns the only `unsafe` in the crate.
#[cfg(unix)]
#[allow(unsafe_code)]
mod backing {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file.
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is PROT_READ and owned for its whole lifetime; exposing
    // &[u8] from multiple threads is as safe as sharing a Vec<u8>.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `len` bytes of `file` read-only; `None` if the kernel
        /// refuses (callers fall back to a heap read).
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping for as long
            // as self exists, and the borrow cannot outlive self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the region map() returned, unmapped once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Backing {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mmap(backing::Mmap),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Heap(v) => v,
            #[cfg(unix)]
            Backing::Mmap(m) => m.bytes(),
        }
    }
}

/// A loaded, fully validated label artifact, ready to serve lookups.
///
/// Columns are read in place from the backing bytes (mmap on unix, heap
/// elsewhere) — loading is O(n) validation, not a deserialization copy.
pub struct LabelArtifact {
    backing: Backing,
    entries: usize,
    owners: usize,
    sections: Sections,
}

impl fmt::Debug for LabelArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabelArtifact")
            .field("entries", &self.entries)
            .field("owners", &self.owners)
            .field("mmapped", &self.is_mmapped())
            .finish()
    }
}

impl LabelArtifact {
    /// Load an artifact, preferring a zero-copy memory mapping (unix);
    /// falls back to [`load_heap`](Self::load_heap) when mapping fails.
    pub fn load(path: &Path) -> Result<LabelArtifact, ArtifactError> {
        #[cfg(unix)]
        {
            let file = File::open(path).map_err(|source| ArtifactError::Io {
                path: path.to_path_buf(),
                source,
            })?;
            let len = file
                .metadata()
                .map_err(|source| ArtifactError::Io {
                    path: path.to_path_buf(),
                    source,
                })?
                .len() as usize;
            if let Some(map) = backing::Mmap::map(&file, len) {
                return Self::validate(path, Backing::Mmap(map));
            }
        }
        Self::load_heap(path)
    }

    /// Load an artifact by reading the whole file onto the heap — the
    /// no-`unsafe` path, also used as the mmap fallback.
    pub fn load_heap(path: &Path) -> Result<LabelArtifact, ArtifactError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|source| ArtifactError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        Self::validate(path, Backing::Heap(bytes))
    }

    /// Validate header geometry, checksum, and every invariant the lookup
    /// kernel relies on. All errors are typed; nothing is served from a
    /// file that fails any check.
    fn validate(path: &Path, backing: Backing) -> Result<LabelArtifact, ArtifactError> {
        let at = |p: &Path, detail: String| ArtifactError::Truncated {
            path: p.to_path_buf(),
            detail,
        };
        let bytes = backing.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(at(
                path,
                format!("{} bytes, header alone is {HEADER_LEN}", bytes.len()),
            ));
        }
        if bytes[0..4] != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let version = u32_at(4);
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::BadVersion {
                path: path.to_path_buf(),
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let entries = u64_at(8) as usize;
        let owners = u64_at(16) as usize;
        let checksum = u64_at(24);
        let payload_len = u64_at(32) as usize;
        if entries == 0 {
            return Err(ArtifactError::Empty {
                path: path.to_path_buf(),
            });
        }
        // Geometry first: the section layout implied by the counts must
        // match the recorded payload length and the actual byte count,
        // so every column access below is in bounds by construction.
        if owners > entries {
            return Err(at(path, format!("{owners} owners > {entries} entries")));
        }
        let sections = match Sections::for_counts(entries, owners) {
            Some(s) => s,
            None => {
                return Err(at(
                    path,
                    format!("{entries} entries / {owners} owners overflow the layout"),
                ))
            }
        };
        if sections.payload_len != payload_len {
            return Err(at(
                path,
                format!(
                    "payload length {payload_len} recorded, {} implied by {entries} entries / {owners} owners",
                    sections.payload_len
                ),
            ));
        }
        if bytes.len() != HEADER_LEN + payload_len {
            return Err(at(
                path,
                format!(
                    "{} bytes on disk, {} expected",
                    bytes.len(),
                    HEADER_LEN + payload_len
                ),
            ));
        }
        let payload = &bytes[HEADER_LEN..];
        let computed = fnv1a(FNV_OFFSET, payload);
        if computed != checksum {
            return Err(ArtifactError::ChecksumMismatch {
                path: path.to_path_buf(),
                recorded: checksum,
                computed,
            });
        }
        let invalid = |detail: String| ArtifactError::Invalid {
            path: path.to_path_buf(),
            detail,
        };
        // Keys: strictly ascending (binary search's invariant) and within
        // the packed 32-bit community space.
        let key_at =
            |i: usize| u64::from_le_bytes(payload[i * 8..i * 8 + 8].try_into().expect("8"));
        let mut prev: Option<u64> = None;
        for i in 0..entries {
            let key = key_at(i);
            if key > u64::from(u32::MAX) {
                return Err(invalid(format!(
                    "key {key:#x} outside the packed α:β space"
                )));
            }
            if let Some(p) = prev {
                if key <= p {
                    return Err(invalid(format!("keys not strictly ascending at row {i}")));
                }
            }
            prev = Some(key);
        }
        // Labels: only the two defined bytes; padding must be zero.
        for (i, &b) in payload[sections.labels..sections.confidence]
            .iter()
            .enumerate()
        {
            let expect_pad = i >= entries;
            if (expect_pad && b != 0) || (!expect_pad && b > 1) {
                return Err(invalid(format!("label byte {b} at row {i}")));
            }
        }
        // Owner index: must be exactly the index the writer derives from
        // the key column (the lookup kernel trusts its starts blindly).
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for i in 0..entries {
            let alpha = (key_at(i) >> 16) as u32;
            if expected.last().map(|&(a, _)| a) != Some(alpha) {
                expected.push((alpha, i as u32));
            }
        }
        if expected.len() != owners {
            return Err(invalid(format!(
                "{owners} owner entries recorded, {} implied by the key column",
                expected.len()
            )));
        }
        for (j, &(alpha, start)) in expected.iter().enumerate() {
            let got_alpha = u32::from_le_bytes(
                payload[sections.owners + j * 8..sections.owners + j * 8 + 4]
                    .try_into()
                    .expect("4"),
            );
            let got_start = u32::from_le_bytes(
                payload[sections.owners + j * 8 + 4..sections.owners + j * 8 + 8]
                    .try_into()
                    .expect("4"),
            );
            if (got_alpha, got_start) != (alpha, start) {
                return Err(invalid(format!(
                    "owner index entry {j} is ({got_alpha}, {got_start}), expected ({alpha}, {start})"
                )));
            }
        }
        Ok(LabelArtifact {
            backing,
            entries,
            owners,
            sections,
        })
    }

    fn payload(&self) -> &[u8] {
        &self.backing.bytes()[HEADER_LEN..]
    }

    /// Number of labeled communities.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Always false — zero-entry artifacts are refused at load.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct owner ASes.
    pub fn owner_count(&self) -> usize {
        self.owners
    }

    /// Whether this artifact is served from a memory mapping (as opposed
    /// to the heap fallback).
    pub fn is_mmapped(&self) -> bool {
        match self.backing {
            Backing::Heap(_) => false,
            #[cfg(unix)]
            Backing::Mmap(_) => true,
        }
    }

    #[inline]
    fn key_at(&self, i: usize) -> u64 {
        let p = self.payload();
        u64::from_le_bytes(p[i * 8..i * 8 + 8].try_into().expect("8"))
    }

    #[inline]
    fn f64_at(&self, section: usize, i: usize) -> f64 {
        let p = self.payload();
        f64::from_le_bytes(
            p[section + i * 8..section + i * 8 + 8]
                .try_into()
                .expect("8"),
        )
    }

    #[inline]
    fn u64_at(&self, section: usize, i: usize) -> u64 {
        let p = self.payload();
        u64::from_le_bytes(
            p[section + i * 8..section + i * 8 + 8]
                .try_into()
                .expect("8"),
        )
    }

    /// The `i`-th row in key order. Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> LabelRow {
        assert!(i < self.entries, "row {i} out of bounds ({})", self.entries);
        let sec = &self.sections;
        LabelRow {
            community: Community::from_u32(self.key_at(i) as u32),
            label: if self.payload()[sec.labels + i] == 0 {
                Intent::Action
            } else {
                Intent::Information
            },
            confidence: self.f64_at(sec.confidence, i),
            ratio: self.f64_at(sec.ratio, i),
            on_paths: self.u64_at(sec.on, i),
            off_paths: self.u64_at(sec.off, i),
        }
    }

    /// Row index of `c`, if classified — the binary-search core every
    /// lookup goes through.
    #[inline]
    pub fn find(&self, c: Community) -> Option<usize> {
        let key = c.packed_key();
        let (mut lo, mut hi) = (0usize, self.entries);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.entries && self.key_at(lo) == key).then_some(lo)
    }

    /// Point lookup: the full row for `c`, if classified.
    #[inline]
    pub fn get(&self, c: Community) -> Option<LabelRow> {
        self.find(c).map(|i| self.row(i))
    }

    /// Just the intent for `c` — the cheapest query (one column touched).
    #[inline]
    pub fn label(&self, c: Community) -> Option<Intent> {
        self.find(c).map(|i| {
            if self.payload()[self.sections.labels + i] == 0 {
                Intent::Action
            } else {
                Intent::Information
            }
        })
    }

    /// Batch lookup, fanned out over `threads` workers (`0` = one per
    /// CPU, `1` = sequential). Results are index-aligned with `keys`, and
    /// identical at any thread count.
    pub fn get_batch(&self, keys: &[Community], threads: usize) -> Vec<Option<LabelRow>> {
        let threads = effective_threads(threads).min(keys.len().max(1));
        if threads <= 1 {
            return keys.iter().map(|&k| self.get(k)).collect();
        }
        let chunk_size = keys.len().div_ceil(threads * 4).max(1);
        let chunks: Vec<&[Community]> = keys.chunks(chunk_size).collect();
        let parts = par_map_indexed(chunks.len(), threads, |i| {
            chunks[i].iter().map(|&k| self.get(k)).collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// The contiguous row range owned by `α` (empty if the owner has no
    /// classified communities) — the `α`-prefix scan, via the owner index
    /// instead of a key-column search.
    pub fn owner_range(&self, asn: u16) -> std::ops::Range<usize> {
        let sec = &self.sections;
        let alpha_at = |j: usize| {
            u32::from_le_bytes(
                self.payload()[sec.owners + j * 8..sec.owners + j * 8 + 4]
                    .try_into()
                    .expect("4"),
            )
        };
        let start_at = |j: usize| {
            u32::from_le_bytes(
                self.payload()[sec.owners + j * 8 + 4..sec.owners + j * 8 + 8]
                    .try_into()
                    .expect("4"),
            ) as usize
        };
        let target = u32::from(asn);
        let (mut lo, mut hi) = (0usize, self.owners);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if alpha_at(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= self.owners || alpha_at(lo) != target {
            return 0..0;
        }
        let start = start_at(lo);
        let end = if lo + 1 < self.owners {
            start_at(lo + 1)
        } else {
            self.entries
        };
        start..end
    }

    /// All rows for owner `α`, in `β` order.
    pub fn owner_rows(&self, asn: u16) -> Vec<LabelRow> {
        self.owner_range(asn).map(|i| self.row(i)).collect()
    }

    /// Iterate every row in key order.
    pub fn rows(&self) -> impl Iterator<Item = LabelRow> + '_ {
        (0..self.entries).map(|i| self.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bgp-artifact-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(tag)
    }

    fn sample_rows() -> Vec<LabelRow> {
        let row = |asn: u16, value: u16, label: Intent, ratio: f64, on: u64, off: u64| LabelRow {
            community: Community::new(asn, value),
            label,
            confidence: if off == 0 || on == 0 {
                1.0
            } else {
                ratio / (ratio + 160.0)
            },
            ratio,
            on_paths: on,
            off_paths: off,
        };
        vec![
            row(174, 7, Intent::Action, 0.25, 3, 12),
            row(1299, 2569, Intent::Action, 0.0, 0, 9),
            row(1299, 20000, Intent::Information, 412.5, 825, 2),
            row(1299, 35130, Intent::Information, 37.0, 37, 0),
            row(3356, 3, Intent::Action, 1.5, 3, 2),
            row(3356, 2003, Intent::Information, 900.0, 1800, 2),
        ]
    }

    fn write_sample(tag: &str) -> (PathBuf, Vec<LabelRow>) {
        let rows = sample_rows();
        let path = temp_path(tag);
        write_artifact_atomic(&path, &rows).expect("write artifact");
        (path, rows)
    }

    #[test]
    fn round_trips_through_both_backings() {
        let (path, rows) = write_sample("roundtrip.art");
        for artifact in [
            LabelArtifact::load(&path).expect("mmap load"),
            LabelArtifact::load_heap(&path).expect("heap load"),
        ] {
            assert_eq!(artifact.len(), rows.len());
            assert_eq!(artifact.owner_count(), 3);
            let back: Vec<LabelRow> = artifact.rows().collect();
            assert_eq!(back, rows);
        }
        #[cfg(unix)]
        assert!(LabelArtifact::load(&path).expect("load").is_mmapped());
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let (path, rows) = write_sample("lookup.art");
        let artifact = LabelArtifact::load(&path).expect("load");
        for row in &rows {
            assert_eq!(artifact.get(row.community), Some(*row));
            assert_eq!(artifact.label(row.community), Some(row.label));
        }
        for miss in [
            Community::new(0, 0),
            Community::new(174, 8),
            Community::new(1299, 2568),
            Community::new(3356, 2004),
            Community::new(65535, 65535),
        ] {
            assert_eq!(artifact.get(miss), None);
            assert_eq!(artifact.label(miss), None);
        }
    }

    #[test]
    fn owner_scans_return_contiguous_beta_ranges() {
        let (path, rows) = write_sample("owners.art");
        let artifact = LabelArtifact::load(&path).expect("load");
        assert_eq!(artifact.owner_range(1299), 1..4);
        assert_eq!(artifact.owner_rows(1299), rows[1..4].to_vec());
        assert_eq!(artifact.owner_range(174), 0..1);
        assert_eq!(artifact.owner_range(3356), 4..6);
        assert_eq!(artifact.owner_range(2914), 0..0);
        assert!(artifact.owner_rows(2914).is_empty());
    }

    #[test]
    fn batch_lookup_is_identical_at_any_thread_count() {
        let (path, rows) = write_sample("batch.art");
        let artifact = LabelArtifact::load(&path).expect("load");
        let mut keys: Vec<Community> = rows.iter().map(|r| r.community).collect();
        // Interleave misses so both arms are exercised.
        keys.extend((0..100).map(|i| Community::new(9000 + i as u16, i as u16)));
        let baseline = artifact.get_batch(&keys, 1);
        assert_eq!(baseline.len(), keys.len());
        for threads in [2, 3, 8] {
            assert_eq!(
                artifact.get_batch(&keys, threads),
                baseline,
                "threads={threads}"
            );
        }
        for (key, result) in keys.iter().zip(&baseline) {
            assert_eq!(*result, artifact.get(*key));
        }
    }

    #[test]
    fn unsorted_rows_are_refused_by_the_writer() {
        let mut rows = sample_rows();
        rows.swap(0, 3);
        let err = encode_artifact(&rows).expect_err("unsorted must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let dup = vec![rows[1], rows[1]];
        assert!(encode_artifact(&dup).is_err(), "duplicate keys must fail");
    }

    #[test]
    fn zero_entry_artifacts_fail_closed() {
        let path = temp_path("empty.art");
        write_artifact_atomic(&path, &[]).expect("write empty");
        let err = LabelArtifact::load(&path).expect_err("empty must be refused");
        assert!(matches!(err, ArtifactError::Empty { .. }), "{err}");
        assert!(err.is_invalid_data());
    }

    #[test]
    fn wrong_version_fails_closed() {
        let (path, _) = write_sample("version.art");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[4..8].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = LabelArtifact::load(&path).expect_err("version must be refused");
        assert!(
            matches!(
                err,
                ArtifactError::BadVersion {
                    found,
                    expected: ARTIFACT_VERSION,
                    ..
                } if found == ARTIFACT_VERSION + 1
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_magic_fails_closed() {
        let (path, _) = write_sample("magic.art");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0x20;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = LabelArtifact::load(&path).expect_err("magic must be refused");
        assert!(matches!(err, ArtifactError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn every_truncation_point_fails_closed() {
        let (path, _) = write_sample("truncate.art");
        let bytes = std::fs::read(&path).expect("read");
        // Every prefix, stepped to keep the test fast but cover all
        // regions: inside the header, each section boundary, and the tail.
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(7).collect();
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).expect("truncate");
            match LabelArtifact::load(&path) {
                Err(e) => assert!(e.is_invalid_data(), "cut at {cut}: {e}"),
                Ok(_) => panic!("truncation at {cut} was accepted"),
            }
            // The safe loader must agree byte-for-byte on refusal.
            assert!(LabelArtifact::load_heap(&path).is_err(), "heap, cut {cut}");
        }
    }

    #[test]
    fn every_bit_flip_fails_closed_or_is_detected() {
        let (path, rows) = write_sample("bitflip.art");
        let bytes = std::fs::read(&path).expect("read");
        // Flip one bit at a time across the whole file (stepping bytes to
        // keep it fast; every header byte, stride through the payload).
        let positions: Vec<usize> = (0..HEADER_LEN)
            .chain((HEADER_LEN..bytes.len()).step_by(11))
            .collect();
        for pos in positions {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            std::fs::write(&path, &corrupt).expect("rewrite");
            match LabelArtifact::load(&path) {
                Err(e) => assert!(e.is_invalid_data(), "flip at {pos}: {e}"),
                // A flip in the reserved header word is the only bit the
                // format does not seal; anything else must be refused.
                Ok(artifact) => {
                    assert!((40..48).contains(&pos), "flip at {pos} was accepted");
                    assert_eq!(artifact.rows().collect::<Vec<_>>(), rows);
                }
            }
        }
    }

    #[test]
    fn payload_and_checksum_flips_are_checksum_mismatches() {
        let (path, _) = write_sample("checksum.art");
        let mut bytes = std::fs::read(&path).expect("read");
        let payload_pos = HEADER_LEN + 3;
        bytes[payload_pos] ^= 0x80;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = LabelArtifact::load(&path).expect_err("payload flip");
        assert!(
            matches!(err, ArtifactError::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("missing.art");
        let err = LabelArtifact::load(&path).expect_err("missing file");
        assert!(matches!(err, ArtifactError::Io { .. }), "{err}");
        assert!(!err.is_invalid_data());
    }

    #[test]
    fn f64_columns_round_trip_bit_exactly() {
        let mut rows = sample_rows();
        rows[0].confidence = 0.1 + 0.2; // a value with a noisy decimal form
        rows[0].ratio = f64::MIN_POSITIVE;
        let path = temp_path("bits.art");
        write_artifact_atomic(&path, &rows).expect("write");
        let artifact = LabelArtifact::load(&path).expect("load");
        let back = artifact.row(0);
        assert_eq!(back.confidence.to_bits(), rows[0].confidence.to_bits());
        assert_eq!(back.ratio.to_bits(), rows[0].ratio.to_bits());
    }
}
