//! Gao-style AS relationship inference from observed AS paths.
//!
//! The classic heuristic (Gao 2001, refined by CAIDA's AS-Rank): the
//! highest-degree AS on a valley-free path is its apex; links between the
//! observer side and the apex are provider→customer descents, links between
//! the apex and the origin are customer→provider ascents. Votes accumulate
//! across paths; links with balanced votes between comparably-sized ASes
//! are settlement-free peers, and the densely interconnected top of the
//! degree distribution forms the clique.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use bgp_topology::{Rel, Topology};
use bgp_types::{AsPath, Asn};

/// An inferred link relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfRel {
    /// Provider→customer; the payload is the provider.
    P2c(Asn),
    /// Settlement-free peering.
    P2p,
}

/// How one AS sees a neighbor (mirrors CAIDA serial-1 semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelView {
    /// The neighbor is a customer.
    Customer,
    /// The neighbor is a peer.
    Peer,
    /// The neighbor is a provider.
    Provider,
}

/// The inferred relationship graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InferredRelationships {
    links: HashMap<(Asn, Asn), InfRel>,
    /// The inferred settlement-free clique, sorted.
    pub clique: Vec<Asn>,
}

fn key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl InferredRelationships {
    /// The relationship on link `a–b`, if the link was observed.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<InfRel> {
        self.links.get(&key(a, b)).copied()
    }

    /// How `a` sees `b`, if they are linked.
    pub fn view(&self, a: Asn, b: Asn) -> Option<RelView> {
        match self.relationship(a, b)? {
            InfRel::P2p => Some(RelView::Peer),
            InfRel::P2c(provider) => {
                if provider == a {
                    Some(RelView::Customer)
                } else {
                    Some(RelView::Provider)
                }
            }
        }
    }

    /// Number of inferred links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterate all links.
    pub fn iter(&self) -> impl Iterator<Item = (&(Asn, Asn), &InfRel)> {
        self.links.iter()
    }

    /// All inferred customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .links
            .iter()
            .filter_map(|(&(a, b), rel)| match rel {
                InfRel::P2c(p) if *p == asn => Some(if a == asn { b } else { a }),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth oracle: read relationships straight from the synthetic
    /// topology (route-server links count as peering).
    pub fn from_topology(topo: &Topology) -> Self {
        let mut links = HashMap::new();
        for link in &topo.links {
            let rel = match link.rel {
                Rel::ProviderCustomer => InfRel::P2c(link.a),
                Rel::PeerPeer | Rel::RouteServerMember => InfRel::P2p,
            };
            links.insert(key(link.a, link.b), rel);
        }
        let mut clique = topo.asns_of_tier(bgp_topology::Tier::Tier1);
        clique.sort_unstable();
        InferredRelationships { links, clique }
    }
}

/// Tuning knobs for the inference.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// How many of the highest-transit-degree ASes to seed the clique from.
    pub clique_candidates: usize,
    /// A link is p2c only when one direction out-votes the other by this
    /// factor; otherwise it is p2p.
    pub vote_dominance: f64,
    /// Clique members must have at least this fraction of the maximum
    /// observed degree (keeps well-connected stubs out of the clique).
    pub clique_degree_ratio: f64,
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            clique_candidates: 12,
            vote_dominance: 2.0,
            clique_degree_ratio: 0.25,
        }
    }
}

/// Infer relationships from observed paths (deduplicated internally).
pub fn infer_relationships<'a, I>(paths: I, cfg: &InferConfig) -> InferredRelationships
where
    I: IntoIterator<Item = &'a AsPath>,
{
    // Collapse prepending and dedupe identical paths.
    let mut unique: HashSet<Vec<Asn>> = HashSet::new();
    for p in paths {
        let collapsed = p.unique_asns();
        if collapsed.len() >= 2 {
            unique.insert(collapsed);
        }
    }
    let mut paths: Vec<Vec<Asn>> = unique.into_iter().collect();
    paths.sort_unstable();

    // Degrees over the observed adjacency.
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for p in &paths {
        for w in p.windows(2) {
            neighbors.entry(w[0]).or_default().insert(w[1]);
            neighbors.entry(w[1]).or_default().insert(w[0]);
        }
    }
    let degree = |a: Asn| neighbors.get(&a).map(HashSet::len).unwrap_or(0);

    // Clique: greedily grow from the highest-degree AS, requiring direct
    // observed adjacency to every member so far.
    let mut by_degree: Vec<Asn> = neighbors.keys().copied().collect();
    by_degree.sort_unstable_by_key(|a| (std::cmp::Reverse(degree(*a)), *a));
    let max_degree = by_degree.first().map(|a| degree(*a)).unwrap_or(0);
    let mut clique: Vec<Asn> = Vec::new();
    for &cand in by_degree.iter().take(cfg.clique_candidates) {
        // Clique members must be comparable in size to the biggest AS —
        // a small multihomed stub can be adjacent to every tier-1 without
        // being one.
        if (degree(cand) as f64) < max_degree as f64 * cfg.clique_degree_ratio {
            continue;
        }
        let adjacent_to_all = clique
            .iter()
            .all(|m| neighbors.get(&cand).map(|n| n.contains(m)).unwrap_or(false));
        if adjacent_to_all {
            clique.push(cand);
        }
    }
    clique.sort_unstable();
    let clique_set: HashSet<Asn> = clique.iter().copied().collect();

    // Vote per path: apex = highest degree (clique members always beat
    // non-members); left of apex the route descended, right of it ascended.
    let mut votes: HashMap<(Asn, Asn), (u32, u32)> = HashMap::new();
    for p in &paths {
        let apex = p
            .iter()
            .enumerate()
            .max_by_key(|(i, a)| (clique_set.contains(a), degree(**a), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (i, w) in p.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            // i < apex: route went b -> a downhill, so b is the provider.
            // i >= apex: route went b -> a uphill, so a is the provider.
            let provider = if i < apex { b } else { a };
            let k = key(a, b);
            let slot = votes.entry(k).or_default();
            if provider == k.0 {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    let mut links = HashMap::new();
    for (k, (va, vb)) in votes {
        let rel = if clique_set.contains(&k.0) && clique_set.contains(&k.1) {
            InfRel::P2p
        } else if va as f64 >= vb as f64 * cfg.vote_dominance && va > 0 {
            InfRel::P2c(k.0)
        } else if vb as f64 >= va as f64 * cfg.vote_dominance && vb > 0 {
            InfRel::P2c(k.1)
        } else {
            InfRel::P2p
        };
        links.insert(k, rel);
    }
    InferredRelationships { links, clique }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().copied().map(Asn::new))
    }

    #[test]
    fn simple_hierarchy() {
        // 1 and 2 are big transits (high degree), customers 10..15 below
        // them, observer stubs above. Paths: stub -> transit -> origin.
        let mut paths = Vec::new();
        for s in 10..16u32 {
            for o in 20..26u32 {
                if s != o {
                    paths.push(path(&[s, 1, o]));
                    paths.push(path(&[s, 2, o]));
                }
            }
            paths.push(path(&[s, 1, 2, s + 20]));
            paths.push(path(&[s, 2, 1, s + 30]));
        }
        let inferred = infer_relationships(paths.iter(), &InferConfig::default());
        // 1 and 2 interconnect at the top: peers.
        assert_eq!(
            inferred.relationship(Asn::new(1), Asn::new(2)),
            Some(InfRel::P2p)
        );
        // Stubs hang off the transits as customers.
        assert_eq!(
            inferred.view(Asn::new(1), Asn::new(10)),
            Some(RelView::Customer)
        );
        assert_eq!(
            inferred.view(Asn::new(10), Asn::new(1)),
            Some(RelView::Provider)
        );
        assert_eq!(
            inferred.view(Asn::new(2), Asn::new(21)),
            Some(RelView::Customer)
        );
    }

    #[test]
    fn prepending_is_collapsed() {
        let paths = [path(&[10, 1, 1, 1, 20]), path(&[11, 1, 20])];
        let inferred = infer_relationships(paths.iter(), &InferConfig::default());
        assert!(inferred.relationship(Asn::new(1), Asn::new(1)).is_none());
        assert!(inferred.relationship(Asn::new(1), Asn::new(20)).is_some());
    }

    #[test]
    fn unobserved_link_is_none() {
        let paths = [path(&[10, 1, 20])];
        let inferred = infer_relationships(paths.iter(), &InferConfig::default());
        assert_eq!(inferred.relationship(Asn::new(10), Asn::new(20)), None);
    }

    #[test]
    fn oracle_matches_topology() {
        use bgp_topology::{generate, TopologyConfig};
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 5,
            mid_transit_count: 8,
            stub_count: 30,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let oracle = InferredRelationships::from_topology(&topo);
        assert_eq!(oracle.link_count(), {
            let mut keys: Vec<_> = topo.links.iter().map(|l| key(l.a, l.b)).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        });
        let t1 = topo.asns_of_tier(bgp_topology::Tier::Tier1);
        assert_eq!(oracle.clique, t1);
        for link in &topo.links {
            let view = oracle.view(link.a, link.b).unwrap();
            match link.rel {
                Rel::ProviderCustomer => assert_eq!(view, RelView::Customer),
                _ => assert_eq!(view, RelView::Peer),
            }
        }
    }

    #[test]
    fn inferred_agrees_with_ground_truth_on_simulated_paths() {
        use bgp_policy::{generate_policies, PolicyConfig};
        use bgp_sim::{select_vantage_points, SimConfig, Simulator, VpConfig};
        use bgp_topology::{generate, TopologyConfig};

        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 10,
            stub_count: 50,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let policies = generate_policies(&topo, &PolicyConfig::default());
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let vps = select_vantage_points(
            &topo,
            &VpConfig {
                mid_count: 6,
                stub_count: 10,
                ..Default::default()
            },
        );
        let observations = sim.collect_rib(&vps);
        let paths: Vec<&AsPath> = observations.iter().map(|o| &o.path).collect();
        let inferred = infer_relationships(paths, &InferConfig::default());
        let oracle = InferredRelationships::from_topology(&topo);

        let mut agree = 0usize;
        let mut total = 0usize;
        for (k, _) in inferred.iter() {
            if let (Some(a), Some(b)) = (oracle.view(k.0, k.1), inferred.view(k.0, k.1)) {
                total += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        assert!(total > 50, "too few comparable links ({total})");
        let rate = agree as f64 / total as f64;
        assert!(
            rate > 0.8,
            "only {:.0}% agreement on {total} links",
            rate * 100.0
        );
    }
}
