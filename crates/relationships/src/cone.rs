//! Customer cones over an inferred relationship graph.

use std::collections::{HashMap, HashSet, VecDeque};

use bgp_types::Asn;

use crate::infer::{InfRel, InferredRelationships};

/// The customer cone of `asn`: itself plus every AS reachable by walking
/// provider→customer links downward (CAIDA's AS-Rank definition,
/// relationship-closure variant).
pub fn customer_cone(rels: &InferredRelationships, asn: Asn) -> HashSet<Asn> {
    // Build a provider → customers adjacency once per call; callers doing
    // bulk ranking should use `all_cone_sizes`.
    let mut down: HashMap<Asn, Vec<Asn>> = HashMap::new();
    for (&(a, b), rel) in rels.iter() {
        if let InfRel::P2c(provider) = rel {
            let customer = if *provider == a { b } else { a };
            down.entry(*provider).or_default().push(customer);
        }
    }
    let mut cone = HashSet::new();
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(next) = queue.pop_front() {
        if let Some(customers) = down.get(&next) {
            for &c in customers {
                if cone.insert(c) {
                    queue.push_back(c);
                }
            }
        }
    }
    cone
}

/// Cone sizes for every AS in the graph, sorted descending by size then
/// ascending by ASN (an AS-Rank-style ranking).
pub fn all_cone_sizes(rels: &InferredRelationships) -> Vec<(Asn, usize)> {
    let mut asns: HashSet<Asn> = HashSet::new();
    for (&(a, b), _) in rels.iter() {
        asns.insert(a);
        asns.insert(b);
    }
    let mut sizes: Vec<(Asn, usize)> = asns
        .into_iter()
        .map(|a| (a, customer_cone(rels, a).len()))
        .collect();
    sizes.sort_unstable_by_key(|&(a, s)| (std::cmp::Reverse(s), a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_topology::{generate, Rel, Topology, TopologyConfig};

    fn oracle() -> (Topology, InferredRelationships) {
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 5,
            mid_transit_count: 8,
            stub_count: 40,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let rels = InferredRelationships::from_topology(&topo);
        (topo, rels)
    }

    #[test]
    fn stub_cone_is_itself() {
        let (topo, rels) = oracle();
        for s in topo
            .asns_of_tier(bgp_topology::Tier::Stub)
            .into_iter()
            .take(10)
        {
            assert_eq!(customer_cone(&rels, s), HashSet::from([s]));
        }
    }

    #[test]
    fn provider_cone_contains_customer_cones() {
        let (topo, rels) = oracle();
        for link in topo
            .links
            .iter()
            .filter(|l| l.rel == Rel::ProviderCustomer)
            .take(40)
        {
            let pc = customer_cone(&rels, link.a);
            let cc = customer_cone(&rels, link.b);
            assert!(
                cc.is_subset(&pc),
                "cone of {} not within cone of {}",
                link.b,
                link.a
            );
        }
    }

    #[test]
    fn tier1_cones_are_largest() {
        let (topo, rels) = oracle();
        let ranking = all_cone_sizes(&rels);
        let tier1: HashSet<Asn> = topo
            .asns_of_tier(bgp_topology::Tier::Tier1)
            .into_iter()
            .collect();
        // All tier-1s rank in the top (tier1 + large) positions.
        let top: Vec<Asn> = ranking
            .iter()
            .take(tier1.len() + topo.asns_of_tier(bgp_topology::Tier::LargeTransit).len())
            .map(|&(a, _)| a)
            .collect();
        for t in &tier1 {
            assert!(top.contains(t), "tier-1 {t} not in top of cone ranking");
        }
    }

    #[test]
    fn cone_membership_is_reflexive() {
        let (topo, rels) = oracle();
        for asn in topo.asns_sorted().into_iter().take(20) {
            assert!(customer_cone(&rels, asn).contains(&asn));
        }
    }
}
