//! AS relationship inference and organization (sibling) mapping.
//!
//! The paper uses CAIDA's AS relationship and as2org datasets as context
//! (§4): inferred relationships feed the customer:peer feature of Fig 7,
//! and sibling ASes widen the on-path test ("the ASN *or a sibling
//! thereof*"). This crate provides both substitutes:
//!
//! * [`infer::infer_relationships`] — a Gao-style algorithm over the
//!   observed AS paths themselves (degree-based top detection, per-path
//!   voting, peer identification), plus an oracle mode reading the
//!   synthetic topology for experiments that want to isolate method error
//!   from relationship-inference error;
//! * [`cone::customer_cone`] — per-AS customer cones over the inferred
//!   graph;
//! * [`org::SiblingMap`] — the as2org substitute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod infer;
pub mod org;

pub use cone::customer_cone;
pub use infer::{infer_relationships, InfRel, InferConfig, InferredRelationships, RelView};
pub use org::SiblingMap;
