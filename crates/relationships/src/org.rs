//! Organization (sibling) mapping — the as2org substitute.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_topology::Topology;
use bgp_types::Asn;

/// Maps each AS to its organization so sibling ASes can be expanded.
///
/// The inference method's on-path test asks whether the community authority
/// "or a sibling thereof" appears in any AS path (§5.2); this is the lookup
/// behind that phrase.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct SiblingMap {
    org_of: HashMap<Asn, u32>,
    members: Vec<Vec<Asn>>,
}

impl SiblingMap {
    /// Build from explicit organization membership lists.
    pub fn from_orgs<I, J>(orgs: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = Asn>,
    {
        let mut map = SiblingMap::default();
        for org in orgs {
            let id = map.members.len() as u32;
            let mut list: Vec<Asn> = org.into_iter().collect();
            list.sort_unstable();
            list.dedup();
            for &asn in &list {
                map.org_of.insert(asn, id);
            }
            map.members.push(list);
        }
        map
    }

    /// Build from the synthetic topology's organizations.
    pub fn from_topology(topo: &Topology) -> Self {
        SiblingMap::from_orgs(topo.orgs.iter().map(|o| o.members.iter().copied()))
    }

    /// `asn` plus all its siblings (itself alone when unknown).
    pub fn expand(&self, asn: Asn) -> Vec<Asn> {
        match self.org_of.get(&asn) {
            Some(&org) => self.members[org as usize].clone(),
            None => vec![asn],
        }
    }

    /// The siblings of `asn`, excluding itself.
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        self.expand(asn).into_iter().filter(|a| *a != asn).collect()
    }

    /// Whether two ASes belong to the same organization.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        a != b
            && match (self.org_of.get(&a), self.org_of.get(&b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            }
    }

    /// Number of known organizations.
    pub fn org_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().copied().map(Asn::new).collect()
    }

    #[test]
    fn expand_returns_all_members() {
        let map = SiblingMap::from_orgs(vec![asns(&[1, 2, 3]), asns(&[7])]);
        assert_eq!(map.expand(Asn::new(2)), asns(&[1, 2, 3]));
        assert_eq!(map.expand(Asn::new(7)), asns(&[7]));
        assert_eq!(map.expand(Asn::new(99)), asns(&[99])); // unknown
        assert_eq!(map.siblings(Asn::new(1)), asns(&[2, 3]));
    }

    #[test]
    fn sibling_predicate() {
        let map = SiblingMap::from_orgs(vec![asns(&[1, 2]), asns(&[3])]);
        assert!(map.are_siblings(Asn::new(1), Asn::new(2)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(1)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(3)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(99)));
    }

    #[test]
    fn from_topology_matches_org_lists() {
        use bgp_topology::{generate, TopologyConfig};
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 10,
            stub_count: 30,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let map = SiblingMap::from_topology(&topo);
        assert_eq!(map.org_count(), topo.orgs.len());
        for asn in topo.asns_sorted() {
            assert_eq!(map.siblings(asn), topo.siblings(asn));
        }
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let map = SiblingMap::from_orgs(vec![asns(&[5, 5, 6])]);
        assert_eq!(map.expand(Asn::new(5)), asns(&[5, 6]));
    }
}
