//! Organization (sibling) mapping — the as2org substitute.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_topology::Topology;
use bgp_types::{AsPath, Asn};

/// Maps each AS to its organization so sibling ASes can be expanded.
///
/// The inference method's on-path test asks whether the community authority
/// "or a sibling thereof" appears in any AS path (§5.2); this is the lookup
/// behind that phrase.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct SiblingMap {
    org_of: HashMap<Asn, u32>,
    members: Vec<Vec<Asn>>,
}

impl SiblingMap {
    /// Build from explicit organization membership lists.
    pub fn from_orgs<I, J>(orgs: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = Asn>,
    {
        let mut map = SiblingMap::default();
        for org in orgs {
            let id = map.members.len() as u32;
            let mut list: Vec<Asn> = org.into_iter().collect();
            list.sort_unstable();
            list.dedup();
            for &asn in &list {
                map.org_of.insert(asn, id);
            }
            map.members.push(list);
        }
        map
    }

    /// Build from the synthetic topology's organizations.
    pub fn from_topology(topo: &Topology) -> Self {
        SiblingMap::from_orgs(topo.orgs.iter().map(|o| o.members.iter().copied()))
    }

    /// `asn` plus all its siblings (itself alone when unknown), as an
    /// owned list. Convenience wrapper over [`expand_ref`](Self::expand_ref);
    /// prefer the borrowing form in loops — this clones the member list on
    /// every call.
    pub fn expand(&self, asn: Asn) -> Vec<Asn> {
        self.expand_ref(&asn).to_vec()
    }

    /// `asn` plus all its siblings without allocating: a known ASN borrows
    /// its organization's sorted member list, an unknown ASN borrows
    /// itself. The returned slice is sorted and deduped.
    pub fn expand_ref<'a>(&'a self, asn: &'a Asn) -> &'a [Asn] {
        match self.org_of.get(asn) {
            Some(&org) => &self.members[org as usize],
            None => std::slice::from_ref(asn),
        }
    }

    /// The paper's on-path test (§5.2): whether `owner` *"(or a sibling
    /// thereof)"* appears anywhere in `path`. Allocation-free.
    pub fn is_on_path(&self, owner: Asn, path: &AsPath) -> bool {
        path.contains_any(self.expand_ref(&owner))
    }

    /// Dense organization ID of `asn`, if it belongs to a known org.
    /// IDs are contiguous in `0..org_count()` and index
    /// [`org_members`](Self::org_members).
    pub fn org_id(&self, asn: Asn) -> Option<u32> {
        self.org_of.get(&asn).copied()
    }

    /// Sorted, deduped member list of an organization.
    pub fn org_members(&self, org: u32) -> &[Asn] {
        &self.members[org as usize]
    }

    /// The siblings of `asn`, excluding itself.
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        self.expand(asn).into_iter().filter(|a| *a != asn).collect()
    }

    /// Whether two ASes belong to the same organization.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        a != b
            && match (self.org_of.get(&a), self.org_of.get(&b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            }
    }

    /// Number of known organizations.
    pub fn org_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().copied().map(Asn::new).collect()
    }

    #[test]
    fn expand_returns_all_members() {
        let map = SiblingMap::from_orgs(vec![asns(&[1, 2, 3]), asns(&[7])]);
        assert_eq!(map.expand(Asn::new(2)), asns(&[1, 2, 3]));
        assert_eq!(map.expand(Asn::new(7)), asns(&[7]));
        assert_eq!(map.expand(Asn::new(99)), asns(&[99])); // unknown
        assert_eq!(map.siblings(Asn::new(1)), asns(&[2, 3]));
    }

    #[test]
    fn expand_ref_borrows_without_allocating() {
        let map = SiblingMap::from_orgs(vec![asns(&[3, 1, 2]), asns(&[7])]);
        let owner = Asn::new(2);
        assert_eq!(map.expand_ref(&owner), &asns(&[1, 2, 3])[..]);
        let unknown = Asn::new(99);
        assert_eq!(map.expand_ref(&unknown), &asns(&[99])[..]);
        // The borrowing and cloning forms agree everywhere.
        for a in [1, 2, 3, 7, 99] {
            let asn = Asn::new(a);
            assert_eq!(map.expand_ref(&asn), map.expand(asn).as_slice());
        }
    }

    #[test]
    fn is_on_path_matches_sibling_expansion() {
        let map = SiblingMap::from_orgs(vec![asns(&[1299, 64500])]);
        let path: AsPath = "65541 64500 64496".parse().unwrap();
        assert!(map.is_on_path(Asn::new(1299), &path)); // via sibling
        assert!(map.is_on_path(Asn::new(64500), &path)); // directly
        assert!(!map.is_on_path(Asn::new(3356), &path));
        assert!(map.is_on_path(Asn::new(64496), &path)); // unknown, direct
    }

    #[test]
    fn org_ids_are_dense_and_index_members() {
        let map = SiblingMap::from_orgs(vec![asns(&[1, 2]), asns(&[7])]);
        assert_eq!(map.org_id(Asn::new(2)), Some(0));
        assert_eq!(map.org_id(Asn::new(7)), Some(1));
        assert_eq!(map.org_id(Asn::new(99)), None);
        assert_eq!(map.org_members(0), &asns(&[1, 2])[..]);
        assert_eq!(map.org_members(1), &asns(&[7])[..]);
    }

    #[test]
    fn sibling_predicate() {
        let map = SiblingMap::from_orgs(vec![asns(&[1, 2]), asns(&[3])]);
        assert!(map.are_siblings(Asn::new(1), Asn::new(2)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(1)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(3)));
        assert!(!map.are_siblings(Asn::new(1), Asn::new(99)));
    }

    #[test]
    fn from_topology_matches_org_lists() {
        use bgp_topology::{generate, TopologyConfig};
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 10,
            stub_count: 30,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let map = SiblingMap::from_topology(&topo);
        assert_eq!(map.org_count(), topo.orgs.len());
        for asn in topo.asns_sorted() {
            assert_eq!(map.siblings(asn), topo.siblings(asn));
        }
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let map = SiblingMap::from_orgs(vec![asns(&[5, 5, 6])]);
        assert_eq!(map.expand(Asn::new(5)), asns(&[5, 6]));
    }
}
