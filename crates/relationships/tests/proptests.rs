//! Property-based tests: relationship inference and cone invariants over
//! arbitrary simulated worlds.

use proptest::prelude::*;

use bgp_policy::{generate_policies, PolicyConfig};
use bgp_relationships::{
    cone::all_cone_sizes, customer_cone, infer_relationships, InfRel, InferConfig,
    InferredRelationships, SiblingMap,
};
use bgp_sim::{select_vantage_points, SimConfig, Simulator, VpConfig};
use bgp_topology::{generate, TopologyConfig};
use bgp_types::AsPath;

fn arb_seed() -> impl Strategy<Value = u64> {
    any::<u64>()
}

fn world(seed: u64) -> (bgp_topology::Topology, Vec<bgp_types::Observation>) {
    let topo = generate(&TopologyConfig {
        seed,
        tier1_count: 3,
        large_transit_count: 5,
        mid_transit_count: 8,
        stub_count: 30,
        ixp_count: 1,
        ..TopologyConfig::default()
    });
    let policies = generate_policies(
        &topo,
        &PolicyConfig {
            seed: seed ^ 1,
            ..Default::default()
        },
    );
    let cfg = SimConfig {
        seed: seed ^ 2,
        threads: 1,
        ..SimConfig::default()
    };
    let sim = Simulator::new(&topo, &policies, &cfg);
    let vps = select_vantage_points(
        &topo,
        &VpConfig {
            seed: seed ^ 3,
            mid_count: 4,
            stub_count: 6,
            ..Default::default()
        },
    );
    let observations = sim.collect_rib(&vps);
    (topo, observations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn inference_is_deterministic_and_symmetric(seed in arb_seed()) {
        let (_, observations) = world(seed);
        let paths: Vec<&AsPath> = observations.iter().map(|o| &o.path).collect();
        let a = infer_relationships(paths.clone(), &InferConfig::default());
        let b = infer_relationships(paths, &InferConfig::default());
        prop_assert_eq!(a.link_count(), b.link_count());
        for (&(x, y), rel) in a.iter() {
            prop_assert_eq!(b.relationship(x, y), Some(*rel));
            // The two views of one link are consistent.
            match rel {
                InfRel::P2p => {
                    prop_assert_eq!(a.view(x, y), a.view(y, x));
                }
                InfRel::P2c(provider) => {
                    let (p, c) = if *provider == x { (x, y) } else { (y, x) };
                    prop_assert_eq!(a.view(p, c), Some(bgp_relationships::RelView::Customer));
                    prop_assert_eq!(a.view(c, p), Some(bgp_relationships::RelView::Provider));
                }
            }
        }
    }

    #[test]
    fn every_observed_link_gets_a_relationship(seed in arb_seed()) {
        let (_, observations) = world(seed);
        let paths: Vec<&AsPath> = observations.iter().map(|o| &o.path).collect();
        let inferred = infer_relationships(paths, &InferConfig::default());
        for obs in observations.iter().take(200) {
            let asns = obs.path.unique_asns();
            for w in asns.windows(2) {
                prop_assert!(
                    inferred.relationship(w[0], w[1]).is_some(),
                    "observed link {}-{} missing",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn cones_nest_along_inferred_p2c(seed in arb_seed()) {
        let (topo, _) = world(seed);
        let oracle = InferredRelationships::from_topology(&topo);
        for (&(a, b), rel) in oracle.iter() {
            if let InfRel::P2c(provider) = rel {
                let customer = if *provider == a { b } else { a };
                let pc = customer_cone(&oracle, *provider);
                let cc = customer_cone(&oracle, customer);
                prop_assert!(cc.is_subset(&pc));
            }
        }
        // Ranking is a permutation of all ASes in the link graph.
        let sizes = all_cone_sizes(&oracle);
        prop_assert!(sizes.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn sibling_map_round_trips_serde(seed in arb_seed()) {
        let (topo, _) = world(seed);
        let map = SiblingMap::from_topology(&topo);
        let json = serde_json::to_string(&map).unwrap();
        let back: SiblingMap = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &map);
        for asn in topo.asns_sorted().into_iter().take(20) {
            prop_assert_eq!(back.expand(asn), map.expand(asn));
        }
    }
}
