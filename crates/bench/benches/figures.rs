//! One bench per table/figure of the paper: regenerates each result at a
//! reduced scale and measures its cost. The experiment binaries (`cargo
//! run -p bgp-experiments --bin figNN`) produce the full-scale numbers;
//! these benches keep every harness continuously exercised and timed.

use criterion::{criterion_group, criterion_main, Criterion};

use bgp_experiments::figures::{
    days, fig04, fig06, fig07, fig09, fig10, finegrained, headline, large, overtime, ratio, table1,
};
use bgp_experiments::{Scenario, ScenarioConfig};

fn tiny_config() -> ScenarioConfig {
    ScenarioConfig {
        scale: 0.12,
        documented: 15,
        ..ScenarioConfig::default()
    }
}

fn bench_figures(c: &mut Criterion) {
    let cfg = tiny_config();
    let scenario = Scenario::build(&cfg);
    let observations = scenario.collect(2);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("headline", |b| {
        b.iter(|| headline::run(&scenario, &observations))
    });
    group.bench_function("fig04_dictionary_vs_observed", |b| {
        b.iter(|| fig04::run(&scenario, &observations, 30))
    });
    group.bench_function("fig06_onpath_offpath_cdf", |b| {
        b.iter(|| fig06::run(&scenario, &observations))
    });
    group.bench_function("fig07_customer_peer_cdf", |b| {
        b.iter(|| fig07::run(&scenario, &observations, true))
    });
    group.bench_function("fig09_gap_sweep", |b| {
        // A coarse sweep keeps the bench fast while touching the full path.
        b.iter(|| fig09::run(&scenario, &observations, &[0, 140, 500, 2000]))
    });
    group.bench_function("fig10_vantage_points", |b| {
        b.iter(|| fig10::run(&scenario, &observations, &[2, 8, 20], 3))
    });
    group.bench_function("table1_location_improvement", |b| {
        b.iter(|| table1::run(&scenario, &observations))
    });
    group.bench_function("days_sweep", |b| {
        b.iter(|| days::run(&scenario, &observations, 2))
    });
    group.bench_function("ratio_sweep", |b| {
        b.iter(|| ratio::run(&scenario, &observations, &[40.0, 160.0, 640.0]))
    });
    group.bench_function("ext_finegrained_categories", |b| {
        b.iter(|| finegrained::run(&scenario, &observations))
    });
    group.bench_function("ext_large_communities", |b| {
        b.iter(|| large::run(&scenario, &observations))
    });
    group.finish();

    // The over-time sweep rebuilds worlds; benched separately and briefly.
    let mut slow = c.benchmark_group("figures-slow");
    slow.sample_size(10);
    slow.bench_function("overtime_2_months", |b| b.iter(|| overtime::run(&cfg, 2)));
    slow.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
