//! Route propagation cost: the simulator substrate.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};

use bgp_policy::{generate_policies, PolicyConfig};
use bgp_sim::{select_vantage_points, SimConfig, Simulator, VpConfig};
use bgp_topology::{generate, TopologyConfig};

fn bench_propagation(c: &mut Criterion) {
    let topo = generate(&TopologyConfig {
        tier1_count: 5,
        large_transit_count: 15,
        mid_transit_count: 40,
        stub_count: 200,
        ixp_count: 2,
        ..TopologyConfig::default()
    });
    let policies = generate_policies(&topo, &PolicyConfig::default());
    let cfg = SimConfig {
        threads: 1,
        ..SimConfig::default()
    };
    let sim = Simulator::new(&topo, &policies, &cfg);
    let (prefix, _) = sim.plan().origins[0];
    let none = HashSet::new();

    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    group.bench_function("single_prefix/260as", |b| {
        b.iter(|| sim.propagate(prefix, &none))
    });

    let vps = select_vantage_points(
        &topo,
        &VpConfig {
            mid_count: 10,
            stub_count: 15,
            ..Default::default()
        },
    );
    group.sample_size(10);
    group.bench_function("collect_rib/260as_45vps", |b| {
        b.iter(|| sim.collect_rib(&vps))
    });
    group.bench_function("simulator_build/260as", |b| {
        b.iter(|| Simulator::new(&topo, &policies, &cfg))
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    let topo_cfg = TopologyConfig {
        tier1_count: 5,
        large_transit_count: 15,
        mid_transit_count: 40,
        stub_count: 200,
        ixp_count: 2,
        ..TopologyConfig::default()
    };
    group.bench_function("topology/260as", |b| b.iter(|| generate(&topo_cfg)));
    let topo = generate(&topo_cfg);
    group.bench_function("policies/260as", |b| {
        b.iter(|| generate_policies(&topo, &PolicyConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_generation);
criterion_main!(benches);
