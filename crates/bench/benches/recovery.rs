//! Overhead of the recovering reader: on a clean stream it should track
//! the plain `MrtReader` closely (<5% is the budget), and stay reasonable
//! on damaged input where the plain reader simply gives up.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bgp_mrt::faults::corrupt_stream;
use bgp_mrt::obs::write_update_stream;
use bgp_mrt::{MrtReader, RecoveringReader};
use bgp_types::{AsPath, Asn, Community, Observation};

fn sample_observations(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| Observation {
            vp: Asn::new(64_500 + (i as u32 % 40)),
            prefix: format!("10.{}.{}.0/24", (i / 250) % 250, i % 250)
                .parse()
                .unwrap(),
            path: AsPath::from_sequence(
                [
                    64_500 + (i as u32 % 40),
                    7018,
                    1299,
                    40_000 + (i as u32 % 500),
                ]
                .map(Asn::new),
            ),
            communities: (0..8).map(|k| Community::new(1299, 20_000 + k)).collect(),
            large_communities: Vec::new(),
            time: 1_682_899_200,
        })
        .collect()
}

fn update_stream(n: usize) -> Vec<u8> {
    let mut wire = Vec::new();
    write_update_stream(&mut wire, Asn::new(6447), &sample_observations(n)).unwrap();
    wire
}

fn bench_clean(c: &mut Criterion) {
    let wire = update_stream(2_000);
    let mut group = c.benchmark_group("recovery/clean");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("plain_reader", |b| {
        b.iter(|| MrtReader::new(&wire[..]).filter(|r| r.is_ok()).count())
    });
    group.bench_function("recovering_reader", |b| {
        b.iter(|| {
            RecoveringReader::new(&wire[..])
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

fn bench_corrupted(c: &mut Criterion) {
    let clean = update_stream(2_000);
    let mut group = c.benchmark_group("recovery/corrupted");
    for percent in [1u32, 5] {
        let (damaged, _) = corrupt_stream(&clean, 42, percent as f64 / 100.0);
        group.throughput(Throughput::Bytes(damaged.len() as u64));
        group.bench_function(format!("recovering_reader/{percent}pct"), |b| {
            b.iter(|| {
                RecoveringReader::new(&damaged[..])
                    .filter(|r| r.is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clean, bench_corrupted);
criterion_main!(benches);
