//! Ablation studies for the design choices DESIGN.md calls out: each
//! variant is timed, and its accuracy against ground truth is printed once
//! so the cost/quality trade-off is visible in the bench log.
//!
//! * ratio aggregation: mean of per-community ratios (paper) vs pooled
//!   cluster counts;
//! * sibling (as2org) expansion on/off;
//! * exclusion rules (private ASN / reserved / never-on-path) on/off.

use criterion::{criterion_group, criterion_main, Criterion};

use bgp_experiments::{Scenario, ScenarioConfig};
use bgp_intent::classify::{classify, InferenceConfig};
use bgp_intent::eval::evaluate;
use bgp_intent::stats::PathStats;
use bgp_relationships::SiblingMap;

fn bench_ablations(c: &mut Criterion) {
    let scenario = Scenario::build(&ScenarioConfig {
        scale: 0.2,
        documented: 20,
        ..ScenarioConfig::default()
    });
    let observations = scenario.collect(2);
    let stats = PathStats::from_observations(&observations, &scenario.siblings);
    let no_siblings = SiblingMap::default();
    let stats_no_sib = PathStats::from_observations(&observations, &no_siblings);

    let variants: Vec<(&str, InferenceConfig, &PathStats, &SiblingMap)> = vec![
        (
            "paper_defaults",
            InferenceConfig::default(),
            &stats,
            &scenario.siblings,
        ),
        (
            "pooled_ratio",
            InferenceConfig {
                pooled_ratio: true,
                ..InferenceConfig::default()
            },
            &stats,
            &scenario.siblings,
        ),
        (
            "no_siblings",
            InferenceConfig {
                use_siblings: false,
                ..InferenceConfig::default()
            },
            &stats_no_sib,
            &no_siblings,
        ),
        (
            "no_exclusions",
            InferenceConfig {
                apply_exclusions: false,
                ..InferenceConfig::default()
            },
            &stats,
            &scenario.siblings,
        ),
        (
            "no_clustering",
            InferenceConfig {
                min_gap: 0,
                ..InferenceConfig::default()
            },
            &stats,
            &scenario.siblings,
        ),
    ];

    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);
    for (name, cfg, variant_stats, siblings) in &variants {
        // Report the quality impact once, alongside the timing.
        let inference = classify(variant_stats, siblings, cfg);
        let eval = evaluate(&inference, &scenario.dict);
        println!(
            "[ablation {name}] accuracy {:.3} over {} covered, {} classified, {} excluded",
            eval.accuracy(),
            eval.total,
            inference.labels.len(),
            inference.excluded.len(),
        );
        group.bench_function(*name, |b| b.iter(|| classify(variant_stats, siblings, cfg)));
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
