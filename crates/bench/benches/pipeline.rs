//! Inference pipeline stages: statistics, clustering, classification,
//! evaluation — plus the full archive path: MRT decode → columnar store →
//! inference, both through the zero-copy view decoder (`end_to_end`) and
//! the owned-decode oracle (`end_to_end_owned`), and over on-disk archives
//! through the supervised readahead chain (`end_to_end_large`).

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bgp_artifact::LabelArtifact;
use bgp_experiments::{Scenario, ScenarioConfig};
use bgp_intent::classify::{classify, classify_parallelism, InferenceConfig};
use bgp_intent::cluster::gap_clusters;
use bgp_intent::eval::evaluate;
use bgp_intent::stats::PathStats;
use bgp_intent::{
    run_inference, run_inference_from_stats, run_inference_store, run_inference_store_telemetry,
    run_watch, StatsAccumulator, WatchOptions, WindowConfig,
};
use bgp_mrt::obs::{
    read_observations_parallel_store, read_observations_resilient_into,
    read_observations_resilient_reference, write_update_stream,
};
use bgp_mrt::{MemoryFeed, RecoverConfig, StreamTuning};
use bgp_types::obs::Telemetry;
use bgp_types::store::ObservationStore;
use bgp_types::Asn;

fn scenario() -> Scenario {
    Scenario::build(&ScenarioConfig {
        scale: 0.2,
        documented: 20,
        ..ScenarioConfig::default()
    })
}

/// Peak resident set (`VmHWM`) of this process in whole megabytes; 0 when
/// `/proc` is unavailable.
fn peak_rss_mb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb / 1024)
}

fn bench_pipeline(c: &mut Criterion) {
    let scenario = scenario();
    let observations = scenario.collect(1);
    let stats = PathStats::from_observations(&observations, &scenario.siblings);
    // The decode fixture: the day-1 dataset serialized as a BGP4MP update
    // archive. Decoding it back yields exactly `observations`, so the
    // archive-fed end-to-end entries stay element-comparable with the
    // pure-inference ones.
    let mut wire = Vec::new();
    write_update_stream(&mut wire, Asn::new(6447), &observations).expect("in-memory MRT write");
    let recover = RecoverConfig::default();
    // Sequential baseline vs. one-worker-per-CPU; outputs are identical, so
    // the `*_par` / `_seq` pairs measure pure scheduling + merge overhead
    // (single-core) or speedup (multi-core).
    let seq = InferenceConfig {
        threads: 1,
        ..InferenceConfig::default()
    };
    let par = InferenceConfig {
        threads: 0,
        ..InferenceConfig::default()
    };
    let inference = classify(&stats, &scenario.siblings, &seq);
    // The bench scenario sits below the parallel-classify thresholds
    // (hundreds of owners, but few communities per owner), so `classify`
    // and `classify_par` must measure the *same* sequential code path —
    // the parallel fan-out used to run ~1.2× slower here, and the gate in
    // `classify_parallelism` exists precisely to keep small inputs off it.
    assert_eq!(
        classify_parallelism(stats.by_owner().len(), stats.community_count(), 0),
        1,
        "bench scenario unexpectedly clears the parallel-classify thresholds",
    );

    // The checkpointed-run path: intern each "file" (8 slices standing in
    // for 8 MRT archives) into a columnar store and accumulate statistics
    // from it — the same route the CLI takes — serializing a snapshot
    // after each as a checkpointed run would, then classify from the
    // accumulator.
    let files: Vec<_> = observations
        .chunks(observations.len().div_ceil(8))
        .collect();
    let checkpointed_run = || {
        let mut acc = StatsAccumulator::new();
        let mut fingerprints = 0usize;
        for file in &files {
            let store = bgp_types::store::ObservationStore::from_observations(file);
            acc.ingest_store(&store, &scenario.siblings, 0);
            fingerprints += acc.snapshot().paths.len();
        }
        std::hint::black_box(fingerprints);
        run_inference_from_stats(
            acc.to_stats(),
            &scenario.siblings,
            &par,
            Some(&scenario.dict),
            None,
        )
    };

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    // Throughput applies to every bench registered after it is set, so the
    // per-stage benches that are not observation-bound run first.
    group.bench_function("classify", |b| {
        b.iter(|| classify(&stats, &scenario.siblings, &seq))
    });
    group.bench_function("classify_par", |b| {
        b.iter(|| classify(&stats, &scenario.siblings, &par))
    });
    group.bench_function("evaluate", |b| {
        b.iter(|| evaluate(&inference, &scenario.dict))
    });
    // Checkpoint overhead (budget: <3% of `end_to_end`), measured as a
    // paired difference: each sample times a plain run and a checkpointed
    // run back-to-back and reports checkpointed − plain. Comparing the two
    // entries above directly is misleading on a busy host — clock-speed
    // drift over the bench binary's lifetime easily exceeds the budget —
    // while pairing cancels it. Negative drift clamps to zero.
    group.bench_function("checkpoint_overhead", |b| {
        b.iter_custom(|iters| {
            let mut overhead = 0i128;
            for _ in 0..iters {
                let t = std::time::Instant::now();
                std::hint::black_box(run_inference(
                    &observations,
                    &scenario.siblings,
                    &par,
                    Some(&scenario.dict),
                ));
                let plain = t.elapsed();
                let t = std::time::Instant::now();
                std::hint::black_box(checkpointed_run());
                let checkpointed = t.elapsed();
                overhead += checkpointed.as_nanos() as i128 - plain.as_nanos() as i128;
            }
            std::time::Duration::from_nanos(overhead.max(0) as u64)
        })
    });
    // Telemetry overhead (budget: <1% of `end_to_end`), measured the same
    // paired way: each sample times the pristine store pipeline and the
    // telemetry entry point with telemetry *disabled* back-to-back. The
    // disabled path must cost exactly one branch, so the reported
    // difference is expected to sit in the noise floor around zero;
    // bench_compare's `--overhead` gate holds it under 1% of end_to_end.
    let store = ObservationStore::from_observations(&observations);
    group.bench_function("telemetry_overhead", |b| {
        b.iter_custom(|iters| {
            // Both sides run *sequentially* (threads = 1): the disabled
            // telemetry path is one branch, and per-iteration thread
            // spawn/join jitter in the parallel pipeline is orders of
            // magnitude larger than the cost under test.
            let disabled = Telemetry::disabled();
            let time_plain = || {
                let t = std::time::Instant::now();
                std::hint::black_box(run_inference_store(
                    &store,
                    &scenario.siblings,
                    &seq,
                    Some(&scenario.dict),
                ));
                t.elapsed().as_nanos() as i128
            };
            let time_telemetry = || {
                let t = std::time::Instant::now();
                std::hint::black_box(run_inference_store_telemetry(
                    &store,
                    &scenario.siblings,
                    &seq,
                    Some(&scenario.dict),
                    &disabled,
                ));
                t.elapsed().as_nanos() as i128
            };
            // Per requested iteration, run several pairs and keep the
            // *median* difference: scheduler hiccups land on one side of
            // a pair at random and only ever add time, so a mean is
            // biased upward by exactly the noise this bench must stay
            // below. Each pair alternates which side runs first, since
            // whichever runs second sees warmer caches.
            const PAIRS: usize = 5;
            let mut overhead = 0i128;
            let mut diffs = [0i128; PAIRS];
            for _ in 0..iters {
                for (p, diff) in diffs.iter_mut().enumerate() {
                    *diff = if p % 2 == 0 {
                        let plain = time_plain();
                        time_telemetry() - plain
                    } else {
                        let instrumented = time_telemetry();
                        instrumented - time_plain()
                    };
                }
                diffs.sort_unstable();
                overhead += diffs[PAIRS / 2].max(0);
            }
            std::time::Duration::from_nanos(overhead.max(0) as u64)
        })
    });
    // Everything below consumes the full observation set per iteration:
    // report elements/sec so regressions are visible as throughput, not
    // just wall time.
    group.throughput(Throughput::Elements(observations.len() as u64));
    group.bench_function("path_stats", |b| {
        b.iter(|| PathStats::from_observations(&observations, &scenario.siblings))
    });
    group.bench_function("path_stats_par", |b| {
        b.iter(|| PathStats::from_observations_threaded(&observations, &scenario.siblings, 0))
    });
    group.bench_function("end_to_end_seq", |b| {
        b.iter(|| {
            run_inference(
                &observations,
                &scenario.siblings,
                &seq,
                Some(&scenario.dict),
            )
        })
    });
    // The headline entry: the whole archive path — resilient zero-copy view
    // decode of the MRT stream interning straight into the columnar store,
    // then the parallel inference pipeline. `end_to_end_owned` runs the
    // identical harness through the owned-decode oracle, so one bench run
    // shows what the borrowed-view fast path buys.
    group.bench_function("end_to_end", |b| {
        b.iter(|| {
            let mut store = ObservationStore::new();
            let report = read_observations_resilient_into(&wire[..], &recover, &mut store);
            assert!(report.is_clean(), "pristine archive decoded with errors");
            run_inference_store(&store, &scenario.siblings, &par, Some(&scenario.dict))
        })
    });
    group.bench_function("end_to_end_owned", |b| {
        b.iter(|| {
            let mut store = ObservationStore::new();
            let report = read_observations_resilient_reference(&wire[..], &recover, &mut store);
            assert!(report.is_clean(), "pristine archive decoded with errors");
            run_inference_store(&store, &scenario.siblings, &par, Some(&scenario.dict))
        })
    });
    group.bench_function("end_to_end_checkpointed", |b| b.iter(checkpointed_run));

    // The streaming daemon at steady state: the same generator's update
    // stream served from an in-memory feed through the bounded ingest
    // queue, folded into rolling windows with incremental
    // reclassification, run to the quiescent point. Warn-only in
    // bench_compare: wall time includes queue handoff and quiesce
    // polling, which are noisier than the pure-compute entries above.
    let sim = scenario.simulator();
    let mut stream_wire = Vec::new();
    let summary = scenario
        .stream_collect(&sim, 2, &mut stream_wire)
        .expect("in-memory MRT stream write");
    let stream_wire = Arc::new(stream_wire);
    let watch_opts = WatchOptions {
        window: WindowConfig {
            window_secs: 3600,
            windows: 6,
        },
        tuning: StreamTuning {
            quiesce_after: Some(1),
            ..StreamTuning::default()
        },
        ..WatchOptions::default()
    };
    group.throughput(Throughput::Elements(summary.observations));
    group.bench_function("watch_steady_state", |b| {
        b.iter(|| {
            let outcome = run_watch(
                MemoryFeed::new(Arc::clone(&stream_wire)),
                &scenario.siblings,
                &watch_opts,
                Arc::new(AtomicBool::new(false)),
            )
            .expect("in-memory watch run");
            assert!(outcome.advances > 0, "stream too short to advance a window");
            outcome
        })
    });

    // The on-disk variant: the same archive written out several times and
    // read back through the supervised file chain production ingestion
    // uses (File → BufReader → RetryingReader → Readahead → recovering
    // decode), per-file stores merged, then inference.
    const LARGE_COPIES: usize = 6;
    let large_dir = std::env::temp_dir().join("bgp-bench-pipeline-large");
    std::fs::create_dir_all(&large_dir).expect("create bench dir");
    let large_paths: Vec<PathBuf> = (0..LARGE_COPIES)
        .map(|i| {
            let path = large_dir.join(format!("archive{i}.mrt"));
            std::fs::write(&path, &wire).expect("write bench archive");
            path
        })
        .collect();
    let large_run = || {
        let (files, report) = read_observations_parallel_store(&large_paths, &recover, 0);
        assert!(report.is_clean(), "pristine archive decoded with errors");
        let mut merged = ObservationStore::new();
        for file in &files {
            merged.merge(&file.store);
        }
        run_inference_store(&merged, &scenario.siblings, &par, Some(&scenario.dict))
    };
    group.throughput(Throughput::Elements(
        (observations.len() * LARGE_COPIES) as u64,
    ));
    group.bench_function("end_to_end_large", |b| b.iter(&large_run));
    group.finish();

    // Peak-RSS probe for the large run. The registry schema has no memory
    // unit, so `ns_per_iter` carries *megabytes* here — the entry name
    // makes the unit explicit, and nothing gates on it as a duration.
    // `/proc/self/clear_refs` code 5 resets the VmHWM high-water mark so
    // the reading reflects this run, not whichever earlier bench peaked.
    let mut rss = c.benchmark_group("pipeline");
    rss.sample_size(1);
    rss.bench_function("end_to_end_large_rss_mb", |b| {
        b.iter_custom(|iters| {
            let _ = std::fs::write("/proc/self/clear_refs", "5");
            std::hint::black_box(large_run());
            Duration::from_nanos(peak_rss_mb().max(1) * iters)
        })
    });
    rss.finish();
}

/// The serving layer: single-key and batch lookups against a label
/// artifact built from the bench scenario's own inference, loaded through
/// the mmap path exactly as `bgpcomm query` serves it. The workload is a
/// deterministic hit/miss mix (~1/16 misses) drawn from the artifact's key
/// space with a fixed xorshift64 walk, so runs are comparable across
/// machines. Throughput is reported in lookups/sec — `query/point_lookup`
/// is gated in bench_compare and must stay above 2 Mlookups/s.
fn bench_query(c: &mut Criterion) {
    let scenario = scenario();
    let observations = scenario.collect(1);
    let result = run_inference(
        &observations,
        &scenario.siblings,
        &InferenceConfig::default(),
        None,
    );

    let dir = std::env::temp_dir().join("bgp-bench-query");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("labels.bga");
    let written = bgp_intent::write_inference_artifact(
        &path,
        &result.inference,
        InferenceConfig::default().ratio_threshold,
    )
    .expect("write bench artifact");
    assert!(written > 0, "bench scenario produced no labels");
    let artifact = LabelArtifact::load(&path).expect("load bench artifact");

    // Fixed-seed xorshift64: same workload every run, ~1/16 keys perturbed
    // into misses so the full-depth miss path stays represented.
    const LOOKUPS: usize = 4096;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let keys: Vec<bgp_types::Community> = (0..LOOKUPS)
        .map(|_| {
            let r = step();
            let c = artifact.row((r % artifact.len() as u64) as usize).community;
            if r % 16 == 0 {
                bgp_types::Community::new(c.asn, c.value.wrapping_add(1))
            } else {
                c
            }
        })
        .collect();

    let mut group = c.benchmark_group("query");
    group.throughput(Throughput::Elements(LOOKUPS as u64));
    group.bench_function("point_lookup", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &keys {
                hits += artifact.get(k).is_some() as usize;
            }
            hits
        })
    });
    group.bench_function("batch_lookup", |b| b.iter(|| artifact.get_batch(&keys, 0)));
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    // Synthetic β populations of operator-like shape.
    let mut betas: Vec<u16> = Vec::new();
    for block in 0..40u16 {
        for i in 0..25u16 {
            betas.push(block * 1500 + i * 7);
        }
    }
    betas.sort_unstable();
    betas.dedup();

    let mut group = c.benchmark_group("clustering");
    for gap in [0u16, 140, 1000] {
        group.bench_function(format!("gap_{gap}/1k_betas"), |b| {
            b.iter(|| gap_clusters(1299, &betas, gap))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_query, bench_clustering);
criterion_main!(benches);
