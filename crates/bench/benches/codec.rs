//! Wire codec throughput: the MRT/BGP encode and parse paths every
//! experiment exercises.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bgp_mrt::attrs::{decode_attrs, encode_attrs, AttrCtx, EncodeOpts};
use bgp_mrt::cursor::Cursor;
use bgp_mrt::obs::{read_observations, write_rib_dump, write_update_stream};
use bgp_types::{AsPath, Asn, Community, Observation, RouteAttrs};

fn sample_route(communities: usize) -> RouteAttrs {
    let mut route = RouteAttrs::originated(
        AsPath::from_sequence([64500, 7018, 1299, 399260].map(Asn::new)),
        std::net::IpAddr::from([203, 0, 113, 1]),
    );
    route.med = Some(70);
    for i in 0..communities as u16 {
        route.add_community(Community::new(1299, 20_000 + i));
    }
    route
}

fn sample_observations(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| Observation {
            vp: Asn::new(64_500 + (i as u32 % 40)),
            prefix: format!("10.{}.{}.0/24", (i / 250) % 250, i % 250)
                .parse()
                .unwrap(),
            path: AsPath::from_sequence(
                [
                    64_500 + (i as u32 % 40),
                    7018,
                    1299,
                    40_000 + (i as u32 % 500),
                ]
                .map(Asn::new),
            ),
            communities: (0..8).map(|k| Community::new(1299, 20_000 + k)).collect(),
            large_communities: Vec::new(),
            time: 1_682_899_200,
        })
        .collect()
}

fn bench_attrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("attrs");
    for n_comm in [2usize, 16, 64] {
        let route = sample_route(n_comm);
        let wire = encode_attrs(&route, AttrCtx::TABLE_DUMP_V2, &EncodeOpts::default()).unwrap();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_function(format!("encode/{n_comm}comms"), |b| {
            b.iter(|| encode_attrs(&route, AttrCtx::TABLE_DUMP_V2, &EncodeOpts::default()).unwrap())
        });
        group.bench_function(format!("decode/{n_comm}comms"), |b| {
            b.iter(|| {
                let mut cur = Cursor::new(&wire);
                decode_attrs(&mut cur, AttrCtx::TABLE_DUMP_V2).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mrt_files(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrt");
    group.sample_size(20);
    let observations = sample_observations(10_000);

    let mut rib_wire = Vec::new();
    write_rib_dump(&mut rib_wire, 0, &observations).unwrap();
    group.throughput(Throughput::Bytes(rib_wire.len() as u64));
    group.bench_function("write_rib_dump/10k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(rib_wire.len());
            write_rib_dump(&mut out, 0, &observations).unwrap();
            out
        })
    });
    group.bench_function("read_rib_dump/10k", |b| {
        b.iter(|| read_observations(&rib_wire[..]).unwrap())
    });

    let mut upd_wire = Vec::new();
    write_update_stream(&mut upd_wire, Asn::new(6447), &observations).unwrap();
    group.throughput(Throughput::Bytes(upd_wire.len() as u64));
    group.bench_function("write_updates/10k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(upd_wire.len());
            write_update_stream(&mut out, Asn::new(6447), &observations).unwrap();
            out
        })
    });
    group.bench_function("read_updates/10k", |b| {
        b.iter(|| read_observations(&upd_wire[..]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_attrs, bench_mrt_files);
criterion_main!(benches);
