//! Compare two bench registries (`BENCH_*.json`) and gate on regressions.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--threshold <fraction>]
//!               [--overhead <bench>:<base>:<budget>]...
//! ```
//!
//! The committed baseline (`crates/bench/BENCH_pipeline.json`) is the
//! reference; a fresh run (written elsewhere via `BENCH_JSON_DIR`) is the
//! candidate. Exit code is non-zero when a **gated** benchmark regresses
//! by more than the threshold (default 0.25 = +25% time per iteration).
//!
//! Only the end-to-end benches and the serving-layer lookups are gated:
//! `pipeline/end_to_end`, `pipeline/end_to_end_large`,
//! `pipeline/path_stats`, `query/point_lookup`, and `query/batch_lookup`.
//! Everything else — micro-benches under ~1 ms and
//! the paired-difference `checkpoint_overhead` — is reported warn-only,
//! because at those durations shared-CI timer noise routinely exceeds any
//! honest tolerance. The 25% default is deliberately loose for the same
//! reason: CI hosts are noisy neighbors, and the gate exists to catch
//! order-of-magnitude mistakes (an accidental O(n²), a lost parallel
//! path), not 5% drift.
//!
//! `--overhead <bench>:<base>:<budget>` adds a *ratio* gate within the
//! **current** run only: ns(bench) must stay at or under budget ×
//! ns(base). Paired-difference benches (`checkpoint_overhead`,
//! `telemetry_overhead`) are built for this — both sides of the pair run
//! in the same process seconds apart, so clock drift cancels and a tight
//! budget (e.g. 0.01 = 1% of `pipeline/end_to_end`) is honest where a
//! baseline-vs-current comparison would not be. Repeatable.

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde_json::Value;

/// Benchmarks whose regression fails the build. Everything else warns.
/// The `query/*` entries gate the serving layer: a point lookup is a
/// binary search over the mmapped key column and must stay in the
/// hundreds-of-nanoseconds range (≥2 Mlookups/s), so a lost fast path
/// shows up as an order-of-magnitude jump the 25% threshold catches
/// easily.
const GATED: &[&str] = &[
    "pipeline/end_to_end",
    "pipeline/end_to_end_large",
    "pipeline/path_stats",
    "query/point_lookup",
    "query/batch_lookup",
];

/// An `--overhead bench:base:budget` ratio gate on the current run.
struct OverheadGate {
    bench: String,
    base: String,
    budget: f64,
}

impl OverheadGate {
    fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.splitn(3, ':');
        let (Some(bench), Some(base), Some(budget)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "--overhead {spec}: expected <bench>:<base>:<budget>"
            ));
        };
        let budget: f64 = budget
            .parse()
            .map_err(|e| format!("--overhead {spec}: budget: {e}"))?;
        if !budget.is_finite() || budget <= 0.0 {
            return Err(format!("--overhead {spec}: budget must be positive"));
        }
        Ok(OverheadGate {
            bench: bench.to_string(),
            base: base.to_string(),
            budget,
        })
    }

    /// Check the gate against the current run; returns whether it failed.
    fn check(&self, current: &BTreeMap<String, f64>) -> Result<bool, String> {
        let &bench_ns = current
            .get(&self.bench)
            .ok_or_else(|| format!("--overhead: {} missing from current run", self.bench))?;
        let &base_ns = current
            .get(&self.base)
            .ok_or_else(|| format!("--overhead: {} missing from current run", self.base))?;
        let limit = base_ns * self.budget;
        let failed = bench_ns > limit;
        println!(
            "overhead gate: {} = {} vs {:.1}% of {} = {}  {}",
            self.bench,
            human(bench_ns),
            self.budget * 100.0,
            self.base,
            human(limit),
            if failed { "FAIL over budget" } else { "ok" }
        );
        Ok(failed)
    }
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: Value = serde_json::from_str(&raw).map_err(|e| format!("{path}: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("{path}: expected a JSON object"))?;
    let mut out = BTreeMap::new();
    for (name, record) in obj {
        let ns = record
            .get("ns_per_iter")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: {name}: missing ns_per_iter"))?;
        out.insert(name.clone(), ns);
    }
    Ok(out)
}

fn human(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .ok_or("usage: bench_compare <baseline.json> <current.json> [--threshold <fraction>]")?;
    let current_path = args.next().ok_or("missing <current.json>")?;
    let mut threshold = 0.25f64;
    let mut overhead_gates = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|e| format!("--threshold {v}: {e}"))?;
            }
            "--overhead" => {
                let v = args
                    .next()
                    .ok_or("--overhead needs <bench>:<base>:<budget>")?;
                overhead_gates.push(OverheadGate::parse(&v)?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let baseline = load(&baseline_path)?;
    let current = load(&current_path)?;

    let mut failed = false;
    println!(
        "{:<38} {:>12} {:>12} {:>8}  verdict",
        "bench", "baseline", "current", "delta"
    );
    for (name, &base_ns) in &baseline {
        let gated = GATED.contains(&name.as_str());
        let Some(&cur_ns) = current.get(name) else {
            println!(
                "{name:<38} {:>12} {:>12} {:>8}  WARN missing from current run",
                human(base_ns),
                "-",
                "-"
            );
            continue;
        };
        let delta = (cur_ns - base_ns) / base_ns;
        let verdict = if delta > threshold {
            if gated {
                failed = true;
                "FAIL regression"
            } else {
                "WARN regression (not gated)"
            }
        } else if gated {
            "ok (gated)"
        } else {
            "ok"
        };
        println!(
            "{name:<38} {:>12} {:>12} {:>+7.1}%  {verdict}",
            human(base_ns),
            human(cur_ns),
            delta * 100.0
        );
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            println!("{name:<38} (new bench, no baseline)");
        }
    }
    for gate in &overhead_gates {
        if gate.check(&current)? {
            failed = true;
        }
    }
    println!(
        "\ngate: {} must stay within +{:.0}% of baseline; all other benches warn only",
        GATED.join(", "),
        threshold * 100.0
    );
    Ok(failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench_compare: gated benchmark regressed beyond threshold");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::FAILURE
        }
    }
}
