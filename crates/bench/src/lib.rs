//! Criterion benchmark crate — all content lives in `benches/`:
//!
//! * `codec` — MRT/BGP attribute and file encode/decode throughput.
//! * `pipeline` — path statistics, clustering, classification, evaluation.
//! * `propagation` — per-prefix route propagation and world generation.
//! * `figures` — one bench per table/figure harness (reduced scale),
//!   including the two beyond-the-paper extensions.
//! * `ablations` — the design-choice ablation studies from DESIGN.md,
//!   printing each variant's accuracy alongside its timing.
//!
//! Run with `cargo bench -p bgp-bench` (or `--bench <name>`).

#![forbid(unsafe_code)]
