//! The zero-copy decode path's allocation budget: on a clean archive the
//! steady state performs **no per-record heap allocations** — every record
//! is parsed into the reusable [`bgp_mrt::RecordScratch`] arena and pushed
//! into the columnar store as a borrowed view. The only allocations left
//! are amortized capacity doublings (scratch high-water growth, store
//! column growth), which stay constant-ish no matter how many records
//! stream past. A counting global allocator makes that claim a test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bgp_mrt::obs::{read_observations_resilient_into, write_update_stream};
use bgp_mrt::RecoverConfig;
use bgp_types::store::ObservationStore;
use bgp_types::{AsPath, Asn, Community, Observation, Prefix};

/// Counts every allocation and reallocation (frees are irrelevant to the
/// per-record budget).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// An update archive of `records` observations drawn from a small pool of
/// distinct routes — plenty of records, few unique paths/community sets,
/// exactly the shape a collector archive has.
fn archive(records: usize) -> Vec<u8> {
    let observations: Vec<Observation> = (0..records)
        .map(|i| {
            let variant = (i % 8) as u32;
            Observation {
                vp: Asn::new(64_500 + variant),
                prefix: Prefix::new([10, (variant as u8), 0, 0].into(), 16).unwrap(),
                path: AsPath::from_sequence(vec![
                    Asn::new(64_500 + variant),
                    Asn::new(3_356),
                    Asn::new(13_335 + variant),
                ]),
                communities: vec![
                    Community::new(3_356, 100 + variant as u16),
                    Community::new(3_356, 9000),
                ],
                large_communities: vec![],
                time: 1_000_000 + i as u32,
            }
        })
        .collect();
    let mut wire = Vec::new();
    write_update_stream(&mut wire, Asn::new(6447), &observations).unwrap();
    wire
}

#[test]
fn clean_archive_decodes_with_zero_per_record_allocations() {
    const RECORDS: usize = 2048;
    let wire = archive(RECORDS);
    let cfg = RecoverConfig::default();
    let mut store = ObservationStore::new();

    // Pass 1 warms everything that legitimately allocates: the scratch
    // arena grows to its high-water mark, the store interns the unique
    // paths and community sets and sizes its columns.
    let report = read_observations_resilient_into(&wire[..], &cfg, &mut store);
    assert!(report.is_clean(), "fixture archive must decode cleanly");
    assert_eq!(store.len(), RECORDS);

    // Pass 2 decodes the same archive into the same store: every record is
    // a scratch-arena parse plus an intern hit plus a column append. With
    // zero per-record allocations, the only heap traffic left is a handful
    // of amortized capacity doublings (a fresh scratch arena re-growing to
    // its high-water mark, store columns extending) — a small constant,
    // not a function of the record count.
    let before = allocations();
    let report = read_observations_resilient_into(&wire[..], &cfg, &mut store);
    let spent = allocations() - before;
    assert!(report.is_clean(), "fixture archive must decode cleanly");
    assert_eq!(store.len(), 2 * RECORDS);
    assert!(
        spent < 256,
        "decoding {RECORDS} records cost {spent} allocations — the hot \
         path is allocating per record again"
    );
}
