//! Property-based tests: arbitrary routes and records survive the wire.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;

use bgp_mrt::attrs::{decode_attrs, encode_attrs, AttrCtx, EncodeOpts};
use bgp_mrt::cursor::Cursor;
use bgp_mrt::faults::corrupt_stream;
use bgp_mrt::obs::{
    read_observations, read_observations_resilient, write_rib_dump, write_update_stream,
};
use bgp_mrt::records::{decode_body, encode_body, MrtRecord, RibEntry, RibSnapshot};
use bgp_mrt::{ErrorCounters, IngestReport, MrtReader, RecoverConfig, RecoveringReader};
use bgp_types::{
    AsPath, Asn, Community, LargeCommunity, Observation, Origin, PathSegment, Prefix, RouteAttrs,
};

fn arb_asn() -> impl Strategy<Value = Asn> {
    any::<u32>().prop_map(Asn::new)
}

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
        Prefix::new(Ipv4Addr::from(addr).into(), len).expect("valid v4 length")
    })
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
        Prefix::new(Ipv6Addr::from(addr).into(), len).expect("valid v6 length")
    })
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(arb_asn(), 1..6).prop_map(PathSegment::Sequence),
            prop::collection::vec(arb_asn(), 1..4).prop_map(PathSegment::Set),
        ],
        0..3,
    )
    .prop_map(AsPath::from_segments)
}

fn arb_route(v4_next_hop: bool) -> impl Strategy<Value = RouteAttrs> {
    (
        arb_path(),
        if v4_next_hop {
            any::<u32>()
                .prop_map(|a| IpAddr::V4(Ipv4Addr::from(a)))
                .boxed()
        } else {
            any::<u128>()
                .prop_map(|a| IpAddr::V6(Ipv6Addr::from(a)))
                .boxed()
        },
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..12),
        prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..4),
        any::<bool>(),
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
    )
        .prop_map(
            |(as_path, next_hop, med, local_pref, comms, large, atomic, origin)| {
                let mut r = RouteAttrs::originated(as_path, next_hop);
                r.med = med;
                r.local_pref = local_pref;
                for (a, b) in comms {
                    r.add_community(Community::new(a, b));
                }
                for (g, l1, l2) in large {
                    let lc = LargeCommunity::new(g, l1, l2);
                    if !r.large_communities.contains(&lc) {
                        r.large_communities.push(lc);
                    }
                }
                r.atomic_aggregate = atomic;
                r.origin = origin;
                r
            },
        )
}

fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        1u32..100_000,
        prop_oneof![arb_v4_prefix(), arb_v6_prefix()],
        prop::collection::vec(arb_asn(), 1..6),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..8),
        any::<u32>(),
    )
        .prop_map(|(vp, prefix, asns, comms, time)| {
            let mut communities: Vec<Community> = comms
                .into_iter()
                .map(|(a, b)| Community::new(a, b))
                .collect();
            communities.sort_unstable();
            communities.dedup();
            // Derive a couple of large communities deterministically so the
            // roundtrips cover both attribute kinds.
            let large_communities: Vec<LargeCommunity> = communities
                .iter()
                .take(2)
                .map(|c| LargeCommunity::new(c.asn as u32, c.value as u32, 7))
                .collect();
            Observation {
                vp: Asn::new(vp),
                prefix,
                path: AsPath::from_sequence(asns),
                communities,
                large_communities,
                time,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn attrs_roundtrip_tdv2(route in arb_route(true)) {
        let ctx = AttrCtx::TABLE_DUMP_V2;
        let wire = encode_attrs(&route, ctx, &EncodeOpts::default()).unwrap();
        let mut cur = Cursor::new(&wire);
        let decoded = decode_attrs(&mut cur, ctx).unwrap();
        prop_assert!(cur.is_empty());
        prop_assert_eq!(decoded.route, route);
    }

    #[test]
    fn attrs_roundtrip_v6_nexthop(route in arb_route(false)) {
        let ctx = AttrCtx::TABLE_DUMP_V2;
        let wire = encode_attrs(&route, ctx, &EncodeOpts::default()).unwrap();
        let mut cur = Cursor::new(&wire);
        let decoded = decode_attrs(&mut cur, ctx).unwrap();
        prop_assert_eq!(decoded.route, route);
    }

    #[test]
    fn rib_record_roundtrip(
        route in arb_route(true),
        prefix in arb_v4_prefix(),
        seq in any::<u32>(),
        time in any::<u32>(),
    ) {
        let rec = MrtRecord::Rib(RibSnapshot {
            sequence: seq,
            prefix,
            entries: vec![RibEntry { peer_index: 0, originated_time: time, route }],
        });
        let (t, s, body) = encode_body(&rec).unwrap();
        prop_assert_eq!(decode_body(t, s, &body).unwrap(), rec);
    }

    #[test]
    fn decoder_never_panics_on_junk(t in any::<u16>(), s in any::<u16>(), body in prop::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not.
        let _ = decode_body(t, s, &body);
    }

    #[test]
    fn decoder_never_panics_on_truncated_valid_record(
        route in arb_route(true),
        prefix in arb_v4_prefix(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let rec = MrtRecord::Rib(RibSnapshot {
            sequence: 1,
            prefix,
            entries: vec![RibEntry { peer_index: 0, originated_time: 0, route }],
        });
        let (t, s, body) = encode_body(&rec).unwrap();
        let cut = (body.len() as f64 * cut_fraction) as usize;
        let _ = decode_body(t, s, &body[..cut]);
    }

    #[test]
    fn rib_dump_roundtrips_observations(mut observations in prop::collection::vec(arb_observation(), 0..20)) {
        // RIB dumps keep the latest entry per (vp, prefix): dedupe input the
        // same way before comparing.
        observations.sort_by_key(|o| (o.prefix, o.vp, o.time));
        observations.dedup_by_key(|o| (o.prefix, o.vp));
        let mut wire = Vec::new();
        write_rib_dump(&mut wire, 0, &observations).unwrap();
        let mut back = read_observations(&wire[..]).unwrap();
        back.sort_by_key(|o| (o.prefix, o.vp, o.time));
        prop_assert_eq!(back, observations);
    }

    #[test]
    fn update_stream_roundtrips_observations(observations in prop::collection::vec(arb_observation(), 0..20)) {
        let mut wire = Vec::new();
        write_update_stream(&mut wire, Asn::new(6447), &observations).unwrap();
        let back = read_observations(&wire[..]).unwrap();
        prop_assert_eq!(back, observations);
    }
}

// Robustness properties: no input — random bytes or seeded corruption of a
// valid stream — may panic either reader or keep it iterating forever, and
// the recovering reader's accounting must balance to the byte.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_reader_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut items = 0u32;
        for _ in MrtReader::new(&bytes[..]) {
            items += 1;
            prop_assert!(items < 10_000, "runaway iteration");
        }
    }

    #[test]
    fn recovering_reader_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut reader = RecoveringReader::new(&bytes[..]);
        let mut items = 0u32;
        for _ in reader.by_ref() {
            items += 1;
            prop_assert!(items < 10_000, "runaway iteration");
        }
        let report = reader.into_report();
        prop_assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
        prop_assert_eq!(report.bytes_read, bytes.len() as u64);
    }

    #[test]
    fn both_readers_survive_injected_corruption(
        observations in prop::collection::vec(arb_observation(), 1..12),
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_update_stream(&mut wire, Asn::new(6447), &observations).unwrap();
        let (damaged, _log) = corrupt_stream(&wire, seed, rate);

        let mut items = 0u32;
        for _ in MrtReader::new(&damaged[..]) {
            items += 1;
            prop_assert!(items < 100_000, "plain reader runaway");
        }

        let mut reader = RecoveringReader::new(&damaged[..]);
        items = 0;
        for _ in reader.by_ref() {
            items += 1;
            prop_assert!(items < 100_000, "recovering reader runaway");
        }
        let report = reader.into_report();
        prop_assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
        prop_assert_eq!(report.bytes_read, damaged.len() as u64);
    }

    #[test]
    fn resilient_obs_extraction_never_fails(
        observations in prop::collection::vec(arb_observation(), 1..12),
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
    ) {
        let mut wire = Vec::new();
        write_rib_dump(&mut wire, 0, &observations).unwrap();
        let (damaged, _log) = corrupt_stream(&wire, seed, rate);
        let (salvaged, report) = read_observations_resilient(&damaged[..], &RecoverConfig::default());
        prop_assert!(salvaged.len() <= observations.len() * 2);
        prop_assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
    }
}

/// A structurally arbitrary per-file report whose own byte ledger balances
/// (`bytes_read` is derived), as every real per-file report's does.
fn arb_ingest_report() -> impl Strategy<Value = IngestReport> {
    (
        (any::<u16>(), any::<u16>(), any::<u16>()),
        (any::<u32>(), any::<u32>()),
        any::<u16>(),
        (any::<u16>(), 0u64..3),
        prop::option::of("[a-z]{1,8}"),
        prop::option::of("[a-z]{1,8}"),
        (any::<u8>(), any::<u8>(), any::<u8>()),
        (any::<u8>(), any::<u8>(), 0u64..2),
        (0u64..3, 0u64..8, any::<u32>()),
    )
        .prop_map(
            |(
                (records_read, records_skipped, records_truncated),
                (bytes_ok, bytes_skipped),
                resync_events,
                (retries, panicked),
                open_failed,
                aborted,
                (io, truncated, malformed),
                (unsupported, too_long, budget_exceeded),
                (shards_failed, files_lost, bytes_lost),
            )| IngestReport {
                records_read: records_read as u64,
                records_skipped: records_skipped as u64,
                records_truncated: records_truncated as u64,
                bytes_ok: bytes_ok as u64,
                bytes_skipped: bytes_skipped as u64,
                bytes_read: bytes_ok as u64 + bytes_skipped as u64,
                resync_events: resync_events as u64,
                errors: ErrorCounters {
                    io: io as u64,
                    truncated: truncated as u64,
                    malformed: malformed as u64,
                    unsupported: unsupported as u64,
                    too_long: too_long as u64,
                    budget_exceeded,
                },
                retries: retries as u64,
                panicked,
                open_failed,
                aborted,
                shards_failed,
                files_lost,
                bytes_lost: bytes_lost as u64,
                readahead_blocks: records_skipped as u64,
                arena_bytes: bytes_skipped as u64,
            },
        )
}

proptest! {
    /// The multi-file accounting invariant: merging per-file reports in any
    /// order preserves the byte ledger and sums every counter exactly —
    /// including the supervision counters (`retries`, `panicked`) — while
    /// `open_failed`/`aborted` keep the first reason in merge order.
    #[test]
    fn report_merge_accounting_holds_in_any_order(
        parts in prop::collection::vec(arb_ingest_report(), 0..8),
        rotation in any::<u8>(),
    ) {
        let merge_all = |ordered: &[IngestReport]| {
            let mut merged = IngestReport::default();
            for part in ordered {
                merged.merge(part);
            }
            merged
        };
        let merged = merge_all(&parts);

        prop_assert_eq!(merged.bytes_ok + merged.bytes_skipped, merged.bytes_read);
        let sum = |f: fn(&IngestReport) -> u64| parts.iter().map(f).sum::<u64>();
        prop_assert_eq!(merged.bytes_read, sum(|p| p.bytes_read));
        prop_assert_eq!(merged.records_read, sum(|p| p.records_read));
        prop_assert_eq!(merged.records_skipped, sum(|p| p.records_skipped));
        prop_assert_eq!(merged.records_truncated, sum(|p| p.records_truncated));
        prop_assert_eq!(merged.resync_events, sum(|p| p.resync_events));
        prop_assert_eq!(merged.retries, sum(|p| p.retries));
        prop_assert_eq!(merged.panicked, sum(|p| p.panicked));
        prop_assert_eq!(merged.shards_failed, sum(|p| p.shards_failed));
        prop_assert_eq!(merged.files_lost, sum(|p| p.files_lost));
        prop_assert_eq!(merged.bytes_lost, sum(|p| p.bytes_lost));
        prop_assert_eq!(merged.readahead_blocks, sum(|p| p.readahead_blocks));
        prop_assert_eq!(merged.arena_bytes, sum(|p| p.arena_bytes));
        prop_assert_eq!(merged.errors.decode_errors(), parts.iter().map(|p| p.errors.decode_errors()).sum::<u64>());
        prop_assert_eq!(
            merged.open_failed.as_ref(),
            parts.iter().find_map(|p| p.open_failed.as_ref())
        );
        prop_assert_eq!(
            merged.aborted.as_ref(),
            parts.iter().find_map(|p| p.aborted.as_ref())
        );

        // Counter sums are permutation-invariant: any rotation of the merge
        // order agrees on every numeric field.
        if !parts.is_empty() {
            let k = rotation as usize % parts.len();
            let mut rotated = parts[k..].to_vec();
            rotated.extend_from_slice(&parts[..k]);
            let other = merge_all(&rotated);
            prop_assert_eq!(other.bytes_read, merged.bytes_read);
            prop_assert_eq!(other.records_read, merged.records_read);
            prop_assert_eq!(other.retries, merged.retries);
            prop_assert_eq!(other.panicked, merged.panicked);
            prop_assert_eq!(other.errors, merged.errors);
        }
    }
}
