//! Differential proptests pinning the zero-copy view decoder
//! ([`read_observations_resilient_into`]) bit-identical to the owned-decode
//! oracle ([`read_observations_resilient_reference`]): same columnar store
//! (same intern IDs, same reconstructed observations), same [`IngestReport`]
//! up to the view-only `arena_bytes` field — across a fault matrix of
//! seeded stream corruption, truncated tails, records straddling tiny
//! readahead blocks, AS_SET paths, and legacy 2-octet encodings.

use std::io::Cursor;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use bgp_mrt::faults::corrupt_stream;
use bgp_mrt::obs::{
    read_observations_resilient_into, read_observations_resilient_reference, write_rib_dump,
    write_update_stream,
};
use bgp_mrt::readahead::Readahead;
use bgp_mrt::records::{MrtRecord, TableDumpEntry};
use bgp_mrt::{IngestReport, MrtWriter, RecoverConfig};
use bgp_types::store::ObservationStore;
use bgp_types::{
    AsPath, Asn, Community, LargeCommunity, Observation, PathSegment, Prefix, RouteAttrs,
};

/// The view path's report with the field the oracle cannot produce zeroed.
fn normalized(mut report: IngestReport) -> IngestReport {
    report.arena_bytes = 0;
    report
}

/// Deep store equality: identical length, identical intern ID columns, and
/// identical reconstructed observations.
fn assert_stores_equal(
    view: &ObservationStore,
    owned: &ObservationStore,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(view.len(), owned.len());
    prop_assert_eq!(view.path_count(), owned.path_count());
    prop_assert_eq!(view.cset_count(), owned.cset_count());
    for i in 0..view.len() {
        prop_assert_eq!(
            view.obs_path_id(i),
            owned.obs_path_id(i),
            "path id of obs {}",
            i
        );
        prop_assert_eq!(
            view.obs_cset_id(i),
            owned.obs_cset_id(i),
            "cset id of obs {}",
            i
        );
        prop_assert_eq!(view.get(i), owned.get(i), "observation {}", i);
    }
    Ok(())
}

/// Run `wire` through both decoders and require identical results.
fn assert_parity(wire: &[u8], cfg: &RecoverConfig) -> Result<(), TestCaseError> {
    let mut view = ObservationStore::new();
    let view_report = read_observations_resilient_into(wire, cfg, &mut view);
    let mut owned = ObservationStore::new();
    let owned_report = read_observations_resilient_reference(wire, cfg, &mut owned);
    prop_assert_eq!(normalized(view_report), normalized(owned_report));
    assert_stores_equal(&view, &owned)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
            Prefix::new(Ipv4Addr::from(addr).into(), len).expect("valid v4 length")
        }),
        (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
            Prefix::new(Ipv6Addr::from(addr).into(), len).expect("valid v6 length")
        }),
    ]
}

/// Paths mixing SEQUENCE and SET segments; `wide` picks 4-byte vs
/// 2-octet-encodable ASNs.
fn arb_path(wide: bool) -> impl Strategy<Value = AsPath> {
    let asn = if wide {
        any::<u32>().prop_map(Asn::new).boxed()
    } else {
        any::<u16>().prop_map(|v| Asn::new(v as u32)).boxed()
    };
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(asn.clone(), 1..6).prop_map(PathSegment::Sequence),
            prop::collection::vec(asn.clone(), 1..4).prop_map(PathSegment::Set),
        ],
        0..4,
    )
    .prop_map(AsPath::from_segments)
}

/// Observations whose paths may contain AS_SETs (the writer serializes the
/// path verbatim, so both decoders must agree on set flattening).
fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        1u32..100_000,
        arb_prefix(),
        arb_path(true),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..8),
        any::<u32>(),
    )
        .prop_map(|(vp, prefix, path, comms, time)| {
            let mut communities: Vec<Community> = comms
                .into_iter()
                .map(|(a, b)| Community::new(a, b))
                .collect();
            communities.sort_unstable();
            communities.dedup();
            let large_communities: Vec<LargeCommunity> = communities
                .iter()
                .take(2)
                .map(|c| LargeCommunity::new(c.asn as u32, c.value as u32, 9))
                .collect();
            Observation {
                vp: Asn::new(vp),
                prefix,
                path,
                communities,
                large_communities,
                time,
            }
        })
}

/// A legacy `TABLE_DUMP` record: 2-octet peer ASN, 2-octet AS_PATH ASNs.
fn arb_table_dump() -> impl Strategy<Value = TableDumpEntry> {
    (
        any::<u16>(),
        any::<u16>(),
        (any::<u32>(), 0u8..=32),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        1u16..u16::MAX,
        arb_path(false),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..6),
    )
        .prop_map(
            |(view, sequence, (addr, len), status, time, peer_addr, peer_asn, path, comms)| {
                let mut route = RouteAttrs::originated(path, IpAddr::V4(Ipv4Addr::from(peer_addr)));
                for (a, b) in comms {
                    route.add_community(Community::new(a, b));
                }
                TableDumpEntry {
                    view,
                    sequence,
                    prefix: Prefix::new(Ipv4Addr::from(addr).into(), len).expect("valid v4"),
                    status,
                    originated_time: time,
                    peer_addr: IpAddr::V4(Ipv4Addr::from(peer_addr)),
                    peer_asn: Asn::new(peer_asn as u32),
                    route,
                }
            },
        )
}

/// Serialize observations as the RIB dump + update stream the scenario
/// pipeline writes.
fn archive(observations: &[Observation]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_rib_dump(&mut wire, 0, observations).unwrap();
    write_update_stream(&mut wire, Asn::new(6447), observations).unwrap();
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean archives — RIB dumps and update streams with AS_SET paths,
    /// IPv6, and both community kinds — decode identically.
    #[test]
    fn clean_archives_decode_identically(
        observations in prop::collection::vec(arb_observation(), 0..16),
    ) {
        assert_parity(&archive(&observations), &RecoverConfig::default())?;
    }

    /// Seeded byte corruption: whatever the view decoder salvages and
    /// skips, the owned oracle salvages and skips identically.
    #[test]
    fn corrupted_archives_decode_identically(
        observations in prop::collection::vec(arb_observation(), 1..12),
        seed in any::<u64>(),
        rate in 0.0f64..0.5,
    ) {
        let (damaged, _log) = corrupt_stream(&archive(&observations), seed, rate);
        assert_parity(&damaged, &RecoverConfig::default())?;
    }

    /// Truncation at every possible byte boundary produces identical
    /// salvage and identical truncation accounting.
    #[test]
    fn truncated_archives_decode_identically(
        observations in prop::collection::vec(arb_observation(), 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let wire = archive(&observations);
        let cut = (wire.len() as f64 * cut_fraction) as usize;
        assert_parity(&wire[..cut.min(wire.len())], &RecoverConfig::default())?;
    }

    /// Arbitrary junk bytes: both decoders resynchronize to the same
    /// records (usually none) with the same report.
    #[test]
    fn junk_bytes_decode_identically(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        assert_parity(&bytes, &RecoverConfig::default())?;
    }

    /// Legacy 2-octet encodings (`TABLE_DUMP`, AS2 attribute context):
    /// 16-bit AS_PATHs and peer ASNs decode identically through both paths.
    #[test]
    fn two_octet_table_dumps_decode_identically(
        entries in prop::collection::vec(arb_table_dump(), 1..10),
        seed in any::<u64>(),
        rate in 0.0f64..0.3,
    ) {
        let mut wire = Vec::new();
        let mut writer = MrtWriter::new(&mut wire);
        for entry in &entries {
            writer.write_record(entry.originated_time, &MrtRecord::TableDump(entry.clone()))
                .unwrap();
        }
        assert_parity(&wire, &RecoverConfig::default())?;
        let (damaged, _log) = corrupt_stream(&wire, seed, rate);
        assert_parity(&damaged, &RecoverConfig::default())?;
    }

    /// Records straddling readahead block boundaries: feeding the view
    /// decoder through a tiny-block [`Readahead`] changes nothing but the
    /// block count — the store and every other report field match a direct
    /// in-memory view decode, at any block size.
    #[test]
    fn readahead_boundaries_change_nothing(
        observations in prop::collection::vec(arb_observation(), 1..10),
        block_size in 1usize..96,
        seed in any::<u64>(),
        rate in 0.0f64..0.3,
    ) {
        let (wire, _log) = corrupt_stream(&archive(&observations), seed, rate);
        let cfg = RecoverConfig::default();

        let mut direct = ObservationStore::new();
        let direct_report = read_observations_resilient_into(&wire[..], &cfg, &mut direct);

        let blocks = Arc::new(AtomicU64::new(0));
        let readahead =
            Readahead::with_block_size(Cursor::new(wire.clone()), blocks.clone(), block_size);
        let mut prefetched = ObservationStore::new();
        let mut prefetched_report =
            read_observations_resilient_into(readahead, &cfg, &mut prefetched);

        prop_assert_eq!(
            blocks.load(Ordering::Relaxed),
            (wire.len() as u64).div_ceil(block_size as u64)
        );
        prefetched_report.readahead_blocks = direct_report.readahead_blocks;
        prop_assert_eq!(prefetched_report, direct_report);
        assert_stores_equal(&prefetched, &direct)?;
    }
}
