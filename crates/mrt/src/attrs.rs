//! BGP path attribute codec (RFC 4271 §4.3, RFC 1997, RFC 8092, RFC 4760).
//!
//! Attributes appear in two framings in MRT data:
//!
//! * inside `BGP4MP` UPDATE messages — AS_PATH ASN width depends on the
//!   subtype (2-byte for `MESSAGE`, 4-byte for `MESSAGE_AS4`);
//! * inside `TABLE_DUMP_V2` RIB entries — always 4-byte ASNs, and RFC 6396
//!   §4.3.4 abbreviates `MP_REACH_NLRI` to just the next-hop (the AFI/SAFI
//!   and NLRI are implied by the record subtype).
//!
//! [`AttrCtx`] carries those two context bits through encode and decode.

use std::net::{IpAddr, Ipv4Addr};

use bytes::BufMut;

use bgp_types::{AsPath, Asn, Community, LargeCommunity, Origin, PathSegment, Prefix, RouteAttrs};

use crate::cursor::Cursor;
use crate::error::MrtError;
use crate::nlri::{self, Afi};

/// Attribute type codes used by this implementation.
pub mod type_code {
    /// ORIGIN (RFC 4271).
    pub const ORIGIN: u8 = 1;
    /// AS_PATH (RFC 4271).
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP (RFC 4271).
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC (RFC 4271).
    pub const MED: u8 = 4;
    /// LOCAL_PREF (RFC 4271).
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE (RFC 4271).
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR (RFC 4271/6793).
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI (RFC 4760).
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI (RFC 4760).
    pub const MP_UNREACH_NLRI: u8 = 15;
    /// LARGE_COMMUNITIES (RFC 8092).
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// Attribute flag bits (RFC 4271 §4.3).
pub mod flag {
    /// Attribute is optional (not well-known).
    pub const OPTIONAL: u8 = 0x80;
    /// Attribute is transitive.
    pub const TRANSITIVE: u8 = 0x40;
    /// Partial bit.
    pub const PARTIAL: u8 = 0x20;
    /// Two-byte length field follows.
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// Framing context for the attribute codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrCtx {
    /// AS_PATH and AGGREGATOR carry 4-byte ASNs (`BGP4MP_MESSAGE_AS4`,
    /// `TABLE_DUMP_V2`). When false, 2-byte (`BGP4MP_MESSAGE`).
    pub as4: bool,
    /// RFC 6396 §4.3.4 `TABLE_DUMP_V2` abbreviation of MP_REACH_NLRI.
    pub tdv2: bool,
}

impl AttrCtx {
    /// Context for `TABLE_DUMP_V2` RIB entries.
    pub const TABLE_DUMP_V2: AttrCtx = AttrCtx {
        as4: true,
        tdv2: true,
    };
    /// Context for `BGP4MP_MESSAGE_AS4` updates.
    pub const BGP4MP_AS4: AttrCtx = AttrCtx {
        as4: true,
        tdv2: false,
    };
    /// Context for legacy 2-byte-ASN `BGP4MP_MESSAGE` updates.
    pub const BGP4MP_AS2: AttrCtx = AttrCtx {
        as4: false,
        tdv2: false,
    };
}

/// Everything decoded from one attribute block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedAttrs {
    /// The analytical attribute set (origin, path, next hop, communities…).
    pub route: RouteAttrs,
    /// Prefixes announced via MP_REACH_NLRI (IPv6 announcements).
    pub mp_announced: Vec<Prefix>,
    /// Prefixes withdrawn via MP_UNREACH_NLRI.
    pub mp_withdrawn: Vec<Prefix>,
    /// AGGREGATOR attribute, if present.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// Type codes of attributes this implementation skipped.
    pub unknown_types: Vec<u8>,
}

/// Options for encoding an attribute block.
#[derive(Debug, Clone, Default)]
pub struct EncodeOpts {
    /// Announce these prefixes via MP_REACH_NLRI instead of plain NLRI
    /// (IPv6 or multiprotocol announcements). Ignored in TDV2 context
    /// (where MP_REACH carries only the next hop).
    pub mp_announced: Vec<Prefix>,
    /// Withdraw these prefixes via MP_UNREACH_NLRI.
    pub mp_withdrawn: Vec<Prefix>,
    /// Emit an AGGREGATOR attribute.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
}

fn put_attr(out: &mut Vec<u8>, flags: u8, code: u8, body: &[u8]) -> Result<(), MrtError> {
    if body.len() > u16::MAX as usize {
        return Err(MrtError::TooLong {
            context: "path attribute body",
            len: body.len(),
        });
    }
    if body.len() > u8::MAX as usize {
        out.put_u8(flags | flag::EXTENDED_LENGTH);
        out.put_u8(code);
        out.put_u16(body.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(code);
        out.put_u8(body.len() as u8);
    }
    out.extend_from_slice(body);
    Ok(())
}

fn encode_as_path(path: &AsPath, ctx: AttrCtx) -> Result<Vec<u8>, MrtError> {
    let mut body = Vec::new();
    for seg in path.segments() {
        let (ty, asns) = match seg {
            PathSegment::Set(v) => (1u8, v),
            PathSegment::Sequence(v) => (2u8, v),
        };
        // RFC 4271: segment ASN count is one byte; split long sequences.
        for chunk in asns.chunks(255) {
            if chunk.is_empty() {
                continue;
            }
            body.put_u8(ty);
            body.put_u8(chunk.len() as u8);
            for asn in chunk {
                if ctx.as4 {
                    body.put_u32(asn.value());
                } else {
                    if !asn.is_16bit() {
                        return Err(MrtError::malformed(
                            "AS_PATH",
                            format!("ASN {asn} does not fit 2-byte encoding"),
                        ));
                    }
                    body.put_u16(asn.value() as u16);
                }
            }
        }
    }
    Ok(body)
}

fn decode_as_path(cur: &mut Cursor<'_>, ctx: AttrCtx) -> Result<AsPath, MrtError> {
    let mut segments = Vec::new();
    while !cur.is_empty() {
        let ty = cur.u8("AS_PATH segment type")?;
        let count = cur.u8("AS_PATH segment count")? as usize;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let v = if ctx.as4 {
                cur.u32("AS_PATH ASN")?
            } else {
                cur.u16("AS_PATH ASN")? as u32
            };
            asns.push(Asn::new(v));
        }
        match ty {
            1 => segments.push(PathSegment::Set(asns)),
            2 => segments.push(PathSegment::Sequence(asns)),
            other => {
                return Err(MrtError::malformed(
                    "AS_PATH",
                    format!("unknown segment type {other}"),
                ))
            }
        }
    }
    Ok(AsPath::from_segments(segments))
}

/// Encode a path attribute block.
///
/// IPv4 next hops emit a NEXT_HOP attribute; IPv6 next hops emit MP_REACH
/// (abbreviated in TDV2 context per RFC 6396 §4.3.4, full form with
/// `opts.mp_announced` otherwise).
pub fn encode_attrs(
    route: &RouteAttrs,
    ctx: AttrCtx,
    opts: &EncodeOpts,
) -> Result<Vec<u8>, MrtError> {
    let mut out = Vec::new();

    put_attr(
        &mut out,
        flag::TRANSITIVE,
        type_code::ORIGIN,
        &[route.origin.to_u8()],
    )?;
    put_attr(
        &mut out,
        flag::TRANSITIVE,
        type_code::AS_PATH,
        &encode_as_path(&route.as_path, ctx)?,
    )?;

    let needs_mp_reach = !route.next_hop.is_ipv4() || !opts.mp_announced.is_empty();
    if !needs_mp_reach {
        if let IpAddr::V4(nh) = route.next_hop {
            put_attr(
                &mut out,
                flag::TRANSITIVE,
                type_code::NEXT_HOP,
                &nh.octets(),
            )?;
        }
    }

    if let Some(med) = route.med {
        put_attr(&mut out, flag::OPTIONAL, type_code::MED, &med.to_be_bytes())?;
    }
    if let Some(lp) = route.local_pref {
        put_attr(
            &mut out,
            flag::TRANSITIVE,
            type_code::LOCAL_PREF,
            &lp.to_be_bytes(),
        )?;
    }
    if route.atomic_aggregate {
        put_attr(&mut out, flag::TRANSITIVE, type_code::ATOMIC_AGGREGATE, &[])?;
    }
    if let Some((asn, id)) = opts.aggregator {
        let mut body = Vec::new();
        if ctx.as4 {
            body.put_u32(asn.value());
        } else {
            if !asn.is_16bit() {
                return Err(MrtError::malformed(
                    "AGGREGATOR",
                    "ASN does not fit 2 bytes",
                ));
            }
            body.put_u16(asn.value() as u16);
        }
        body.extend_from_slice(&id.octets());
        put_attr(
            &mut out,
            flag::OPTIONAL | flag::TRANSITIVE,
            type_code::AGGREGATOR,
            &body,
        )?;
    }
    if !route.communities.is_empty() {
        let mut body = Vec::with_capacity(route.communities.len() * 4);
        for c in &route.communities {
            body.put_u32(c.to_u32());
        }
        put_attr(
            &mut out,
            flag::OPTIONAL | flag::TRANSITIVE,
            type_code::COMMUNITIES,
            &body,
        )?;
    }
    if !route.large_communities.is_empty() {
        let mut body = Vec::with_capacity(route.large_communities.len() * 12);
        for lc in &route.large_communities {
            body.put_u32(lc.global);
            body.put_u32(lc.local1);
            body.put_u32(lc.local2);
        }
        put_attr(
            &mut out,
            flag::OPTIONAL | flag::TRANSITIVE,
            type_code::LARGE_COMMUNITIES,
            &body,
        )?;
    }

    if needs_mp_reach {
        let mut body = Vec::new();
        if ctx.tdv2 {
            // RFC 6396 §4.3.4: next-hop length + next-hop only.
            let mut nh = Vec::new();
            nlri::encode_addr(&mut nh, route.next_hop);
            body.put_u8(nh.len() as u8);
            body.extend_from_slice(&nh);
        } else {
            // The AFI describes the NLRI; fall back to the next hop's family
            // when MP_REACH is carrying only a non-IPv4 next hop.
            let afi = match opts.mp_announced.first() {
                Some(p) => Afi::of(p),
                None => {
                    if route.next_hop.is_ipv4() {
                        Afi::Ipv4
                    } else {
                        Afi::Ipv6
                    }
                }
            };
            if opts.mp_announced.iter().any(|p| Afi::of(p) != afi) {
                return Err(MrtError::malformed(
                    "MP_REACH NLRI",
                    "announced prefixes mix address families",
                ));
            }
            body.put_u16(afi.to_u16());
            body.put_u8(1); // SAFI unicast
            let mut nh = Vec::new();
            nlri::encode_addr(&mut nh, route.next_hop);
            body.put_u8(nh.len() as u8);
            body.extend_from_slice(&nh);
            body.put_u8(0); // reserved
            for p in &opts.mp_announced {
                nlri::encode_prefix(&mut body, p);
            }
        }
        put_attr(&mut out, flag::OPTIONAL, type_code::MP_REACH_NLRI, &body)?;
    }
    if !opts.mp_withdrawn.is_empty() {
        let afi = Afi::of(&opts.mp_withdrawn[0]);
        let mut body = Vec::new();
        body.put_u16(afi.to_u16());
        body.put_u8(1);
        for p in &opts.mp_withdrawn {
            nlri::encode_prefix(&mut body, p);
        }
        put_attr(&mut out, flag::OPTIONAL, type_code::MP_UNREACH_NLRI, &body)?;
    }

    Ok(out)
}

fn decode_mp_reach(
    cur: &mut Cursor<'_>,
    ctx: AttrCtx,
    decoded: &mut DecodedAttrs,
) -> Result<(), MrtError> {
    if ctx.tdv2 {
        let nh_len = cur.u8("MP_REACH next-hop length")? as usize;
        let afi = match nh_len {
            4 => Afi::Ipv4,
            16 | 32 => Afi::Ipv6, // 32 = global + link-local
            other => {
                return Err(MrtError::malformed(
                    "MP_REACH next-hop",
                    format!("unexpected length {other}"),
                ))
            }
        };
        decoded.route.next_hop = nlri::decode_addr(cur, afi)?;
        if nh_len == 32 {
            let _ = nlri::decode_addr(cur, Afi::Ipv6)?; // discard link-local
        }
        return Ok(());
    }
    let afi_raw = cur.u16("MP_REACH AFI")?;
    let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
        context: "MP_REACH AFI",
        value: afi_raw as u32,
    })?;
    let safi = cur.u8("MP_REACH SAFI")?;
    if safi != 1 {
        return Err(MrtError::Unsupported {
            context: "MP_REACH SAFI",
            value: safi as u32,
        });
    }
    let nh_len = cur.u8("MP_REACH next-hop length")? as usize;
    let mut nh_cur = cur.slice(nh_len, "MP_REACH next-hop")?;
    decoded.route.next_hop = match nh_len {
        4 => nlri::decode_addr(&mut nh_cur, Afi::Ipv4)?,
        16 | 32 => nlri::decode_addr(&mut nh_cur, Afi::Ipv6)?,
        other => {
            return Err(MrtError::malformed(
                "MP_REACH next-hop",
                format!("unexpected length {other}"),
            ))
        }
    };
    let _ = cur.u8("MP_REACH reserved")?;
    decoded.mp_announced = nlri::decode_prefix_run(cur, afi)?;
    Ok(())
}

/// Decode a full attribute block of `len` bytes from `cur`.
pub fn decode_attrs(cur: &mut Cursor<'_>, ctx: AttrCtx) -> Result<DecodedAttrs, MrtError> {
    let mut decoded = DecodedAttrs::default();
    let mut saw_next_hop = false;
    while !cur.is_empty() {
        let flags = cur.u8("attribute flags")?;
        let code = cur.u8("attribute type")?;
        let len = if flags & flag::EXTENDED_LENGTH != 0 {
            cur.u16("attribute extended length")? as usize
        } else {
            cur.u8("attribute length")? as usize
        };
        let mut body = cur.slice(len, "attribute body")?;
        match code {
            type_code::ORIGIN => {
                let v = body.u8("ORIGIN")?;
                decoded.route.origin = Origin::from_u8(v)
                    .ok_or_else(|| MrtError::malformed("ORIGIN", format!("value {v}")))?;
            }
            type_code::AS_PATH => {
                decoded.route.as_path = decode_as_path(&mut body, ctx)?;
            }
            type_code::NEXT_HOP => {
                decoded.route.next_hop = nlri::decode_addr(&mut body, Afi::Ipv4)?;
                saw_next_hop = true;
            }
            type_code::MED => {
                decoded.route.med = Some(body.u32("MED")?);
            }
            type_code::LOCAL_PREF => {
                decoded.route.local_pref = Some(body.u32("LOCAL_PREF")?);
            }
            type_code::ATOMIC_AGGREGATE => {
                decoded.route.atomic_aggregate = true;
            }
            type_code::AGGREGATOR => {
                let asn = if ctx.as4 {
                    body.u32("AGGREGATOR ASN")?
                } else {
                    body.u16("AGGREGATOR ASN")? as u32
                };
                let ip = match nlri::decode_addr(&mut body, Afi::Ipv4)? {
                    IpAddr::V4(v4) => v4,
                    IpAddr::V6(_) => unreachable!("decode_addr(Ipv4) returns V4"),
                };
                decoded.aggregator = Some((Asn::new(asn), ip));
            }
            type_code::COMMUNITIES => {
                if len % 4 != 0 {
                    return Err(MrtError::malformed(
                        "COMMUNITIES",
                        format!("length {len} not a multiple of 4"),
                    ));
                }
                while !body.is_empty() {
                    decoded
                        .route
                        .communities
                        .push(Community::from_u32(body.u32("COMMUNITIES")?));
                }
            }
            type_code::LARGE_COMMUNITIES => {
                if len % 12 != 0 {
                    return Err(MrtError::malformed(
                        "LARGE_COMMUNITIES",
                        format!("length {len} not a multiple of 12"),
                    ));
                }
                while !body.is_empty() {
                    decoded.route.large_communities.push(LargeCommunity::new(
                        body.u32("LARGE_COMMUNITIES global")?,
                        body.u32("LARGE_COMMUNITIES local1")?,
                        body.u32("LARGE_COMMUNITIES local2")?,
                    ));
                }
            }
            type_code::MP_REACH_NLRI => {
                decode_mp_reach(&mut body, ctx, &mut decoded)?;
            }
            type_code::MP_UNREACH_NLRI => {
                let afi_raw = body.u16("MP_UNREACH AFI")?;
                let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
                    context: "MP_UNREACH AFI",
                    value: afi_raw as u32,
                })?;
                let safi = body.u8("MP_UNREACH SAFI")?;
                if safi != 1 {
                    return Err(MrtError::Unsupported {
                        context: "MP_UNREACH SAFI",
                        value: safi as u32,
                    });
                }
                decoded.mp_withdrawn = nlri::decode_prefix_run(&mut body, afi)?;
            }
            other => {
                // Tolerate unknown optional attributes the way deployed
                // parsers do; remember the type for diagnostics.
                decoded.unknown_types.push(other);
            }
        }
    }
    // Suppress an unused warning while keeping the variable for clarity:
    // NEXT_HOP and MP_REACH both set route.next_hop; nothing to reconcile.
    let _ = saw_next_hop;
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Prefix;

    fn sample_route(v6: bool) -> RouteAttrs {
        let mut r = RouteAttrs::originated(
            AsPath::from_sequence([
                Asn::new(65269),
                Asn::new(7018),
                Asn::new(1299),
                Asn::new(399260),
            ]),
            if v6 {
                "2001:db8::1".parse().unwrap()
            } else {
                IpAddr::from([203, 0, 113, 1])
            },
        );
        r.med = Some(70);
        r.local_pref = Some(120);
        r.atomic_aggregate = true;
        r.add_community(Community::new(1299, 2569));
        r.add_community(Community::new(1299, 35130));
        r.large_communities
            .push(LargeCommunity::new(206499, 1, 4000));
        r
    }

    fn roundtrip(route: &RouteAttrs, ctx: AttrCtx, opts: &EncodeOpts) -> DecodedAttrs {
        let buf = encode_attrs(route, ctx, opts).unwrap();
        let mut cur = Cursor::new(&buf);
        let out = decode_attrs(&mut cur, ctx).unwrap();
        assert!(cur.is_empty());
        out
    }

    #[test]
    fn v4_roundtrip_as4() {
        let route = sample_route(false);
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &EncodeOpts::default());
        assert_eq!(out.route, route);
        assert!(out.unknown_types.is_empty());
    }

    #[test]
    fn v4_roundtrip_tdv2() {
        let route = sample_route(false);
        let out = roundtrip(&route, AttrCtx::TABLE_DUMP_V2, &EncodeOpts::default());
        assert_eq!(out.route, route);
    }

    #[test]
    fn as2_roundtrip_requires_16bit_asns() {
        let mut route = sample_route(false);
        route.as_path = AsPath::from_sequence([Asn::new(7018), Asn::new(1299)]);
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS2, &EncodeOpts::default());
        assert_eq!(out.route, route);

        // A 32-bit ASN cannot be 2-byte encoded.
        let route32 = sample_route(false);
        assert!(matches!(
            encode_attrs(&route32, AttrCtx::BGP4MP_AS2, &EncodeOpts::default()),
            Err(MrtError::Malformed { .. })
        ));
    }

    #[test]
    fn v6_nexthop_uses_mp_reach_tdv2_abbreviation() {
        let route = sample_route(true);
        let buf = encode_attrs(&route, AttrCtx::TABLE_DUMP_V2, &EncodeOpts::default()).unwrap();
        let mut cur = Cursor::new(&buf);
        let out = decode_attrs(&mut cur, AttrCtx::TABLE_DUMP_V2).unwrap();
        assert_eq!(out.route.next_hop, route.next_hop);
        assert_eq!(out.route.communities, route.communities);
        assert!(out.mp_announced.is_empty()); // TDV2 MP_REACH has no NLRI
    }

    #[test]
    fn v6_announcement_full_mp_reach() {
        let route = sample_route(true);
        let p: Prefix = "2001:db8:100::/48".parse().unwrap();
        let opts = EncodeOpts {
            mp_announced: vec![p],
            ..Default::default()
        };
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &opts);
        assert_eq!(out.mp_announced, vec![p]);
        assert_eq!(out.route.next_hop, route.next_hop);
    }

    #[test]
    fn mp_unreach_roundtrip() {
        let route = sample_route(false);
        let p: Prefix = "2001:db8:dead::/48".parse().unwrap();
        let opts = EncodeOpts {
            mp_withdrawn: vec![p],
            ..Default::default()
        };
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &opts);
        assert_eq!(out.mp_withdrawn, vec![p]);
    }

    #[test]
    fn aggregator_roundtrip_both_widths() {
        let route = sample_route(false);
        let agg = (Asn::new(64500), Ipv4Addr::new(192, 0, 2, 9));
        let opts = EncodeOpts {
            aggregator: Some(agg),
            ..Default::default()
        };
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &opts);
        assert_eq!(out.aggregator, Some(agg));

        let mut r2 = route.clone();
        r2.as_path = AsPath::from_sequence([Asn::new(7018)]);
        let out = roundtrip(&r2, AttrCtx::BGP4MP_AS2, &opts);
        assert_eq!(out.aggregator, Some(agg));
    }

    #[test]
    fn extended_length_attribute() {
        // >255 communities forces the extended-length flag.
        let mut route = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(1299)]),
            IpAddr::from([203, 0, 113, 1]),
        );
        for v in 0..300u16 {
            route.add_community(Community::new(1299, v));
        }
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &EncodeOpts::default());
        assert_eq!(out.route.communities.len(), 300);
        assert_eq!(out.route.communities, route.communities);
    }

    #[test]
    fn long_as_path_splits_segments() {
        let asns: Vec<Asn> = (1..=300u32).map(Asn::new).collect();
        let route = RouteAttrs::originated(
            AsPath::from_sequence(asns.clone()),
            IpAddr::from([203, 0, 113, 1]),
        );
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &EncodeOpts::default());
        // Segment split at 255 is a wire detail; the ASN sequence is intact.
        let decoded: Vec<Asn> = out.route.as_path.iter().collect();
        assert_eq!(decoded, asns);
    }

    #[test]
    fn as_set_roundtrip() {
        let path = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(3356)]),
            PathSegment::Set(vec![Asn::new(64496), Asn::new(64497)]),
        ]);
        let route = RouteAttrs::originated(path.clone(), IpAddr::from([203, 0, 113, 1]));
        let out = roundtrip(&route, AttrCtx::BGP4MP_AS4, &EncodeOpts::default());
        assert_eq!(out.route.as_path, path);
    }

    #[test]
    fn unknown_attribute_is_skipped_not_fatal() {
        let route = sample_route(false);
        let mut buf = encode_attrs(&route, AttrCtx::BGP4MP_AS4, &EncodeOpts::default()).unwrap();
        // Append an unknown optional attribute type 200 with 3-byte body.
        buf.extend_from_slice(&[flag::OPTIONAL, 200, 3, 1, 2, 3]);
        let mut cur = Cursor::new(&buf);
        let out = decode_attrs(&mut cur, AttrCtx::BGP4MP_AS4).unwrap();
        assert_eq!(out.route, route);
        assert_eq!(out.unknown_types, vec![200]);
    }

    #[test]
    fn malformed_communities_length() {
        let buf = [
            flag::OPTIONAL | flag::TRANSITIVE,
            type_code::COMMUNITIES,
            3,
            0,
            0,
            0,
        ];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            decode_attrs(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_attribute_body() {
        let buf = [flag::TRANSITIVE, type_code::ORIGIN, 5, 0];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            decode_attrs(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_origin_value() {
        let buf = [flag::TRANSITIVE, type_code::ORIGIN, 1, 9];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            decode_attrs(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Malformed { .. })
        ));
    }
}
