//! Continuous BGP update streams: sources, resumable delivery, and the
//! bounded ingest queue behind `bgpcomm watch`.
//!
//! A [`StreamSource`] abstracts "where the bytes come from" down to one
//! operation: *(re)connect and resume delivery at an absolute byte offset*.
//! Everything a live daemon needs on top — a bounded ingest queue with
//! explicit backpressure, disconnect and stall detection, deterministic
//! [`RetryPolicy`] reconnects, and an exactly-resumable cursor — lives in
//! [`ResumingStream`], a plain `io::Read` adapter. Stacking the usual
//! decode chain on top of it (`ResumingStream` →
//! [`crate::obs::StreamDecoder`]) gives a stream consumer the same
//! quarantine-and-resync semantics as file ingestion, because it *is* the
//! same code.
//!
//! Three sources ship here and share that one path:
//!
//! * [`MemoryFeed`] — an in-memory byte buffer (the simulator feed);
//! * [`SocketFeed`] — a framed TCP or unix-domain socket feed speaking the
//!   tiny resume protocol served by [`FeedServer`];
//! * [`FileTailFeed`] — tail a growing file on disk.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use crate::faults::{FaultyStream, StreamFaultConfig};
use crate::retry::RetryPolicy;

/// The resume-protocol magic a [`SocketFeed`] client sends on connect,
/// followed by the big-endian `u64` byte offset to resume from.
pub const FEED_MAGIC: &[u8; 4] = b"BGPW";

/// A (re)connectable source of MRT stream bytes.
///
/// The one contract that makes crash recovery work: `connect(offset)`
/// resumes delivery at exactly `offset` bytes into the logical stream, so a
/// consumer that remembers how far it folded can reconnect — after a
/// disconnect, a stall, or a whole process restart — and see the remaining
/// bytes as if nothing happened. Offsets past the currently available end
/// yield a connection that delivers nothing (EOF), which the consumer
/// treats as "quiet, poll again later".
pub trait StreamSource: Send {
    /// Open a connection resuming delivery at absolute byte `offset`.
    fn connect(&mut self, offset: u64) -> io::Result<Box<dyn Read + Send>>;

    /// Human-readable description for logs and error messages.
    fn describe(&self) -> String;
}

/// An in-memory byte-buffer source: the simulator feed, and the test
/// workhorse. Delivery starts at the requested offset into the buffer.
#[derive(Debug, Clone)]
pub struct MemoryFeed {
    bytes: Arc<Vec<u8>>,
}

impl MemoryFeed {
    /// Serve the given bytes.
    pub fn new(bytes: Arc<Vec<u8>>) -> Self {
        MemoryFeed { bytes }
    }

    /// Total bytes available.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// One connection's view into a [`MemoryFeed`].
struct MemoryConn {
    bytes: Arc<Vec<u8>>,
    pos: usize,
}

impl Read for MemoryConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.bytes[self.pos.min(self.bytes.len())..];
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

impl StreamSource for MemoryFeed {
    fn connect(&mut self, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(MemoryConn {
            bytes: self.bytes.clone(),
            pos: offset.min(self.bytes.len() as u64) as usize,
        }))
    }

    fn describe(&self) -> String {
        format!("mem:{}B", self.bytes.len())
    }
}

/// Tail a file on disk: each connection opens the file and seeks to the
/// resume offset. A writer appending to the file between connections is
/// exactly how new data arrives.
#[derive(Debug, Clone)]
pub struct FileTailFeed {
    path: PathBuf,
}

impl FileTailFeed {
    /// Tail the given path.
    pub fn new(path: PathBuf) -> Self {
        FileTailFeed { path }
    }
}

impl StreamSource for FileTailFeed {
    fn connect(&mut self, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        use std::io::Seek;
        let mut file = std::fs::File::open(&self.path)?;
        file.seek(io::SeekFrom::Start(offset))?;
        Ok(Box::new(io::BufReader::new(file)))
    }

    fn describe(&self) -> String {
        format!("tail:{}", self.path.display())
    }
}

/// Where a [`SocketFeed`] connects.
#[derive(Debug, Clone)]
pub enum FeedAddr {
    /// A TCP `host:port` address.
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for FeedAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            FeedAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A framed socket source speaking the [`FeedServer`] resume protocol: on
/// connect the client sends [`FEED_MAGIC`] plus the resume offset, and the
/// server streams bytes from that offset. The socket read timeout doubles
/// as the transport-level stall detector — a connection that stops making
/// progress surfaces `TimedOut`, which the [`ResumingStream`] turns into a
/// reconnect.
#[derive(Debug, Clone)]
pub struct SocketFeed {
    addr: FeedAddr,
    read_timeout: Duration,
}

impl SocketFeed {
    /// Connect to the given address; `read_timeout` bounds how long one
    /// read may sit without data before the connection is declared stalled.
    pub fn new(addr: FeedAddr, read_timeout: Duration) -> Self {
        SocketFeed { addr, read_timeout }
    }

    fn hello(offset: u64) -> [u8; 12] {
        let mut hello = [0u8; 12];
        hello[..4].copy_from_slice(FEED_MAGIC);
        hello[4..].copy_from_slice(&offset.to_be_bytes());
        hello
    }
}

impl StreamSource for SocketFeed {
    fn connect(&mut self, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        match &self.addr {
            FeedAddr::Tcp(addr) => {
                let mut stream = TcpStream::connect(addr.as_str())?;
                stream.set_read_timeout(Some(self.read_timeout))?;
                stream.write_all(&Self::hello(offset))?;
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            FeedAddr::Unix(path) => {
                let mut stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.set_read_timeout(Some(self.read_timeout))?;
                stream.write_all(&Self::hello(offset))?;
                Ok(Box::new(stream))
            }
        }
    }

    fn describe(&self) -> String {
        self.addr.to_string()
    }
}

/// Wraps any source with seeded *delivery* fault injection: every
/// connection's stream is run through a [`FaultyStream`] whose schedule is
/// reseeded per connection (`seed ^ connection index`), so a run's entire
/// fault history is a pure function of one seed.
pub struct FaultyFeed<S> {
    inner: S,
    cfg: StreamFaultConfig,
    connections: u64,
}

impl<S: StreamSource> FaultyFeed<S> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: S, cfg: StreamFaultConfig) -> Self {
        FaultyFeed {
            inner,
            cfg,
            connections: 0,
        }
    }
}

impl<S: StreamSource> StreamSource for FaultyFeed<S> {
    fn connect(&mut self, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        let stream = self.inner.connect(offset)?;
        let seed = self.cfg.seed ^ self.connections.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.connections += 1;
        Ok(Box::new(FaultyStream::new(
            stream,
            &self.cfg.reseeded(seed),
        )))
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }
}

/// Ingest-queue and reconnect tuning for [`ResumingStream`].
#[derive(Debug, Clone)]
pub struct StreamTuning {
    /// Hard cap on bytes buffered in the ingest queue. The producer blocks
    /// (and counts a backpressure stall) when the queue is full, so RSS
    /// from queued data never exceeds roughly this plus one chunk.
    pub queue_bytes: usize,
    /// Producer read size; also the queue's accounting granularity.
    pub chunk_bytes: usize,
    /// How long the consumer waits for the next chunk before declaring the
    /// connection stalled and reconnecting.
    pub stall_timeout: Duration,
    /// Reconnect policy: attempts bound consecutive *failed* connects, and
    /// `backoff` paces both reconnects and quiet-poll loops.
    pub retry: RetryPolicy,
    /// After this many consecutive connections that deliver zero new
    /// bytes, report end-of-stream (the quiescent point). `None` polls
    /// forever — the live-daemon mode.
    pub quiesce_after: Option<u32>,
}

impl Default for StreamTuning {
    fn default() -> Self {
        StreamTuning {
            queue_bytes: 4 << 20,
            chunk_bytes: 64 << 10,
            stall_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            quiesce_after: None,
        }
    }
}

/// Shared counters a [`ResumingStream`] maintains; the daemon surfaces them
/// as `ingest/*` and `watch/*` metrics.
#[derive(Debug, Default)]
pub struct StreamCounters {
    /// Connections opened (the first one included).
    pub connections: AtomicU64,
    /// Reconnects after a disconnect, stall, or quiet poll.
    pub reconnects: AtomicU64,
    /// Stalls detected (consumer-side deadline or transport timeout).
    pub stalls: AtomicU64,
    /// Connections that ended in a transport error.
    pub disconnects: AtomicU64,
    /// Times the producer found the ingest queue full and had to block —
    /// the explicit backpressure signal.
    pub backpressure_stalls: AtomicU64,
    /// Bytes handed to the consumer so far (the stream cursor).
    pub delivered_bytes: AtomicU64,
    /// Bytes currently sitting in the ingest queue.
    pub queued_bytes: AtomicU64,
    /// High-water mark of `queued_bytes`.
    pub queue_peak_bytes: AtomicU64,
}

impl StreamCounters {
    fn add_queued(&self, n: u64) {
        let now = self.queued_bytes.fetch_add(n, Ordering::SeqCst) + n;
        self.queue_peak_bytes.fetch_max(now, Ordering::SeqCst);
    }

    fn sub_queued(&self, n: u64) {
        self.queued_bytes.fetch_sub(n, Ordering::SeqCst);
    }
}

/// Why a producer stopped delivering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnEnd {
    /// Clean EOF: the source has no more bytes right now.
    Eof,
    /// The transport timed out mid-connection.
    Stalled,
    /// The transport failed (reset, aborted, broken pipe, ...).
    Errored,
    /// Shutdown was requested; the producer quit voluntarily.
    Shutdown,
}

enum Delivery {
    Bytes(Vec<u8>),
    End(ConnEnd),
}

/// The delivery layer of a streaming daemon, as a plain `io::Read`:
/// reconnection, resumable cursor, stall detection, and a bounded ingest
/// queue with explicit backpressure.
///
/// A producer thread reads each connection into fixed-size chunks and
/// pushes them through a bounded channel — when the consumer falls behind,
/// the producer blocks on the full queue (counted in
/// [`StreamCounters::backpressure_stalls`]), so memory stays bounded no
/// matter how fast the source is. The consumer side (this `Read` impl)
/// reassembles the byte sequence, transparently reconnecting from the
/// current cursor whenever a connection ends; because every source resumes
/// exactly at the requested offset, the delivered sequence is bit-identical
/// to an uninterrupted read.
///
/// End of stream (`Ok(0)`) means one of: shutdown was requested, the
/// quiesce threshold was reached, or (as an error) the reconnect budget was
/// exhausted.
pub struct ResumingStream<S: StreamSource> {
    source: S,
    tuning: StreamTuning,
    shutdown: Arc<AtomicBool>,
    counters: Arc<StreamCounters>,
    /// Bytes handed to the caller — the resume offset for the next connect.
    cursor: u64,
    rx: Option<Receiver<Delivery>>,
    pending: Vec<u8>,
    pending_pos: usize,
    /// Bytes received over the current connection.
    conn_bytes: u64,
    /// Consecutive connections that delivered nothing.
    quiet_connections: u32,
    /// Terminal state reached; all further reads return `Ok(0)`.
    finished: bool,
}

impl<S: StreamSource> ResumingStream<S> {
    /// Wrap `source`, resuming delivery at `cursor` (0 for a fresh run).
    /// `shutdown` is the graceful-stop flag: once set, reads drain what is
    /// already pending and then report EOF.
    pub fn new(
        source: S,
        tuning: StreamTuning,
        cursor: u64,
        shutdown: Arc<AtomicBool>,
        counters: Arc<StreamCounters>,
    ) -> Self {
        counters.delivered_bytes.store(cursor, Ordering::SeqCst);
        ResumingStream {
            source,
            tuning,
            shutdown,
            counters,
            cursor,
            rx: None,
            pending: Vec::new(),
            pending_pos: 0,
            conn_bytes: 0,
            quiet_connections: 0,
            finished: false,
        }
    }

    /// Bytes delivered to the caller so far.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<StreamCounters> {
        self.counters.clone()
    }

    /// Spawn a producer for a fresh connection. Retries failed connects
    /// under the retry policy; a budget of consecutive failures exhausts
    /// into the returned error.
    fn open_connection(&mut self) -> io::Result<()> {
        let mut failures = 0u32;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.finished = true;
                return Ok(());
            }
            match self.source.connect(self.cursor) {
                Ok(stream) => {
                    let opened = self.counters.connections.fetch_add(1, Ordering::SeqCst);
                    if opened > 0 {
                        self.counters.reconnects.fetch_add(1, Ordering::SeqCst);
                    }
                    let cap = (self.tuning.queue_bytes / self.tuning.chunk_bytes).max(1);
                    let (tx, rx) = std::sync::mpsc::sync_channel(cap);
                    let chunk = self.tuning.chunk_bytes.max(1);
                    let counters = self.counters.clone();
                    let shutdown = self.shutdown.clone();
                    std::thread::Builder::new()
                        .name("bgp-stream-producer".into())
                        .spawn(move || produce(stream, tx, chunk, counters, shutdown))
                        .map_err(|e| {
                            io::Error::new(e.kind(), format!("spawn stream producer: {e}"))
                        })?;
                    self.rx = Some(rx);
                    self.conn_bytes = 0;
                    return Ok(());
                }
                Err(e) => {
                    failures += 1;
                    if failures >= self.tuning.retry.max_attempts {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            format!(
                                "reconnect budget exhausted after {} attempts on {}: {e}",
                                failures,
                                self.source.describe()
                            ),
                        ));
                    }
                    std::thread::sleep(self.tuning.retry.backoff(failures));
                }
            }
        }
    }

    /// A connection ended (`why`); decide whether to quiesce or reconnect.
    /// Returns `true` when the stream is finished.
    fn connection_ended(&mut self, why: ConnEnd) -> bool {
        self.rx = None;
        match why {
            ConnEnd::Stalled => {
                self.counters.stalls.fetch_add(1, Ordering::SeqCst);
            }
            ConnEnd::Errored => {
                self.counters.disconnects.fetch_add(1, Ordering::SeqCst);
            }
            ConnEnd::Eof | ConnEnd::Shutdown => {}
        }
        if self.shutdown.load(Ordering::SeqCst) {
            self.finished = true;
            return true;
        }
        if self.conn_bytes == 0 && why == ConnEnd::Eof {
            self.quiet_connections += 1;
            if let Some(limit) = self.tuning.quiesce_after {
                if self.quiet_connections >= limit {
                    self.finished = true;
                    return true;
                }
            }
            // Pace quiet polling with the retry backoff so an idle source
            // is not hammered.
            std::thread::sleep(self.tuning.retry.backoff(self.quiet_connections.min(16)));
        } else if self.conn_bytes > 0 {
            self.quiet_connections = 0;
        }
        false
    }
}

/// The producer loop: read `stream` into chunks and push them through the
/// bounded queue, blocking (and counting a backpressure stall) when full.
fn produce(
    mut stream: Box<dyn Read + Send>,
    tx: SyncSender<Delivery>,
    chunk: usize,
    counters: Arc<StreamCounters>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = tx.send(Delivery::End(ConnEnd::Shutdown));
            return;
        }
        let mut buf = vec![0u8; chunk];
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(Delivery::End(ConnEnd::Eof));
                return;
            }
            Ok(n) => {
                buf.truncate(n);
                counters.add_queued(n as u64);
                match tx.try_send(Delivery::Bytes(buf)) {
                    Ok(()) => {}
                    Err(TrySendError::Full(msg)) => {
                        counters.backpressure_stalls.fetch_add(1, Ordering::SeqCst);
                        if tx.send(msg).is_err() {
                            // Consumer abandoned this connection (stall
                            // teardown); quit quietly.
                            counters.sub_queued(n as u64);
                            return;
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        counters.sub_queued(n as u64);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock =>
            {
                let _ = tx.send(Delivery::End(ConnEnd::Stalled));
                return;
            }
            Err(_) => {
                let _ = tx.send(Delivery::End(ConnEnd::Errored));
                return;
            }
        }
    }
}

impl<S: StreamSource> Read for ResumingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            // Drain pending bytes first: data already delivered must reach
            // the decoder even while shutting down, so the cursor and the
            // folded state stay consistent.
            if self.pending_pos < self.pending.len() {
                let rest = &self.pending[self.pending_pos..];
                let n = rest.len().min(buf.len());
                buf[..n].copy_from_slice(&rest[..n]);
                self.pending_pos += n;
                self.cursor += n as u64;
                self.counters
                    .delivered_bytes
                    .store(self.cursor, Ordering::SeqCst);
                return Ok(n);
            }
            if self.finished {
                return Ok(0);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                self.finished = true;
                return Ok(0);
            }
            if self.rx.is_none() {
                self.open_connection()?;
                continue;
            }
            let rx = self.rx.as_ref().expect("connection just ensured");
            match rx.recv_timeout(self.tuning.stall_timeout) {
                Ok(Delivery::Bytes(chunk)) => {
                    self.counters.sub_queued(chunk.len() as u64);
                    self.conn_bytes += chunk.len() as u64;
                    self.pending = chunk;
                    self.pending_pos = 0;
                }
                Ok(Delivery::End(why)) => {
                    if self.connection_ended(why) {
                        return Ok(0);
                    }
                }
                // Consumer-side stall deadline: the producer is stuck in a
                // read that is not returning. Abandon the connection (the
                // producer exits on its next failed send) and reconnect
                // from the cursor.
                Err(RecvTimeoutError::Timeout) => {
                    if self.connection_ended(ConnEnd::Stalled) {
                        return Ok(0);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if self.connection_ended(ConnEnd::Errored) {
                        return Ok(0);
                    }
                }
            }
        }
    }
}

/// Options for [`FeedServer`].
#[derive(Debug, Clone, Default)]
pub struct FeedServerOptions {
    /// Pace delivery: sleep this long between `chunk` writes. `None`
    /// serves as fast as the socket accepts.
    pub throttle: Option<(usize, Duration)>,
}

/// A minimal feed server for the [`SocketFeed`] resume protocol: serves one
/// static byte buffer, resuming each connection at the offset the client
/// requests. Real deployments would put a collector behind this; tests and
/// CI put a generated scenario archive behind it.
pub struct FeedServer {
    bytes: Arc<Vec<u8>>,
    opts: FeedServerOptions,
}

impl FeedServer {
    /// Serve the given bytes.
    pub fn new(bytes: Arc<Vec<u8>>, opts: FeedServerOptions) -> Self {
        FeedServer { bytes, opts }
    }

    /// Accept loop on an already-bound TCP listener; returns when
    /// `shutdown` is set. Serves connections sequentially — the resume
    /// protocol makes per-connection service short-lived, and a feed has
    /// one daemon consumer in practice.
    pub fn serve_tcp(
        &self,
        listener: std::net::TcpListener,
        shutdown: &AtomicBool,
    ) -> io::Result<u64> {
        listener.set_nonblocking(true)?;
        let mut served = 0u64;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(served);
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    served += 1;
                    // Per-connection errors (client went away) are normal.
                    let _ = self.serve_conn(stream, shutdown);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Serve one accepted connection: read the hello, stream from the
    /// requested offset, close.
    fn serve_conn<C: Read + Write>(&self, mut conn: C, shutdown: &AtomicBool) -> io::Result<()> {
        let mut hello = [0u8; 12];
        conn.read_exact(&mut hello)?;
        if &hello[..4] != FEED_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad feed hello magic",
            ));
        }
        let offset = u64::from_be_bytes(hello[4..].try_into().expect("8 bytes"));
        let start = (offset.min(self.bytes.len() as u64)) as usize;
        let rest = &self.bytes[start..];
        match self.opts.throttle {
            None => conn.write_all(rest)?,
            Some((chunk, pause)) => {
                for piece in rest.chunks(chunk.max(1)) {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    conn.write_all(piece)?;
                    std::thread::sleep(pause);
                }
            }
        }
        conn.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{StreamFaultKind, ALL_STREAM_FAULT_KINDS};

    fn payload(n: usize) -> Arc<Vec<u8>> {
        Arc::new((0..n).map(|i| (i % 251) as u8).collect())
    }

    fn quick_tuning() -> StreamTuning {
        StreamTuning {
            queue_bytes: 64 << 10,
            chunk_bytes: 4 << 10,
            stall_timeout: Duration::from_millis(100),
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
                per_file_deadline: None,
            },
            quiesce_after: Some(2),
        }
    }

    fn drain<S: StreamSource>(source: S, tuning: StreamTuning) -> (Vec<u8>, Arc<StreamCounters>) {
        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut stream = ResumingStream::new(source, tuning, 0, shutdown, counters.clone());
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("drain stream");
        (out, counters)
    }

    #[test]
    fn memory_feed_delivers_everything_and_quiesces() {
        let bytes = payload(300_000);
        let (out, counters) = drain(MemoryFeed::new(bytes.clone()), quick_tuning());
        assert_eq!(out, **bytes);
        assert_eq!(
            counters.delivered_bytes.load(Ordering::SeqCst),
            bytes.len() as u64
        );
        // One full connection plus the quiet polls that prove quiescence.
        assert!(counters.connections.load(Ordering::SeqCst) >= 3);
    }

    #[test]
    fn resume_from_cursor_skips_delivered_prefix() {
        let bytes = payload(10_000);
        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut stream = ResumingStream::new(
            MemoryFeed::new(bytes.clone()),
            quick_tuning(),
            4_000,
            shutdown,
            counters,
        );
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, bytes[4_000..]);
        assert_eq!(stream.cursor(), bytes.len() as u64);
    }

    #[test]
    fn delivery_faults_do_not_lose_or_reorder_bytes() {
        let bytes = payload(500_000);
        let faulty = FaultyFeed::new(
            MemoryFeed::new(bytes.clone()),
            StreamFaultConfig {
                seed: 77,
                rate: 0.9,
                kinds: ALL_STREAM_FAULT_KINDS.to_vec(),
                mean_fault_position: 40_000,
            },
        );
        let (out, counters) = drain(faulty, quick_tuning());
        assert_eq!(out, **bytes, "reconnect-and-resume must be lossless");
        assert!(
            counters.reconnects.load(Ordering::SeqCst) > 0,
            "fault schedule must actually interrupt delivery"
        );
    }

    #[test]
    fn injected_stall_is_detected_and_survived() {
        let bytes = payload(200_000);
        let faulty = FaultyFeed::new(
            MemoryFeed::new(bytes.clone()),
            StreamFaultConfig {
                seed: 3,
                rate: 1.0,
                kinds: vec![StreamFaultKind::IndefiniteStall],
                mean_fault_position: 20_000,
            },
        );
        let (out, counters) = drain(faulty, quick_tuning());
        assert_eq!(out, **bytes);
        assert!(counters.stalls.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn backpressure_counter_fires_with_tiny_queue() {
        let bytes = payload(400_000);
        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let tuning = StreamTuning {
            queue_bytes: 2 << 10,
            chunk_bytes: 1 << 10,
            ..quick_tuning()
        };
        // The queue proper is capped at `queue_bytes`; one chunk can sit in
        // the producer's hand (blocked on a full queue) and one in the
        // consumer's (received, not yet accounted), so the true occupancy
        // bound is cap + 2 chunks.
        let cap = tuning.queue_bytes as u64 + 2 * tuning.chunk_bytes as u64;
        let mut stream = ResumingStream::new(
            MemoryFeed::new(bytes.clone()),
            tuning,
            0,
            shutdown,
            counters.clone(),
        );
        let mut out = Vec::new();
        let mut buf = [0u8; 512];
        loop {
            // A deliberately slow consumer.
            std::thread::sleep(Duration::from_micros(200));
            match stream.read(&mut buf).unwrap() {
                0 => break,
                n => out.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(out, **bytes);
        assert!(
            counters.backpressure_stalls.load(Ordering::SeqCst) > 0,
            "slow consumer must observe backpressure"
        );
        assert!(
            counters.queue_peak_bytes.load(Ordering::SeqCst) <= cap,
            "queue occupancy must respect the configured cap"
        );
    }

    #[test]
    fn shutdown_drains_pending_then_eofs() {
        let bytes = payload(100_000);
        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut stream = ResumingStream::new(
            MemoryFeed::new(bytes.clone()),
            quick_tuning(),
            0,
            shutdown.clone(),
            counters,
        );
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0);
        shutdown.store(true, Ordering::SeqCst);
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        // Whatever was delivered is a strict prefix; nothing garbled.
        let total = n + rest.len();
        assert!(total <= bytes.len());
        let mut seen = buf[..n].to_vec();
        seen.extend_from_slice(&rest);
        assert_eq!(seen, bytes[..total]);
    }

    #[test]
    fn reconnect_budget_exhausts_into_error() {
        struct DeadSource;
        impl StreamSource for DeadSource {
            fn connect(&mut self, _offset: u64) -> io::Result<Box<dyn Read + Send>> {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "nothing listening",
                ))
            }
            fn describe(&self) -> String {
                "dead".into()
            }
        }
        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut stream = ResumingStream::new(DeadSource, quick_tuning(), 0, shutdown, counters);
        let err = stream.read(&mut [0u8; 16]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
    }

    #[test]
    fn socket_feed_round_trips_with_resume() {
        let bytes = payload(150_000);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server_shutdown = shutdown.clone();
        let server_bytes = bytes.clone();
        let server = std::thread::spawn(move || {
            FeedServer::new(server_bytes, FeedServerOptions::default())
                .serve_tcp(listener, &server_shutdown)
                .unwrap()
        });

        let feed = SocketFeed::new(FeedAddr::Tcp(addr), Duration::from_secs(2));
        let (out, counters) = drain(feed, quick_tuning());
        assert_eq!(out, **bytes);
        assert!(counters.connections.load(Ordering::SeqCst) >= 3);

        shutdown.store(true, Ordering::SeqCst);
        let served = server.join().unwrap();
        assert!(served >= 3, "full read + quiet polls");
    }

    #[cfg(unix)]
    #[test]
    fn unix_feed_round_trips() {
        use std::os::unix::net::UnixListener;
        let bytes = payload(80_000);
        let dir = std::env::temp_dir().join(format!("bgp-stream-unix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("feed.sock");
        let _ = std::fs::remove_file(&sock);
        let listener = UnixListener::bind(&sock).unwrap();
        listener.set_nonblocking(true).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server_shutdown = shutdown.clone();
        let server_bytes = bytes.clone();
        let server = std::thread::spawn(move || {
            let srv = FeedServer::new(server_bytes, FeedServerOptions::default());
            loop {
                if server_shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        let _ = srv.serve_conn(conn, &server_shutdown);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        });

        let feed = SocketFeed::new(FeedAddr::Unix(sock.clone()), Duration::from_secs(2));
        let (out, _) = drain(feed, quick_tuning());
        assert_eq!(out, **bytes);

        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap();
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn file_tail_sees_appended_data_across_connections() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("bgp-stream-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grow.mrt");
        std::fs::write(&path, b"first half ").unwrap();

        let counters = Arc::new(StreamCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut stream = ResumingStream::new(
            FileTailFeed::new(path.clone()),
            StreamTuning {
                quiesce_after: Some(4),
                ..quick_tuning()
            },
            0,
            shutdown,
            counters,
        );
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        let mut appended = false;
        loop {
            match stream.read(&mut buf).unwrap() {
                0 => break,
                n => {
                    out.extend_from_slice(&buf[..n]);
                    if !appended {
                        // Grow the file after the first connection's data.
                        let mut f = std::fs::OpenOptions::new()
                            .append(true)
                            .open(&path)
                            .unwrap();
                        f.write_all(b"second half").unwrap();
                        appended = true;
                    }
                }
            }
        }
        assert_eq!(out, b"first half second half");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
