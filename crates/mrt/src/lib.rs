//! MRT (RFC 6396) and BGP (RFC 4271) wire codecs.
//!
//! The paper's pipeline consumes MRT archives published by RouteViews and
//! RIPE RIS: `TABLE_DUMP_V2` RIB snapshots and `BGP4MP` update streams. This
//! crate implements both directions — the simulator *writes* MRT files and
//! the analysis pipeline *reads* them back — so the reproduction exercises
//! the same parse path a real deployment would (cf. `bgpkit-parser`).
//!
//! Layout:
//!
//! * [`nlri`] — RFC 4271 prefix (NLRI) encoding for IPv4 and IPv6.
//! * [`attrs`] — path attribute codec: ORIGIN, AS_PATH (4-byte ASNs),
//!   NEXT_HOP, MED, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR, COMMUNITIES
//!   (RFC 1997), LARGE_COMMUNITIES (RFC 8092), MP_REACH/MP_UNREACH_NLRI
//!   (RFC 4760) for IPv6.
//! * [`bgpmsg`] — BGP message framing and the UPDATE body.
//! * [`records`] — MRT record model: `PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST`,
//!   `RIB_IPV6_UNICAST`, `BGP4MP_MESSAGE_AS4`, `BGP4MP_STATE_CHANGE_AS4`.
//! * [`reader`] / [`writer`] — streaming record I/O over `std::io`.
//! * [`recover`] — a resynchronizing reader that survives framing damage
//!   (truncation, corrupted lengths, interleaved garbage) under an error
//!   budget, producing a structured [`IngestReport`].
//! * [`retry`] — bounded retry with deterministic exponential backoff for
//!   transient I/O (stalls, interrupts), counted into the ingest report.
//! * [`faults`] — deterministic, seeded fault injection for MRT byte
//!   streams *and* their delivery (transient-I/O faults via
//!   [`FlakyReader`], stream-level faults via [`FaultyStream`]), so
//!   robustness is a tested invariant rather than a hope.
//! * [`stream`] — continuous-feed sources behind the [`StreamSource`]
//!   trait, the bounded-queue [`ResumingStream`] delivery layer with
//!   reconnects and backpressure, and the [`FeedServer`] resume protocol.
//!
//! # Example
//!
//! ```
//! use bgp_mrt::{records::MrtRecord, writer::MrtWriter, reader::MrtReader};
//! use bgp_mrt::records::{PeerEntry, PeerIndexTable};
//! use std::net::IpAddr;
//!
//! let table = PeerIndexTable {
//!     collector_bgp_id: [192, 0, 2, 1].into(),
//!     view_name: String::new(),
//!     peers: vec![PeerEntry {
//!         bgp_id: [192, 0, 2, 2].into(),
//!         addr: IpAddr::from([192, 0, 2, 2]),
//!         asn: bgp_types::Asn::new(64500),
//!     }],
//! };
//! let mut buf = Vec::new();
//! MrtWriter::new(&mut buf)
//!     .write_record(0, &MrtRecord::PeerIndexTable(table.clone()))
//!     .unwrap();
//! let parsed: Vec<_> = MrtReader::new(&buf[..]).map(Result::unwrap).collect();
//! assert_eq!(parsed.len(), 1);
//! assert_eq!(parsed[0].record, MrtRecord::PeerIndexTable(table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod bgpmsg;
pub mod cursor;
pub mod error;
pub mod faults;
pub mod nlri;
pub mod obs;
pub mod readahead;
pub mod reader;
pub mod records;
pub mod recover;
pub mod retry;
pub mod stream;
pub mod view;
pub mod writer;

pub use error::{MrtError, MrtErrorKind};
pub use faults::{
    FaultConfig, FaultInjector, FaultKind, FaultLog, FaultyStream, FlakyConfig, FlakyReader,
    StreamFaultConfig, StreamFaultInjector, StreamFaultKind, StreamFaultLog,
};
pub use obs::{FileIngest, FileStoreIngest, IngestTuning, StreamDecoder, StreamStep};
pub use readahead::Readahead;
pub use reader::MrtReader;
pub use records::{MrtRecord, TimestampedRecord};
pub use recover::{ErrorCounters, IngestReport, RecoverConfig, RecoveringReader};
pub use retry::{RetryPolicy, RetryingReader};
pub use stream::{
    FaultyFeed, FeedAddr, FeedServer, FeedServerOptions, FileTailFeed, MemoryFeed, ResumingStream,
    SocketFeed, StreamCounters, StreamSource, StreamTuning,
};
pub use view::RecordScratch;
pub use writer::MrtWriter;
