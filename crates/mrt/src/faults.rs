//! Deterministic fault injection for MRT byte streams.
//!
//! Real collector archives (RouteViews, RIPE RIS) contain truncated records,
//! unknown types, and malformed attributes; a pipeline that only ever sees
//! its own pristine output never exercises the paths that matter in
//! deployment. This module mutates a *clean* MRT stream with seeded,
//! composable corruptions so tests and benches can make robustness a
//! measured invariant: the same `(seed, rate, kinds)` triple always produces
//! the same damaged bytes.
//!
//! The injector is record-aware: it frames the clean stream first, then
//! damages a chosen fraction of records. Faults fall into two classes the
//! reader stack treats very differently:
//!
//! * **body-local** damage (unknown type/subtype, malformed body bytes) —
//!   the record stays well-framed, so even the plain [`crate::MrtReader`]
//!   skips it and continues;
//! * **framing** damage (mid-record truncation, corrupted length fields,
//!   interleaved garbage) — the byte position of the next record is lost,
//!   and only the resynchronizing [`crate::RecoveringReader`] can continue.

/// One way to damage a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cut the record short mid-body (framing damage: the stream loses
    /// alignment at this point).
    TruncateRecord,
    /// Flip one random bit somewhere in the 12-byte MRT header.
    HeaderBitFlip,
    /// Flip one random bit somewhere in the body.
    BodyBitFlip,
    /// Inflate the header length field beyond the actual body (framing
    /// damage: the reader swallows the next record(s) as body bytes).
    OversizeLength,
    /// Shrink the header length field below the actual body (framing
    /// damage: trailing body bytes look like a next header).
    UndersizeLength,
    /// Rewrite the MRT type to a value no implementation knows.
    UnknownType,
    /// Rewrite the subtype to a value no implementation knows.
    UnknownSubtype,
    /// Overwrite a small span of body bytes with garbage (typically lands
    /// in a path attribute).
    MalformedBody,
    /// Insert a run of random bytes *before* the record (framing damage:
    /// the reader must scan past the garbage to resync).
    GarbageInsert,
}

/// Every fault kind, for "throw the kitchen sink at it" configurations.
pub const ALL_FAULT_KINDS: &[FaultKind] = &[
    FaultKind::TruncateRecord,
    FaultKind::HeaderBitFlip,
    FaultKind::BodyBitFlip,
    FaultKind::OversizeLength,
    FaultKind::UndersizeLength,
    FaultKind::UnknownType,
    FaultKind::UnknownSubtype,
    FaultKind::MalformedBody,
    FaultKind::GarbageInsert,
];

/// The subset of [`ALL_FAULT_KINDS`] that keeps records well-framed, so a
/// non-recovering reader is expected to survive them too.
pub const BODY_LOCAL_FAULT_KINDS: &[FaultKind] = &[
    FaultKind::BodyBitFlip,
    FaultKind::UnknownType,
    FaultKind::UnknownSubtype,
    FaultKind::MalformedBody,
];

/// Injection parameters. Identical configs over identical input produce
/// identical output.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the injector's deterministic PRNG.
    pub seed: u64,
    /// Fraction of records to corrupt, `0.0..=1.0`. Any positive rate
    /// corrupts at least one record (when there is one).
    pub rate: f64,
    /// The fault kinds to draw from, uniformly. Empty means "inject
    /// nothing".
    pub kinds: Vec<FaultKind>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xBADC_0FFE,
            rate: 0.01,
            kinds: ALL_FAULT_KINDS.to_vec(),
        }
    }
}

/// One corruption that was applied, for test assertions and reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedFault {
    /// Index of the damaged record in the clean stream's framing.
    pub record_index: usize,
    /// Byte offset of that record's header in the *clean* stream.
    pub clean_offset: usize,
    /// What was done to it.
    pub kind: FaultKind,
}

/// Everything an injection run did.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    /// Applied faults in record order.
    pub applied: Vec<AppliedFault>,
}

impl FaultLog {
    /// Total number of corruptions applied.
    pub fn count(&self) -> usize {
        self.applied.len()
    }

    /// How many corruptions of one kind were applied.
    pub fn count_of(&self, kind: FaultKind) -> usize {
        self.applied.iter().filter(|f| f.kind == kind).count()
    }

    /// Whether any applied fault breaks framing (as opposed to damaging a
    /// single record body in place).
    pub fn breaks_framing(&self) -> bool {
        self.applied.iter().any(|f| {
            matches!(
                f.kind,
                FaultKind::TruncateRecord
                    | FaultKind::HeaderBitFlip
                    | FaultKind::OversizeLength
                    | FaultKind::UndersizeLength
                    | FaultKind::GarbageInsert
            )
        })
    }
}

/// SplitMix64: tiny, seedable, and stable across platforms — exactly what a
/// reproducible corruption schedule needs (and no extra dependency).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant for fuzzing).
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// `(start, total_len)` of each record in a clean stream; stops at the first
/// frame that does not fit (the unframeable tail is passed through verbatim).
fn frame(clean: &[u8]) -> Vec<(usize, usize)> {
    let mut frames = Vec::new();
    let mut pos = 0;
    while clean.len() - pos >= 12 {
        let len = u32::from_be_bytes([
            clean[pos + 8],
            clean[pos + 9],
            clean[pos + 10],
            clean[pos + 11],
        ]) as usize;
        let total = 12 + len;
        if clean.len() - pos < total {
            break;
        }
        frames.push((pos, total));
        pos += total;
    }
    frames
}

/// A seeded, composable corrupter of MRT byte streams.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// Build an injector from its config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// Corrupt `clean`, returning the damaged bytes and a log of what was
    /// done. The input is never modified; unselected records are copied
    /// verbatim.
    pub fn corrupt(&self, clean: &[u8]) -> (Vec<u8>, FaultLog) {
        let mut log = FaultLog::default();
        if self.cfg.kinds.is_empty() || self.cfg.rate <= 0.0 {
            return (clean.to_vec(), log);
        }
        let frames = frame(clean);
        if frames.is_empty() {
            return (clean.to_vec(), log);
        }

        let mut rng = SplitMix64::new(self.cfg.seed);
        let target = ((frames.len() as f64 * self.cfg.rate.min(1.0)).round() as usize)
            .clamp(1, frames.len());

        // Partial Fisher-Yates: pick `target` distinct victim records.
        let mut indices: Vec<usize> = (0..frames.len()).collect();
        for i in 0..target {
            let j = i + rng.below(indices.len() - i);
            indices.swap(i, j);
        }
        let mut victims = indices[..target].to_vec();
        victims.sort_unstable();

        let mut out = Vec::with_capacity(clean.len() + 64 * target);
        let mut victim_iter = victims.into_iter().peekable();
        for (idx, &(start, total)) in frames.iter().enumerate() {
            let record = &clean[start..start + total];
            if victim_iter.peek() == Some(&idx) {
                victim_iter.next();
                let kind = self.cfg.kinds[rng.below(self.cfg.kinds.len())];
                apply(kind, record, &mut out, &mut rng);
                log.applied.push(AppliedFault {
                    record_index: idx,
                    clean_offset: start,
                    kind,
                });
            } else {
                out.extend_from_slice(record);
            }
        }
        // Unframeable tail (normally empty for a clean stream).
        let framed_end = frames.last().map_or(0, |&(s, t)| s + t);
        out.extend_from_slice(&clean[framed_end..]);
        (out, log)
    }
}

/// Emit one damaged copy of `record` (12-byte header + body) into `out`.
fn apply(kind: FaultKind, record: &[u8], out: &mut Vec<u8>, rng: &mut SplitMix64) {
    let body_len = record.len() - 12;
    match kind {
        FaultKind::TruncateRecord => {
            // Keep at least the first byte, lose at least the last one.
            let cut = 1 + rng.below(record.len() - 1);
            out.extend_from_slice(&record[..cut]);
        }
        FaultKind::HeaderBitFlip => {
            let mut copy = record.to_vec();
            let byte = rng.below(12);
            copy[byte] ^= 1 << rng.below(8);
            out.extend_from_slice(&copy);
        }
        FaultKind::BodyBitFlip => {
            let mut copy = record.to_vec();
            if body_len > 0 {
                let byte = 12 + rng.below(body_len);
                copy[byte] ^= 1 << rng.below(8);
            } else {
                copy[rng.below(12)] ^= 1 << rng.below(8);
            }
            out.extend_from_slice(&copy);
        }
        FaultKind::OversizeLength => {
            let mut copy = record.to_vec();
            let inflated = (body_len as u32).saturating_add(1 + rng.below(4096) as u32);
            copy[8..12].copy_from_slice(&inflated.to_be_bytes());
            out.extend_from_slice(&copy);
        }
        FaultKind::UndersizeLength => {
            let mut copy = record.to_vec();
            let deflated = if body_len > 0 {
                rng.below(body_len) as u32
            } else {
                0
            };
            copy[8..12].copy_from_slice(&deflated.to_be_bytes());
            out.extend_from_slice(&copy);
        }
        FaultKind::UnknownType => {
            let mut copy = record.to_vec();
            let t = 60_000 + rng.below(5_000) as u16;
            copy[4..6].copy_from_slice(&t.to_be_bytes());
            out.extend_from_slice(&copy);
        }
        FaultKind::UnknownSubtype => {
            let mut copy = record.to_vec();
            let s = 60_000 + rng.below(5_000) as u16;
            copy[6..8].copy_from_slice(&s.to_be_bytes());
            out.extend_from_slice(&copy);
        }
        FaultKind::MalformedBody => {
            let mut copy = record.to_vec();
            if body_len > 0 {
                let span = (1 + rng.below(8)).min(body_len);
                let at = 12 + rng.below(body_len - span + 1);
                for b in &mut copy[at..at + span] {
                    *b = (rng.next_u64() & 0xFF) as u8;
                }
            }
            out.extend_from_slice(&copy);
        }
        FaultKind::GarbageInsert => {
            let n = 1 + rng.below(64);
            for _ in 0..n {
                out.push((rng.next_u64() & 0xFF) as u8);
            }
            out.extend_from_slice(record);
        }
    }
}

/// Transient-I/O fault parameters for [`FlakyReader`]. Identical configs
/// over an identical read sequence inject identical faults.
///
/// The three knobs model the transient failure classes a retrying reader
/// must absorb (they say nothing about the *bytes*, which stay intact):
///
/// * `interrupt_rate` — `ErrorKind::Interrupted` (`EINTR`): the classic
///   retry-immediately signal;
/// * `stall_rate` — `ErrorKind::TimedOut`: a storage stall that a one-shot
///   reader treats as fatal but a [`crate::retry::RetryingReader`] retries
///   with backoff;
/// * `short_read_rate` — the read returns fewer bytes than asked (legal,
///   but exercises every caller's partial-read handling).
#[derive(Debug, Clone)]
pub struct FlakyConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability a read call fails with `Interrupted`.
    pub interrupt_rate: f64,
    /// Probability a read call fails with `TimedOut`.
    pub stall_rate: f64,
    /// Probability a read call returns a short read.
    pub short_read_rate: f64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            seed: 0xF1A6_F1A6,
            interrupt_rate: 0.10,
            stall_rate: 0.05,
            short_read_rate: 0.25,
        }
    }
}

impl FlakyConfig {
    /// The same schedule under a different seed (per-file decorrelation in
    /// multi-file ingests).
    pub fn reseeded(&self, seed: u64) -> Self {
        FlakyConfig {
            seed,
            ..self.clone()
        }
    }
}

/// A `Read` adapter that injects seeded *transient* faults — interrupts,
/// stalls, short reads — without corrupting a single byte of the payload.
///
/// Complements the byte-level [`FaultInjector`]: that one damages *data* to
/// exercise the decoder's recovery, this one damages *delivery* to exercise
/// the retry layer. Every injected fault is counted so tests can assert the
/// schedule actually fired.
#[derive(Debug)]
pub struct FlakyReader<R> {
    inner: R,
    cfg: FlakyConfig,
    rng: SplitMix64,
    /// Transient errors injected so far.
    pub faults_injected: u64,
    /// Short reads served so far.
    pub short_reads: u64,
}

impl<R: std::io::Read> FlakyReader<R> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: R, cfg: FlakyConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        FlakyReader {
            inner,
            cfg,
            rng,
            faults_injected: 0,
            short_reads: 0,
        }
    }

    /// Draw in `[0, 1)` from the fault schedule.
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: std::io::Read> std::io::Read for FlakyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let draw = self.unit();
        if draw < self.cfg.interrupt_rate {
            self.faults_injected += 1;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected EINTR",
            ));
        }
        if draw < self.cfg.interrupt_rate + self.cfg.stall_rate {
            self.faults_injected += 1;
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "injected stall",
            ));
        }
        if draw < self.cfg.interrupt_rate + self.cfg.stall_rate + self.cfg.short_read_rate
            && buf.len() > 1
        {
            self.short_reads += 1;
            let cut = 1 + self.rng.below(buf.len() - 1);
            return self.inner.read(&mut buf[..cut]);
        }
        self.inner.read(buf)
    }
}

/// One way a *live stream* can misbehave, beyond what archived files show.
///
/// The five kinds split into two classes, mirrored by the two consumers
/// below:
///
/// * **payload faults** ([`StreamFaultKind::DuplicateDelivery`],
///   [`StreamFaultKind::CorruptBurst`]) change the delivered *bytes* and are
///   applied ahead of time by [`StreamFaultInjector::corrupt_delivery`], so a
///   batch reference run over the same damaged bytes sees exactly what the
///   daemon saw;
/// * **delivery faults** ([`StreamFaultKind::DisconnectMidFrame`],
///   [`StreamFaultKind::IndefiniteStall`],
///   [`StreamFaultKind::PartialFrame`]) interrupt *transport* without
///   touching a byte and are injected live by [`FaultyStream`] — after
///   reconnect-and-resume the delivered byte sequence is bit-identical to
///   the unfaulted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamFaultKind {
    /// The connection drops with `ECONNRESET` partway through a record
    /// frame.
    DisconnectMidFrame,
    /// The connection stops making progress forever: every further read
    /// times out. Only the consumer's stall deadline gets the stream moving
    /// again (by abandoning the connection).
    IndefiniteStall,
    /// The peer delivers part of a frame and then closes cleanly (EOF
    /// mid-frame) — the classic half-written tail of a dying sender.
    PartialFrame,
    /// A span of already-delivered frames is delivered again, verbatim
    /// (replay after an ack was lost). Content-addressed folding must
    /// absorb the duplicates without double-counting.
    DuplicateDelivery,
    /// A burst of bytes inside the stream is overwritten with garbage,
    /// spanning record boundaries — the quarantine-and-resync path.
    CorruptBurst,
}

/// Every stream fault kind.
pub const ALL_STREAM_FAULT_KINDS: &[StreamFaultKind] = &[
    StreamFaultKind::DisconnectMidFrame,
    StreamFaultKind::IndefiniteStall,
    StreamFaultKind::PartialFrame,
    StreamFaultKind::DuplicateDelivery,
    StreamFaultKind::CorruptBurst,
];

/// The transport-interrupting subset, handled by [`FaultyStream`].
pub const DELIVERY_STREAM_FAULT_KINDS: &[StreamFaultKind] = &[
    StreamFaultKind::DisconnectMidFrame,
    StreamFaultKind::IndefiniteStall,
    StreamFaultKind::PartialFrame,
];

/// The byte-changing subset, handled by
/// [`StreamFaultInjector::corrupt_delivery`].
pub const PAYLOAD_STREAM_FAULT_KINDS: &[StreamFaultKind] = &[
    StreamFaultKind::DuplicateDelivery,
    StreamFaultKind::CorruptBurst,
];

/// Stream fault parameters. As with [`FaultConfig`], identical configs over
/// identical input produce identical faults.
#[derive(Debug, Clone)]
pub struct StreamFaultConfig {
    /// Seed for the deterministic schedule.
    pub seed: u64,
    /// For payload faults: fraction of frames hit. For delivery faults:
    /// probability that one fault fires on a given connection.
    pub rate: f64,
    /// Kinds to draw from. Consumers ignore kinds outside their class.
    pub kinds: Vec<StreamFaultKind>,
    /// Mean number of bytes a connection delivers before a delivery fault
    /// fires (the actual position is drawn uniformly in `1..=2*mean`).
    pub mean_fault_position: usize,
}

impl Default for StreamFaultConfig {
    fn default() -> Self {
        StreamFaultConfig {
            seed: 0x57E4_FA17,
            rate: 0.02,
            kinds: ALL_STREAM_FAULT_KINDS.to_vec(),
            mean_fault_position: 64 * 1024,
        }
    }
}

impl StreamFaultConfig {
    /// The same schedule under a different seed (per-connection
    /// decorrelation: reseed with `seed ^ connection_index`).
    pub fn reseeded(&self, seed: u64) -> Self {
        StreamFaultConfig {
            seed,
            ..self.clone()
        }
    }
}

/// One stream-level corruption that was applied to the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedStreamFault {
    /// Index of the first affected record in the clean stream's framing.
    pub record_index: usize,
    /// Byte offset of that record's header in the *clean* stream.
    pub clean_offset: usize,
    /// What was done.
    pub kind: StreamFaultKind,
}

/// Everything a payload-fault injection run did.
#[derive(Debug, Clone, Default)]
pub struct StreamFaultLog {
    /// Applied faults in record order.
    pub applied: Vec<AppliedStreamFault>,
}

impl StreamFaultLog {
    /// Total number of corruptions applied.
    pub fn count(&self) -> usize {
        self.applied.len()
    }

    /// How many corruptions of one kind were applied.
    pub fn count_of(&self, kind: StreamFaultKind) -> usize {
        self.applied.iter().filter(|f| f.kind == kind).count()
    }
}

/// Applies the *payload* stream faults (duplicate delivery, corrupt bursts)
/// to a clean byte stream ahead of time, so the damaged bytes can both be
/// served to the daemon and written to disk for a batch reference run.
#[derive(Debug, Clone)]
pub struct StreamFaultInjector {
    cfg: StreamFaultConfig,
}

impl StreamFaultInjector {
    /// Build an injector from its config.
    pub fn new(cfg: StreamFaultConfig) -> Self {
        StreamFaultInjector { cfg }
    }

    /// Damage `clean` with the payload fault kinds in the config
    /// (delivery-only kinds are skipped — they cannot be expressed as
    /// bytes). Duplicated spans are always whole frames, so a resilient
    /// decoder sees well-formed duplicate records; corrupt bursts overwrite
    /// bytes in place (stream length unchanged) so framing recovers at the
    /// next surviving record.
    pub fn corrupt_delivery(&self, clean: &[u8]) -> (Vec<u8>, StreamFaultLog) {
        let mut log = StreamFaultLog::default();
        let kinds: Vec<StreamFaultKind> = self
            .cfg
            .kinds
            .iter()
            .copied()
            .filter(|k| PAYLOAD_STREAM_FAULT_KINDS.contains(k))
            .collect();
        if kinds.is_empty() || self.cfg.rate <= 0.0 {
            return (clean.to_vec(), log);
        }
        let frames = frame(clean);
        if frames.is_empty() {
            return (clean.to_vec(), log);
        }

        let mut rng = SplitMix64::new(self.cfg.seed);
        let target = ((frames.len() as f64 * self.cfg.rate.min(1.0)).round() as usize)
            .clamp(1, frames.len());
        let mut indices: Vec<usize> = (0..frames.len()).collect();
        for i in 0..target {
            let j = i + rng.below(indices.len() - i);
            indices.swap(i, j);
        }
        let mut victims = indices[..target].to_vec();
        victims.sort_unstable();

        let mut out = Vec::with_capacity(clean.len() + 64 * target);
        let mut victim_iter = victims.into_iter().peekable();
        for (idx, &(start, total)) in frames.iter().enumerate() {
            let record = &clean[start..start + total];
            if victim_iter.peek() != Some(&idx) {
                out.extend_from_slice(record);
                continue;
            }
            victim_iter.next();
            let kind = kinds[rng.below(kinds.len())];
            match kind {
                StreamFaultKind::DuplicateDelivery => {
                    // Replay this frame plus up to two of its predecessors,
                    // verbatim and frame-aligned.
                    let back = rng.below(3).min(idx);
                    let (rstart, _) = frames[idx - back];
                    out.extend_from_slice(record);
                    out.extend_from_slice(&clean[rstart..start + total]);
                }
                StreamFaultKind::CorruptBurst => {
                    // Overwrite a span starting inside this frame; the span
                    // may run past the frame's end into its successors.
                    let mut copy = record.to_vec();
                    let at = rng.below(total);
                    let span = 8 + rng.below(89);
                    for off in 0..span.min(total - at) {
                        copy[at + off] = (rng.next_u64() & 0xFF) as u8;
                    }
                    out.extend_from_slice(&copy);
                }
                _ => unreachable!("delivery kinds filtered out above"),
            }
            log.applied.push(AppliedStreamFault {
                record_index: idx,
                clean_offset: start,
                kind,
            });
        }
        let framed_end = frames.last().map_or(0, |&(s, t)| s + t);
        out.extend_from_slice(&clean[framed_end..]);
        (out, log)
    }
}

/// What a [`FaultyStream`] is scheduled to do to its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlannedDeliveryFault {
    /// Deliver faithfully to EOF.
    None,
    /// At `at` delivered bytes, fail with `ECONNRESET`.
    Disconnect { at: u64 },
    /// At `at` delivered bytes, time out on every further read.
    Stall { at: u64 },
    /// At `at` delivered bytes, report clean EOF (mid-frame half-delivery).
    PartialEof { at: u64 },
}

/// A `Read` adapter injecting seeded *delivery* stream faults — disconnects,
/// indefinite stalls, partial-frame EOFs — on a single connection. Bytes
/// that are delivered are always faithful; a resuming consumer that
/// reconnects from its cursor reconstructs the exact clean sequence.
///
/// Payload faults in the config are ignored here (see
/// [`StreamFaultInjector`]); wrap each new connection with a
/// [`StreamFaultConfig::reseeded`] config to decorrelate schedules while
/// keeping the whole run deterministic.
#[derive(Debug)]
pub struct FaultyStream<R> {
    inner: R,
    plan: PlannedDeliveryFault,
    delivered: u64,
    /// Whether the planned fault has fired.
    pub fired: Option<StreamFaultKind>,
}

impl<R: std::io::Read> FaultyStream<R> {
    /// Wrap one connection's stream with the given schedule.
    pub fn new(inner: R, cfg: &StreamFaultConfig) -> Self {
        let mut rng = SplitMix64::new(cfg.seed);
        let kinds: Vec<StreamFaultKind> = cfg
            .kinds
            .iter()
            .copied()
            .filter(|k| DELIVERY_STREAM_FAULT_KINDS.contains(k))
            .collect();
        let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let plan = if kinds.is_empty() || draw >= cfg.rate {
            PlannedDeliveryFault::None
        } else {
            let at = 1 + rng.below(2 * cfg.mean_fault_position.max(1)) as u64;
            match kinds[rng.below(kinds.len())] {
                StreamFaultKind::DisconnectMidFrame => PlannedDeliveryFault::Disconnect { at },
                StreamFaultKind::IndefiniteStall => PlannedDeliveryFault::Stall { at },
                StreamFaultKind::PartialFrame => PlannedDeliveryFault::PartialEof { at },
                _ => unreachable!("payload kinds filtered out above"),
            }
        };
        FaultyStream {
            inner,
            plan,
            delivered: 0,
            fired: None,
        }
    }

    /// Bytes faithfully delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn fault_at(&self) -> Option<(u64, StreamFaultKind)> {
        match self.plan {
            PlannedDeliveryFault::None => None,
            PlannedDeliveryFault::Disconnect { at } => {
                Some((at, StreamFaultKind::DisconnectMidFrame))
            }
            PlannedDeliveryFault::Stall { at } => Some((at, StreamFaultKind::IndefiniteStall)),
            PlannedDeliveryFault::PartialEof { at } => Some((at, StreamFaultKind::PartialFrame)),
        }
    }
}

impl<R: std::io::Read> std::io::Read for FaultyStream<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some((at, kind)) = self.fault_at() else {
            let n = self.inner.read(buf)?;
            self.delivered += n as u64;
            return Ok(n);
        };
        if self.delivered >= at {
            self.fired = Some(kind);
            return match kind {
                StreamFaultKind::DisconnectMidFrame => Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected disconnect mid-frame",
                )),
                // An indefinite stall: *every* read from here on times out.
                StreamFaultKind::IndefiniteStall => Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected indefinite stall",
                )),
                // The peer half-delivered a frame and closed cleanly.
                _ => Ok(0),
            };
        }
        // Never deliver past the scheduled fault position, so the fault
        // lands at a deterministic byte offset regardless of read sizes.
        let room = (at - self.delivered).min(buf.len() as u64) as usize;
        let n = self.inner.read(&mut buf[..room])?;
        self.delivered += n as u64;
        Ok(n)
    }
}

/// Convenience: corrupt `rate` of the records in `clean` with every fault
/// kind enabled, under `seed`.
pub fn corrupt_stream(clean: &[u8], seed: u64, rate: f64) -> (Vec<u8>, FaultLog) {
    FaultInjector::new(FaultConfig {
        seed,
        rate,
        ..FaultConfig::default()
    })
    .corrupt(clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Bgp4mpStateChange, BgpState, MrtRecord};
    use crate::writer::MrtWriter;
    use bgp_types::Asn;
    use std::net::IpAddr;

    fn clean_stream(n: u32) -> Vec<u8> {
        let rec = MrtRecord::StateChange(Bgp4mpStateChange {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: IpAddr::from([192, 0, 2, 1]),
            old_state: BgpState::Idle,
            new_state: BgpState::Established,
        });
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for ts in 0..n {
            w.write_record(ts, &rec).unwrap();
        }
        buf
    }

    #[test]
    fn deterministic_for_same_seed() {
        let clean = clean_stream(50);
        let (a, la) = corrupt_stream(&clean, 7, 0.2);
        let (b, lb) = corrupt_stream(&clean, 7, 0.2);
        assert_eq!(a, b);
        assert_eq!(la.applied, lb.applied);
        let (c, _) = corrupt_stream(&clean, 8, 0.2);
        assert_ne!(a, c, "different seeds must corrupt differently");
    }

    #[test]
    fn rate_selects_expected_victim_count() {
        let clean = clean_stream(100);
        let (_, log) = corrupt_stream(&clean, 1, 0.1);
        assert_eq!(log.count(), 10);
        let (_, log) = corrupt_stream(&clean, 1, 0.0001);
        assert_eq!(log.count(), 1, "positive rate corrupts at least one");
        let (corrupted, log) = corrupt_stream(&clean, 1, 0.0);
        assert_eq!(log.count(), 0);
        assert_eq!(corrupted, clean);
    }

    #[test]
    fn body_local_faults_preserve_framing() {
        let clean = clean_stream(40);
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            rate: 0.5,
            kinds: BODY_LOCAL_FAULT_KINDS.to_vec(),
        });
        let (corrupted, log) = inj.corrupt(&clean);
        assert!(!log.breaks_framing());
        assert_eq!(corrupted.len(), clean.len());
        // Every record still frames.
        assert_eq!(frame(&corrupted).len(), 40);
    }

    #[test]
    fn each_kind_applies_alone() {
        let clean = clean_stream(20);
        for &kind in ALL_FAULT_KINDS {
            let inj = FaultInjector::new(FaultConfig {
                seed: 11,
                rate: 0.25,
                kinds: vec![kind],
            });
            let (corrupted, log) = inj.corrupt(&clean);
            assert_eq!(log.count(), 5, "{kind:?}");
            assert!(log.applied.iter().all(|f| f.kind == kind));
            assert_ne!(corrupted, clean, "{kind:?} must change the bytes");
        }
    }

    #[test]
    fn flaky_reader_is_deterministic_and_preserves_bytes() {
        use std::io::Read;
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let cfg = FlakyConfig {
            seed: 9,
            interrupt_rate: 0.2,
            stall_rate: 0.0, // only retryable-without-policy faults here
            short_read_rate: 0.3,
        };
        let drain = |cfg: FlakyConfig| {
            let mut r = FlakyReader::new(&payload[..], cfg);
            let mut out = Vec::new();
            let mut buf = [0u8; 997];
            let mut injected = 0u64;
            loop {
                match r.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => injected += 1,
                    Err(e) => panic!("unexpected error kind: {e}"),
                }
            }
            assert_eq!(injected, r.faults_injected);
            (out, r.faults_injected, r.short_reads)
        };
        let (a, fa, sa) = drain(cfg.clone());
        let (b, fb, sb) = drain(cfg.clone());
        assert_eq!(a, payload, "delivery faults never corrupt bytes");
        assert_eq!((fa, sa), (fb, sb), "same seed, same schedule");
        assert_eq!(a, b);
        assert!(fa > 0 && sa > 0, "schedule must actually fire");
        let (c, _, _) = drain(cfg.reseeded(10));
        assert_eq!(c, payload, "different seed, same bytes");
    }

    #[test]
    fn flaky_stalls_surface_as_timed_out() {
        use std::io::Read;
        let payload = vec![0u8; 4096];
        let mut r = FlakyReader::new(
            &payload[..],
            FlakyConfig {
                seed: 4,
                interrupt_rate: 0.0,
                stall_rate: 1.0,
                short_read_rate: 0.0,
            },
        );
        let err = r.read(&mut [0u8; 64]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(r.faults_injected, 1);
    }

    #[test]
    fn stream_payload_faults_are_deterministic() {
        let clean = clean_stream(60);
        let cfg = StreamFaultConfig {
            seed: 21,
            rate: 0.1,
            ..StreamFaultConfig::default()
        };
        let (a, la) = StreamFaultInjector::new(cfg.clone()).corrupt_delivery(&clean);
        let (b, lb) = StreamFaultInjector::new(cfg.clone()).corrupt_delivery(&clean);
        assert_eq!(a, b);
        assert_eq!(la.applied, lb.applied);
        assert_eq!(la.count(), 6);
        let (c, _) = StreamFaultInjector::new(cfg.reseeded(22)).corrupt_delivery(&clean);
        assert_ne!(a, c, "different seeds must damage differently");
    }

    #[test]
    fn duplicate_delivery_replays_whole_frames() {
        let clean = clean_stream(30);
        let inj = StreamFaultInjector::new(StreamFaultConfig {
            seed: 5,
            rate: 0.2,
            kinds: vec![StreamFaultKind::DuplicateDelivery],
            ..StreamFaultConfig::default()
        });
        let (out, log) = inj.corrupt_delivery(&clean);
        assert!(log.count() > 0);
        assert!(log
            .applied
            .iter()
            .all(|f| f.kind == StreamFaultKind::DuplicateDelivery));
        assert!(out.len() > clean.len(), "duplicates must add bytes");
        // Every frame in the damaged stream still frames cleanly, and the
        // damaged stream is a supersequence of duplicated clean records.
        let frames = frame(&out);
        let frame_len = frame(&clean)[0].1;
        assert!(frames.len() > 30);
        assert!(frames.iter().all(|&(_, t)| t == frame_len));
    }

    #[test]
    fn corrupt_burst_keeps_length_and_is_confined() {
        let clean = clean_stream(30);
        let inj = StreamFaultInjector::new(StreamFaultConfig {
            seed: 5,
            rate: 0.2,
            kinds: vec![StreamFaultKind::CorruptBurst],
            ..StreamFaultConfig::default()
        });
        let (out, log) = inj.corrupt_delivery(&clean);
        assert!(log.count() > 0);
        assert_eq!(out.len(), clean.len(), "bursts overwrite in place");
        assert_ne!(out, clean);
    }

    #[test]
    fn delivery_only_config_passes_payload_through() {
        let clean = clean_stream(10);
        let inj = StreamFaultInjector::new(StreamFaultConfig {
            seed: 5,
            rate: 1.0,
            kinds: DELIVERY_STREAM_FAULT_KINDS.to_vec(),
            ..StreamFaultConfig::default()
        });
        let (out, log) = inj.corrupt_delivery(&clean);
        assert_eq!(out, clean);
        assert_eq!(log.count(), 0);
    }

    #[test]
    fn faulty_stream_disconnects_at_deterministic_position() {
        use std::io::Read;
        let payload = vec![7u8; 100_000];
        let cfg = StreamFaultConfig {
            seed: 31,
            rate: 1.0,
            kinds: vec![StreamFaultKind::DisconnectMidFrame],
            mean_fault_position: 10_000,
        };
        let drain = |cfg: &StreamFaultConfig| {
            let mut s = FaultyStream::new(&payload[..], cfg);
            let mut out = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) => {
                        assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset);
                        break;
                    }
                }
            }
            (out, s.fired)
        };
        let (a, fired_a) = drain(&cfg);
        let (b, fired_b) = drain(&cfg);
        assert_eq!(fired_a, Some(StreamFaultKind::DisconnectMidFrame));
        assert_eq!(fired_a, fired_b);
        assert_eq!(a, b, "same seed cuts at the same byte");
        assert!(!a.is_empty() && a.len() < payload.len());
        assert_eq!(a, payload[..a.len()], "delivered bytes stay faithful");
    }

    #[test]
    fn faulty_stream_stall_times_out_forever() {
        use std::io::Read;
        let payload = [1u8; 64];
        let mut s = FaultyStream::new(
            &payload[..],
            &StreamFaultConfig {
                seed: 2,
                rate: 1.0,
                kinds: vec![StreamFaultKind::IndefiniteStall],
                mean_fault_position: 8,
            },
        );
        let mut buf = [0u8; 64];
        let mut got = 0;
        loop {
            match s.read(&mut buf) {
                Ok(n) => got += n,
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
                    break;
                }
            }
        }
        assert!(got < payload.len());
        // Indefinite: the stall persists on every subsequent read.
        for _ in 0..3 {
            assert_eq!(
                s.read(&mut buf).unwrap_err().kind(),
                std::io::ErrorKind::TimedOut
            );
        }
        assert_eq!(s.fired, Some(StreamFaultKind::IndefiniteStall));
    }

    #[test]
    fn faulty_stream_partial_frame_ends_with_clean_eof() {
        use std::io::Read;
        let payload = vec![9u8; 4096];
        let mut s = FaultyStream::new(
            &payload[..],
            &StreamFaultConfig {
                seed: 3,
                rate: 1.0,
                kinds: vec![StreamFaultKind::PartialFrame],
                mean_fault_position: 100,
            },
        );
        let mut out = Vec::new();
        let mut buf = [0u8; 512];
        loop {
            match s.read(&mut buf).expect("partial frame never errors") {
                0 => break,
                n => out.extend_from_slice(&buf[..n]),
            }
        }
        assert!(!out.is_empty() && out.len() < payload.len());
        assert_eq!(s.fired, Some(StreamFaultKind::PartialFrame));
        assert_eq!(s.delivered(), out.len() as u64);
    }

    #[test]
    fn faulty_stream_zero_rate_is_transparent() {
        use std::io::Read;
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut s = FaultyStream::new(
            &payload[..],
            &StreamFaultConfig {
                rate: 0.0,
                ..StreamFaultConfig::default()
            },
        );
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(s.fired, None);
    }

    #[test]
    fn empty_and_unframeable_inputs_pass_through() {
        let (out, log) = corrupt_stream(&[], 1, 0.5);
        assert!(out.is_empty() && log.count() == 0);
        let junk = vec![1, 2, 3, 4, 5];
        let (out, log) = corrupt_stream(&junk, 1, 0.5);
        assert_eq!(out, junk);
        assert_eq!(log.count(), 0);
    }
}
