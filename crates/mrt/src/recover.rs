//! A resynchronizing MRT reader with bounded degradation.
//!
//! [`crate::MrtReader`] treats any framing damage — truncation, a corrupted
//! length field, garbage between records — as fatal, because the byte
//! position of the next record is lost. Deployed pipelines cannot afford
//! that: one flipped bit early in a multi-gigabyte RouteViews file would
//! discard the rest. [`RecoveringReader`] instead *scans forward* for the
//! next plausible record header (bounded by
//! [`RecoverConfig::max_resync_scan`]), counts everything it had to skip,
//! and keeps going, under a configurable error budget.
//!
//! Every decode failure is still surfaced through the iterator so callers
//! can log it; the difference from the plain reader is that iteration
//! continues afterwards. The final [`IngestReport`] accounts for every byte:
//! `bytes_ok + bytes_skipped == bytes_read` always holds, so "how much of
//! this archive did we actually use?" has an exact answer.

use std::io::Read;

use serde::{Deserialize, Serialize};

use crate::error::{MrtError, MrtErrorKind};
use crate::records::{self, TimestampedRecord};

/// Knobs for [`RecoveringReader`].
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Stop (with [`MrtError::BudgetExceeded`]) after this many decode
    /// errors. `None` means unlimited: degrade, count, continue.
    pub max_errors: Option<u64>,
    /// A header length field above this is treated as framing damage rather
    /// than an instruction to swallow that many bytes.
    pub max_record_len: usize,
    /// How far past a framing error to scan for the next plausible header
    /// before giving up on the stream.
    pub max_resync_scan: usize,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            max_errors: None,
            max_record_len: 1 << 20,
            max_resync_scan: 4 << 20,
        }
    }
}

/// Per-[`MrtErrorKind`] decode-error counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorCounters {
    /// I/O failures from the underlying stream.
    pub io: u64,
    /// Records cut short (EOF or corrupted length field).
    pub truncated: u64,
    /// Well-framed but semantically invalid bytes, including implausible
    /// header length fields.
    pub malformed: u64,
    /// Unknown record/message/attribute types.
    pub unsupported: u64,
    /// Values too large for their wire field.
    pub too_long: u64,
    /// Error-budget aborts (0 or 1).
    pub budget_exceeded: u64,
}

impl ErrorCounters {
    /// Count one error.
    pub fn bump(&mut self, e: &MrtError) {
        match e.kind() {
            MrtErrorKind::Io => self.io += 1,
            MrtErrorKind::Truncated => self.truncated += 1,
            MrtErrorKind::Malformed => self.malformed += 1,
            MrtErrorKind::Unsupported => self.unsupported += 1,
            MrtErrorKind::TooLong => self.too_long += 1,
            MrtErrorKind::BudgetExceeded => self.budget_exceeded += 1,
        }
    }

    /// Decode errors charged against the error budget (everything except
    /// the budget marker itself).
    pub fn decode_errors(&self) -> u64 {
        self.io + self.truncated + self.malformed + self.unsupported + self.too_long
    }

    /// Whether nothing went wrong.
    pub fn is_clean(&self) -> bool {
        self.decode_errors() == 0 && self.budget_exceeded == 0
    }

    /// Add another set of counters (multi-file ingests).
    pub fn merge(&mut self, other: &ErrorCounters) {
        self.io += other.io;
        self.truncated += other.truncated;
        self.malformed += other.malformed;
        self.unsupported += other.unsupported;
        self.too_long += other.too_long;
        self.budget_exceeded += other.budget_exceeded;
    }
}

/// Structured account of one (or several merged) resilient ingest runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Records successfully decoded.
    pub records_read: u64,
    /// Well-framed records whose bodies could not be decoded.
    pub records_skipped: u64,
    /// Records cut short by end-of-stream or a corrupted length field.
    pub records_truncated: u64,
    /// Bytes of successfully decoded records.
    pub bytes_ok: u64,
    /// Bytes discarded: failed records, resync scans, unframeable tails.
    pub bytes_skipped: u64,
    /// Total bytes consumed from the stream; always `bytes_ok +
    /// bytes_skipped`.
    pub bytes_read: u64,
    /// Times the reader lost framing and had to scan for the next header.
    pub resync_events: u64,
    /// Decode-error counts by kind.
    pub errors: ErrorCounters,
    /// Transient I/O failures absorbed by the retry layer (open + read).
    /// Data is complete despite a nonzero count — this is a storage-health
    /// signal, not a data-loss signal.
    pub retries: u64,
    /// Worker panics captured by the supervision layer (each one is a file
    /// that contributed nothing and carries an `aborted` reason).
    pub panicked: u64,
    /// Set when the input file could not be opened at all (after retries),
    /// with the error string — distinguishing "open failed" from "file
    /// decoded empty", which both yield zero observations.
    pub open_failed: Option<String>,
    /// Set when ingestion stopped before end-of-stream, with the reason.
    pub aborted: Option<String>,
    /// Shards that exhausted their retry budget in a supervised sharded
    /// run and were dropped under `--allow-shard-failures`. Zero for
    /// single-process runs.
    #[serde(default)]
    pub shards_failed: u64,
    /// Input files whose observations are missing from the merged result
    /// because their shard permanently failed.
    #[serde(default)]
    pub files_lost: u64,
    /// On-disk bytes of the lost input files — the exact coverage
    /// shortfall of a degraded sharded run.
    #[serde(default)]
    pub bytes_lost: u64,
    /// Readahead blocks consumed from the prefetch thread. Deterministic
    /// for a given input (blocks are filled completely regardless of how
    /// the underlying reader chunks its reads); zero when the read path
    /// had no readahead stage.
    #[serde(default)]
    pub readahead_blocks: u64,
    /// High-water footprint in bytes of the view decoder's scratch arena —
    /// the *entire* per-stream heap of the zero-copy decode path. Zero for
    /// owned-decode reads.
    #[serde(default)]
    pub arena_bytes: u64,
}

impl IngestReport {
    /// Fold another report into this one (e.g. one per input file).
    pub fn merge(&mut self, other: &IngestReport) {
        self.records_read += other.records_read;
        self.records_skipped += other.records_skipped;
        self.records_truncated += other.records_truncated;
        self.bytes_ok += other.bytes_ok;
        self.bytes_skipped += other.bytes_skipped;
        self.bytes_read += other.bytes_read;
        self.resync_events += other.resync_events;
        self.errors.merge(&other.errors);
        self.retries += other.retries;
        self.panicked += other.panicked;
        if self.open_failed.is_none() {
            self.open_failed = other.open_failed.clone();
        }
        if self.aborted.is_none() {
            self.aborted = other.aborted.clone();
        }
        self.shards_failed += other.shards_failed;
        self.files_lost += other.files_lost;
        self.bytes_lost += other.bytes_lost;
        self.readahead_blocks += other.readahead_blocks;
        self.arena_bytes += other.arena_bytes;
    }

    /// Whether the stream decoded without a single problem.
    pub fn is_clean(&self) -> bool {
        self.errors.is_clean() && self.aborted.is_none() && self.shards_failed == 0
    }

    /// Record this report under the `ingest/` metric namespace —
    /// counters, plus gauges for the two report-level failure markers.
    /// Every field lands in the snapshot, so degradation previously only
    /// reachable via `--report` (retries, injected faults, resyncs) shows
    /// up in `--metrics-out` too.
    pub fn record_metrics(&self, metrics: &bgp_types::MetricsRegistry) {
        metrics
            .counter("ingest/records_read")
            .add(self.records_read);
        metrics
            .counter("ingest/records_skipped")
            .add(self.records_skipped);
        metrics
            .counter("ingest/records_truncated")
            .add(self.records_truncated);
        metrics.counter("ingest/bytes_ok").add(self.bytes_ok);
        metrics
            .counter("ingest/bytes_skipped")
            .add(self.bytes_skipped);
        metrics.counter("ingest/bytes_read").add(self.bytes_read);
        metrics
            .counter("ingest/resync_events")
            .add(self.resync_events);
        metrics.counter("ingest/retries").add(self.retries);
        metrics.counter("ingest/worker_panics").add(self.panicked);
        metrics.counter("ingest/errors/io").add(self.errors.io);
        metrics
            .counter("ingest/errors/truncated")
            .add(self.errors.truncated);
        metrics
            .counter("ingest/errors/malformed")
            .add(self.errors.malformed);
        metrics
            .counter("ingest/errors/unsupported")
            .add(self.errors.unsupported);
        metrics
            .counter("ingest/errors/too_long")
            .add(self.errors.too_long);
        metrics
            .counter("ingest/errors/budget_exceeded")
            .add(self.errors.budget_exceeded);
        metrics
            .counter("ingest/shards_failed")
            .add(self.shards_failed);
        metrics.counter("ingest/files_lost").add(self.files_lost);
        metrics.counter("ingest/bytes_lost").add(self.bytes_lost);
        metrics
            .counter("ingest/readahead_blocks")
            .add(self.readahead_blocks);
        metrics.counter("ingest/arena_bytes").add(self.arena_bytes);
        metrics
            .gauge("ingest/open_failed")
            .set(i64::from(self.open_failed.is_some()));
        metrics
            .gauge("ingest/aborted")
            .set(i64::from(self.aborted.is_some()));
    }

    /// One-line human summary, for CLI output and logs.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} records decoded, {} skipped, {} truncated; {} resync(s), {}/{} bytes used",
            self.records_read,
            self.records_skipped,
            self.records_truncated,
            self.resync_events,
            self.bytes_ok,
            self.bytes_read,
        );
        if self.retries > 0 {
            out.push_str(&format!("; {} I/O retry(s)", self.retries));
        }
        if self.panicked > 0 {
            out.push_str(&format!("; {} worker panic(s)", self.panicked));
        }
        if let Some(why) = &self.open_failed {
            out.push_str(&format!("; open failed: {why}"));
        }
        if let Some(why) = &self.aborted {
            out.push_str(&format!("; aborted: {why}"));
        }
        if self.shards_failed > 0 {
            out.push_str(&format!(
                "; {} shard(s) failed permanently ({} file(s), {} byte(s) not covered)",
                self.shards_failed, self.files_lost, self.bytes_lost
            ));
        }
        out
    }
}

/// Does this 12-byte window look like the start of an MRT record?
///
/// Checks a known type, a subtype in that type's defined range, and a sane
/// length. Random bytes pass with probability ≈ `3/65536 × subtypes/65536`,
/// so a resync scan essentially never locks onto garbage.
fn plausible_header(window: &[u8], max_record_len: usize) -> bool {
    debug_assert!(window.len() >= 12);
    let mrt_type = u16::from_be_bytes([window[4], window[5]]);
    let subtype = u16::from_be_bytes([window[6], window[7]]);
    let length = u32::from_be_bytes([window[8], window[9], window[10], window[11]]) as usize;
    if length > max_record_len {
        return false;
    }
    match mrt_type {
        records::TYPE_TABLE_DUMP => (1..=2).contains(&subtype),
        records::TYPE_TABLE_DUMP_V2 => (1..=6).contains(&subtype),
        records::TYPE_BGP4MP => subtype <= 7,
        _ => false,
    }
}

/// Streaming MRT reader that survives framing damage.
///
/// Yields the same items as [`crate::MrtReader`] — decoded records and
/// per-record errors — but instead of fusing on truncation or corrupted
/// framing it resynchronizes and continues. Obtain the accounting with
/// [`RecoveringReader::report`] once iteration ends.
#[derive(Debug)]
pub struct RecoveringReader<R> {
    inner: R,
    cfg: RecoverConfig,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    fused: bool,
    budget_pending: bool,
    report: IngestReport,
}

const FILL_CHUNK: usize = 64 * 1024;
const COMPACT_THRESHOLD: usize = 256 * 1024;

impl<R: Read> RecoveringReader<R> {
    /// Wrap an input stream with the given recovery policy.
    pub fn with_config(inner: R, cfg: RecoverConfig) -> Self {
        RecoveringReader {
            inner,
            cfg,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            fused: false,
            budget_pending: false,
            report: IngestReport::default(),
        }
    }

    /// Wrap an input stream with [`RecoverConfig::default`].
    pub fn new(inner: R) -> Self {
        Self::with_config(inner, RecoverConfig::default())
    }

    /// The accounting so far (final once iteration returns `None`).
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Consume the reader, returning the final report.
    pub fn into_report(self) -> IngestReport {
        self.report
    }

    /// Bytes read from the input but not yet consumed by decoding — the
    /// lookahead tail sitting in the internal buffer. Streaming consumers
    /// subtract this from `report().bytes_read` to get a frame-aligned
    /// resume position: everything before it has been decoded (or skipped
    /// by resync) and folded, everything after it has not.
    pub fn buffered(&self) -> usize {
        self.available()
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Ensure at least `want` bytes are buffered past `pos`, or `eof` is
    /// set. Counts every byte pulled from the stream into `bytes_read`.
    fn fill(&mut self, want: usize) -> Result<(), MrtError> {
        if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        while !self.eof && self.available() < want {
            let old_len = self.buf.len();
            self.buf.resize(old_len + FILL_CHUNK, 0);
            match self.inner.read(&mut self.buf[old_len..]) {
                Ok(0) => {
                    self.buf.truncate(old_len);
                    self.eof = true;
                }
                Ok(n) => {
                    self.buf.truncate(old_len + n);
                    self.report.bytes_read += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old_len);
                }
                Err(e) => {
                    self.buf.truncate(old_len);
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Count `e`, arm the budget trip-wire if it pushed us over, and hand
    /// the error back for yielding.
    fn emit(&mut self, e: MrtError) -> MrtError {
        self.report.errors.bump(&e);
        if let Some(limit) = self.cfg.max_errors {
            if self.report.errors.decode_errors() > limit {
                self.budget_pending = true;
            }
        }
        e
    }

    /// Discard everything still buffered, attributing it to `bytes_skipped`.
    fn drain_rest(&mut self) {
        self.report.bytes_skipped += self.available() as u64;
        self.pos = self.buf.len();
    }

    /// Scan forward (from one byte past the current position) for the next
    /// plausible record header, within the configured bound. Updates
    /// position and skip/resync accounting; fuses the reader if the scan
    /// limit is exhausted before plausible bytes or EOF.
    fn resync(&mut self) {
        // `fill` may compact the buffer (moving `pos`), so scan with an
        // offset relative to `pos`, never an absolute index.
        let mut off = 1usize;
        loop {
            if off > self.cfg.max_resync_scan {
                self.report.bytes_skipped += off as u64;
                self.pos += off;
                self.report.aborted = Some(format!(
                    "resync scan exceeded {} bytes",
                    self.cfg.max_resync_scan
                ));
                self.fused = true;
                return;
            }
            if self.available() < off + 12
                && (self.fill(off + 12).is_err() || self.available() < off + 12)
            {
                // EOF (or I/O death) before another full header fits:
                // nothing left to resync onto.
                self.drain_rest();
                return;
            }
            let q = self.pos + off;
            if plausible_header(&self.buf[q..q + 12], self.cfg.max_record_len) {
                self.report.resync_events += 1;
                self.report.bytes_skipped += off as u64;
                self.pos = q;
                return;
            }
            off += 1;
        }
    }

    /// After a failed body decode, decide whether the record's claimed frame
    /// can be trusted: the bytes right after it must look like another
    /// record header, or be exactly end-of-stream.
    fn frame_end_plausible(&mut self, total: usize) -> bool {
        if self.fill(total + 12).is_err() {
            return false;
        }
        if self.available() == total && self.eof {
            return true; // frame ends exactly at EOF
        }
        if self.available() < total + 12 {
            return false; // partial garbage tail follows
        }
        let q = self.pos + total;
        plausible_header(&self.buf[q..q + 12], self.cfg.max_record_len)
    }

    fn io_fatal(&mut self, e: MrtError) -> MrtError {
        self.drain_rest();
        self.report.aborted = Some(format!("I/O error: {e}"));
        self.fused = true;
        self.emit(e)
    }

    fn next_item(&mut self) -> Option<Result<TimestampedRecord, MrtError>> {
        self.process_next(|timestamp, mrt_type, subtype, body| {
            records::decode_body(mrt_type, subtype, body)
                .map(|record| TimestampedRecord { timestamp, record })
        })
    }

    /// Advance to the next record and hand its framed body to `decode`.
    ///
    /// This is the framing loop shared by the owned and borrowed-view
    /// decode paths: header parsing, truncation handling, resync, the
    /// error budget, and the byte ledger are identical no matter what
    /// `decode` does with the body — so the zero-copy path inherits fault
    /// recovery by construction rather than by reimplementation. The
    /// closure sees `(timestamp, mrt_type, subtype, body)`; an `Err` from
    /// it receives exactly the skip-or-resync treatment a failed
    /// [`records::decode_body`] would.
    ///
    /// Note the body slice is assembled in this reader's own buffer, so a
    /// record that straddles readahead (or any upstream) block boundaries
    /// always reaches `decode` contiguous and complete.
    pub fn process_next<T>(
        &mut self,
        decode: impl FnOnce(u32, u16, u16, &[u8]) -> Result<T, MrtError>,
    ) -> Option<Result<T, MrtError>> {
        if self.fused {
            return None;
        }
        if self.budget_pending {
            self.budget_pending = false;
            self.fused = true;
            let limit = self.cfg.max_errors.unwrap_or(0);
            self.drain_rest();
            self.report.aborted = Some(format!("error budget of {limit} exceeded"));
            let e = MrtError::BudgetExceeded { limit };
            self.report.errors.bump(&e);
            return Some(Err(e));
        }

        if let Err(e) = self.fill(12) {
            return Some(Err(self.io_fatal(e)));
        }
        let avail = self.available();
        if avail == 0 {
            self.fused = true;
            return None;
        }
        if avail < 12 {
            // EOF inside a header: unrecoverable by definition (no more
            // bytes will ever arrive), but counted precisely.
            self.report.records_truncated += 1;
            let e = MrtError::Truncated {
                context: "MRT header",
                needed: 12 - avail,
            };
            self.drain_rest();
            return Some(Err(self.emit(e)));
        }

        let h = &self.buf[self.pos..self.pos + 12];
        let timestamp = u32::from_be_bytes([h[0], h[1], h[2], h[3]]);
        let mrt_type = u16::from_be_bytes([h[4], h[5]]);
        let subtype = u16::from_be_bytes([h[6], h[7]]);
        let length = u32::from_be_bytes([h[8], h[9], h[10], h[11]]) as usize;

        if length > self.cfg.max_record_len {
            let e = MrtError::malformed(
                "MRT header",
                format!(
                    "implausible record length {length} (cap {})",
                    self.cfg.max_record_len
                ),
            );
            self.resync();
            return Some(Err(self.emit(e)));
        }

        let total = 12 + length;
        if let Err(e) = self.fill(total) {
            return Some(Err(self.io_fatal(e)));
        }
        if self.available() < total {
            // The length field points past EOF: either a genuinely
            // truncated tail or a corrupted length. Resync in what's left —
            // real records may well follow.
            let e = MrtError::Truncated {
                context: "MRT record body",
                needed: total - self.available(),
            };
            self.report.records_truncated += 1;
            self.resync();
            return Some(Err(self.emit(e)));
        }

        let body = &self.buf[self.pos + 12..self.pos + total];
        match decode(timestamp, mrt_type, subtype, body) {
            Ok(value) => {
                self.report.records_read += 1;
                self.report.bytes_ok += total as u64;
                self.pos += total;
                Some(Ok(value))
            }
            Err(e) => {
                // A failed body is only skippable if its claimed frame is
                // believable; otherwise the length field itself is suspect
                // and forward-scanning beats trusting it.
                if self.frame_end_plausible(total) {
                    self.report.records_skipped += 1;
                    self.report.bytes_skipped += total as u64;
                    self.pos += total;
                } else {
                    self.resync();
                }
                Some(Err(self.emit(e)))
            }
        }
    }
}

impl<R: Read> Iterator for RecoveringReader<R> {
    type Item = Result<TimestampedRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_item()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{corrupt_stream, FaultConfig, FaultInjector, FaultKind};
    use crate::records::{Bgp4mpStateChange, BgpState, MrtRecord};
    use crate::writer::MrtWriter;
    use bgp_types::Asn;
    use std::net::IpAddr;

    fn state_change() -> MrtRecord {
        MrtRecord::StateChange(Bgp4mpStateChange {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: IpAddr::from([192, 0, 2, 1]),
            old_state: BgpState::Idle,
            new_state: BgpState::Established,
        })
    }

    fn clean_stream(n: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for ts in 0..n {
            w.write_record(ts, &state_change()).unwrap();
        }
        buf
    }

    #[test]
    fn clean_stream_matches_plain_reader() {
        let buf = clean_stream(25);
        let mut r = RecoveringReader::new(&buf[..]);
        let recs: Vec<u32> = r.by_ref().map(|x| x.unwrap().timestamp).collect();
        assert_eq!(recs, (0..25).collect::<Vec<_>>());
        let report = r.into_report();
        assert!(report.is_clean());
        assert_eq!(report.records_read, 25);
        assert_eq!(report.bytes_ok, buf.len() as u64);
        assert_eq!(report.bytes_read, buf.len() as u64);
        assert_eq!(report.bytes_skipped, 0);
        assert_eq!(report.resync_events, 0);
    }

    #[test]
    fn resyncs_past_interleaved_garbage() {
        let mut buf = clean_stream(3);
        let one = clean_stream(1);
        // Garbage that cannot be mistaken for a header, then a real record.
        buf.extend_from_slice(&[0xFF; 37]);
        buf.extend_from_slice(&one);
        let mut r = RecoveringReader::new(&buf[..]);
        let decoded = r.by_ref().filter(|x| x.is_ok()).count();
        assert_eq!(decoded, 4, "all real records recovered");
        let report = r.report();
        assert_eq!(report.resync_events, 1);
        assert_eq!(report.bytes_skipped, 37);
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
    }

    #[test]
    fn recovers_after_mid_record_truncation() {
        let first = clean_stream(1);
        let mut buf = first[..first.len() - 7].to_vec(); // cut record 0 short
        buf.extend_from_slice(&clean_stream(2));
        let mut r = RecoveringReader::new(&buf[..]);
        let results: Vec<bool> = r.by_ref().map(|x| x.is_ok()).collect();
        // One framing error surfaced, both following records recovered.
        assert_eq!(results.iter().filter(|ok| **ok).count(), 2);
        assert!(r.report().resync_events >= 1);
        assert_eq!(r.report().records_read, 2);
    }

    #[test]
    fn truncated_tail_is_counted_not_fatal_looping() {
        let mut buf = clean_stream(2);
        buf.truncate(buf.len() - 3);
        let mut r = RecoveringReader::new(&buf[..]);
        let oks = r.by_ref().filter(|x| x.is_ok()).count();
        assert_eq!(oks, 1);
        let report = r.report();
        assert_eq!(report.records_truncated, 1);
        assert_eq!(report.errors.truncated, 1);
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
    }

    #[test]
    fn error_budget_stops_the_stream() {
        let clean = clean_stream(50);
        let inj = FaultInjector::new(FaultConfig {
            seed: 5,
            rate: 0.5,
            kinds: vec![FaultKind::UnknownType],
        });
        let (corrupted, log) = inj.corrupt(&clean);
        assert_eq!(log.count(), 25);
        let mut r = RecoveringReader::with_config(
            &corrupted[..],
            RecoverConfig {
                max_errors: Some(3),
                ..RecoverConfig::default()
            },
        );
        let mut saw_budget = false;
        for item in r.by_ref() {
            if matches!(item, Err(MrtError::BudgetExceeded { limit: 3 })) {
                saw_budget = true;
            }
        }
        assert!(saw_budget);
        let report = r.into_report();
        assert_eq!(report.errors.budget_exceeded, 1);
        assert_eq!(report.errors.unsupported, 4); // limit + the one that tripped it
        assert!(report.aborted.is_some());
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
    }

    #[test]
    fn oversized_length_field_does_not_swallow_the_stream() {
        let mut buf = clean_stream(5);
        // Inflate record 2's length field by 20 bytes: its "body" now eats
        // record 3's header, and decode (or framing) must recover record 4.
        let rec_len = clean_stream(1).len();
        let at = 2 * rec_len + 8;
        let body_len = (rec_len - 12) as u32;
        buf[at..at + 4].copy_from_slice(&(body_len + 20).to_be_bytes());
        let mut r = RecoveringReader::new(&buf[..]);
        let oks: Vec<u32> = r
            .by_ref()
            .filter_map(|x| x.ok().map(|t| t.timestamp))
            .collect();
        assert!(
            oks.len() >= 3,
            "records before and after the damage must survive: {oks:?}"
        );
        assert!(oks.contains(&4), "resync must reach the last record");
        let report = r.report();
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
        assert!(report.resync_events >= 1);
    }

    #[test]
    fn every_fault_kind_terminates_and_accounts_bytes() {
        let clean = clean_stream(60);
        for (i, &kind) in crate::faults::ALL_FAULT_KINDS.iter().enumerate() {
            let inj = FaultInjector::new(FaultConfig {
                seed: 100 + i as u64,
                rate: 0.3,
                kinds: vec![kind],
            });
            let (corrupted, _) = inj.corrupt(&clean);
            let mut r = RecoveringReader::new(&corrupted[..]);
            let mut items = 0u64;
            for _ in r.by_ref() {
                items += 1;
                assert!(items < 100_000, "{kind:?}: runaway iteration");
            }
            let report = r.into_report();
            assert_eq!(
                report.bytes_ok + report.bytes_skipped,
                report.bytes_read,
                "{kind:?}: byte accounting must balance"
            );
            assert_eq!(report.bytes_read, corrupted.len() as u64, "{kind:?}");
            assert!(report.records_read > 0, "{kind:?}: most records survive");
        }
    }

    #[test]
    fn heavy_corruption_still_terminates() {
        let clean = clean_stream(40);
        let (corrupted, _) = corrupt_stream(&clean, 42, 1.0);
        let mut r = RecoveringReader::new(&corrupted[..]);
        let n = r.by_ref().count();
        assert!(n <= corrupted.len() + 1);
        let report = r.into_report();
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
    }

    #[test]
    fn report_merge_sums_counts() {
        let mut a = IngestReport {
            records_read: 3,
            bytes_ok: 100,
            bytes_read: 120,
            bytes_skipped: 20,
            ..IngestReport::default()
        };
        let b = IngestReport {
            records_read: 2,
            resync_events: 1,
            bytes_ok: 50,
            bytes_read: 60,
            bytes_skipped: 10,
            aborted: Some("x".into()),
            ..IngestReport::default()
        };
        a.merge(&b);
        assert_eq!(a.records_read, 5);
        assert_eq!(a.resync_events, 1);
        assert_eq!(a.bytes_read, 180);
        assert_eq!(a.aborted.as_deref(), Some("x"));
        assert!(a.summary().contains("5 records decoded"));
    }
}
