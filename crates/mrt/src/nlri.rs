//! NLRI (prefix) wire encoding, RFC 4271 §4.3.
//!
//! A prefix is encoded as one length byte (in bits) followed by the minimum
//! number of octets holding that many bits. Whether the bytes are IPv4 or
//! IPv6 is context the caller supplies (from the MRT subtype or the
//! MP_REACH AFI).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::BufMut;

use bgp_types::Prefix;

use crate::cursor::Cursor;
use crate::error::MrtError;

/// Address family identifiers (RFC 4760 / IANA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Afi {
    /// IPv4 (AFI 1).
    Ipv4,
    /// IPv6 (AFI 2).
    Ipv6,
}

impl Afi {
    /// IANA AFI number.
    pub const fn to_u16(self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }

    /// Decode an IANA AFI number.
    pub const fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(Afi::Ipv4),
            2 => Some(Afi::Ipv6),
            _ => None,
        }
    }

    /// The AFI of a prefix.
    pub fn of(prefix: &Prefix) -> Self {
        if prefix.is_ipv4() {
            Afi::Ipv4
        } else {
            Afi::Ipv6
        }
    }

    /// Maximum prefix length for this family.
    pub const fn max_len(self) -> u8 {
        match self {
            Afi::Ipv4 => 32,
            Afi::Ipv6 => 128,
        }
    }
}

/// Encode one prefix into `out`.
pub fn encode_prefix(out: &mut Vec<u8>, prefix: &Prefix) {
    out.put_u8(prefix.len());
    let nbytes = (prefix.len() as usize).div_ceil(8);
    match prefix.addr() {
        IpAddr::V4(a) => out.extend_from_slice(&a.octets()[..nbytes]),
        IpAddr::V6(a) => out.extend_from_slice(&a.octets()[..nbytes]),
    }
}

/// Decode one prefix of the given family from `cur`.
pub fn decode_prefix(cur: &mut Cursor<'_>, afi: Afi) -> Result<Prefix, MrtError> {
    let len = cur.u8("NLRI prefix length")?;
    if len > afi.max_len() {
        return Err(MrtError::malformed(
            "NLRI prefix length",
            format!("{len} bits exceeds {} for {afi:?}", afi.max_len()),
        ));
    }
    let nbytes = (len as usize).div_ceil(8);
    let raw = cur.take(nbytes, "NLRI prefix bytes")?;
    let addr = match afi {
        Afi::Ipv4 => {
            let mut o = [0u8; 4];
            o[..nbytes].copy_from_slice(raw);
            IpAddr::V4(Ipv4Addr::from(o))
        }
        Afi::Ipv6 => {
            let mut o = [0u8; 16];
            o[..nbytes].copy_from_slice(raw);
            IpAddr::V6(Ipv6Addr::from(o))
        }
    };
    // RFC 4271 requires trailing pad bits be ignored; Prefix::new masks them.
    Ok(Prefix::new(addr, len).expect("length validated above"))
}

/// Decode a run of prefixes filling the remainder of `cur` (the NLRI field
/// of an UPDATE, or an MP_REACH/MP_UNREACH body tail).
pub fn decode_prefix_run(cur: &mut Cursor<'_>, afi: Afi) -> Result<Vec<Prefix>, MrtError> {
    let mut prefixes = Vec::new();
    while !cur.is_empty() {
        prefixes.push(decode_prefix(cur, afi)?);
    }
    Ok(prefixes)
}

/// Encode an IP address as fixed-width bytes (for next-hops and peer
/// addresses, which are not length-prefixed).
pub fn encode_addr(out: &mut Vec<u8>, addr: IpAddr) {
    match addr {
        IpAddr::V4(a) => out.extend_from_slice(&a.octets()),
        IpAddr::V6(a) => out.extend_from_slice(&a.octets()),
    }
}

/// Decode a fixed-width IP address of the given family.
pub fn decode_addr(cur: &mut Cursor<'_>, afi: Afi) -> Result<IpAddr, MrtError> {
    match afi {
        Afi::Ipv4 => {
            let b = cur.take(4, "IPv4 address")?;
            Ok(IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
        }
        Afi::Ipv6 => {
            let b = cur.take(16, "IPv6 address")?;
            let mut o = [0u8; 16];
            o.copy_from_slice(b);
            Ok(IpAddr::V6(Ipv6Addr::from(o)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &str) -> Prefix {
        let prefix: Prefix = p.parse().unwrap();
        let mut buf = Vec::new();
        encode_prefix(&mut buf, &prefix);
        let mut cur = Cursor::new(&buf);
        let out = decode_prefix(&mut cur, Afi::of(&prefix)).unwrap();
        assert!(cur.is_empty());
        out
    }

    #[test]
    fn v4_roundtrips() {
        for p in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "192.0.2.0/24",
            "192.0.2.128/25",
            "198.51.100.7/32",
        ] {
            assert_eq!(roundtrip(p), p.parse::<Prefix>().unwrap());
        }
    }

    #[test]
    fn v6_roundtrips() {
        for p in [
            "::/0",
            "2001:db8::/32",
            "2001:db8:1234:5678::/64",
            "2001:db8::1/128",
        ] {
            assert_eq!(roundtrip(p), p.parse::<Prefix>().unwrap());
        }
    }

    #[test]
    fn minimal_byte_count() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let mut buf = Vec::new();
        encode_prefix(&mut buf, &p);
        assert_eq!(buf.len(), 1 + 3); // len byte + 3 prefix bytes

        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        buf.clear();
        encode_prefix(&mut buf, &p);
        assert_eq!(buf.len(), 1 + 1);

        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        buf.clear();
        encode_prefix(&mut buf, &p);
        assert_eq!(buf, vec![0]);
    }

    #[test]
    fn pad_bits_are_masked() {
        // /20 with nonzero bits in the pad portion of the third byte.
        let raw = [20u8, 192, 0, 0x2F];
        let mut cur = Cursor::new(&raw);
        let p = decode_prefix(&mut cur, Afi::Ipv4).unwrap();
        assert_eq!(p.to_string(), "192.0.32.0/20");
    }

    #[test]
    fn overlong_length_rejected() {
        let raw = [33u8, 0, 0, 0, 0];
        let mut cur = Cursor::new(&raw);
        assert!(matches!(
            decode_prefix(&mut cur, Afi::Ipv4),
            Err(MrtError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_prefix_bytes_rejected() {
        let raw = [24u8, 192, 0]; // promises 3 bytes, has 2
        let mut cur = Cursor::new(&raw);
        assert!(matches!(
            decode_prefix(&mut cur, Afi::Ipv4),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn prefix_run() {
        let a: Prefix = "192.0.2.0/24".parse().unwrap();
        let b: Prefix = "198.51.100.0/24".parse().unwrap();
        let mut buf = Vec::new();
        encode_prefix(&mut buf, &a);
        encode_prefix(&mut buf, &b);
        let mut cur = Cursor::new(&buf);
        assert_eq!(decode_prefix_run(&mut cur, Afi::Ipv4).unwrap(), vec![a, b]);
    }

    #[test]
    fn addr_roundtrip() {
        for (addr, afi) in [
            (IpAddr::from([203, 0, 113, 9]), Afi::Ipv4),
            ("2001:db8::9".parse::<IpAddr>().unwrap(), Afi::Ipv6),
        ] {
            let mut buf = Vec::new();
            encode_addr(&mut buf, addr);
            let mut cur = Cursor::new(&buf);
            assert_eq!(decode_addr(&mut cur, afi).unwrap(), addr);
        }
    }

    #[test]
    fn afi_numbers() {
        assert_eq!(Afi::Ipv4.to_u16(), 1);
        assert_eq!(Afi::Ipv6.to_u16(), 2);
        assert_eq!(Afi::from_u16(1), Some(Afi::Ipv4));
        assert_eq!(Afi::from_u16(2), Some(Afi::Ipv6));
        assert_eq!(Afi::from_u16(3), None);
    }
}
