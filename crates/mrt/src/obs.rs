//! Bridging [`Observation`]s and MRT files.
//!
//! The simulator serializes its collector state through these functions and
//! the analysis pipeline reads it back, so every experiment exercises the
//! full wire path (RIB dumps like RouteViews `rib.*.bz2` files, update
//! streams like `updates.*.bz2`).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bgp_types::par::{effective_threads, try_par_map_indexed};
use bgp_types::span;
use bgp_types::store::{ObservationSink, ObservationStore};
use bgp_types::{Asn, Observation, Prefix, RouteAttrs, Telemetry};

use crate::bgpmsg::BgpMessage;
use crate::error::MrtError;
use crate::faults::{FlakyConfig, FlakyReader};
use crate::readahead::Readahead;
use crate::reader::MrtReader;
use crate::records::{
    MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibSnapshot, TimestampedRecord,
};
use crate::recover::{IngestReport, RecoverConfig, RecoveringReader};
use crate::retry::{RetryPolicy, RetryingReader};
use crate::view::{EntryPolicy, RecordScratch};
use crate::writer::MrtWriter;

/// Synthesize a stable address for vantage point number `idx`.
fn vp_addr(idx: usize) -> Ipv4Addr {
    // 172.16.0.0/12 private space: room for ~1M vantage points.
    let n = idx as u32;
    Ipv4Addr::new(
        172,
        (16 + (n >> 16)) as u8,
        ((n >> 8) & 0xFF) as u8,
        (n & 0xFF) as u8,
    )
}

/// Write a `TABLE_DUMP_V2` RIB dump of the observations: one
/// `PEER_INDEX_TABLE` followed by one RIB record per prefix.
///
/// If several observations share a `(vantage point, prefix)` pair, the
/// latest by timestamp wins — exactly how a RIB snapshot collapses updates.
/// Returns the number of MRT records written.
pub fn write_rib_dump<W: Write>(
    out: W,
    timestamp: u32,
    observations: &[Observation],
) -> Result<u64, MrtError> {
    let mut vps: Vec<Asn> = observations.iter().map(|o| o.vp).collect();
    vps.sort_unstable();
    vps.dedup();
    let vp_index: BTreeMap<Asn, u16> = vps
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u16))
        .collect();

    let table = PeerIndexTable {
        collector_bgp_id: Ipv4Addr::new(192, 0, 2, 1),
        view_name: String::new(),
        peers: vps
            .iter()
            .enumerate()
            .map(|(i, &asn)| PeerEntry {
                bgp_id: vp_addr(i),
                addr: IpAddr::V4(vp_addr(i)),
                asn,
            })
            .collect(),
    };

    // Latest observation per (prefix, vp); BTreeMap gives deterministic
    // prefix order for the RIB records.
    let mut by_prefix: BTreeMap<Prefix, BTreeMap<u16, &Observation>> = BTreeMap::new();
    for obs in observations {
        let idx = vp_index[&obs.vp];
        let slot = by_prefix
            .entry(obs.prefix)
            .or_default()
            .entry(idx)
            .or_insert(obs);
        if obs.time >= slot.time {
            *slot = obs;
        }
    }

    let mut writer = MrtWriter::new(out);
    writer.write_record(timestamp, &MrtRecord::PeerIndexTable(table))?;
    for (sequence, (prefix, entries)) in by_prefix.into_iter().enumerate() {
        let rib = RibSnapshot {
            sequence: sequence as u32,
            prefix,
            entries: entries
                .into_iter()
                .map(|(peer_index, obs)| {
                    let mut route = RouteAttrs::originated(
                        obs.path.clone(),
                        IpAddr::V4(vp_addr(peer_index as usize)),
                    );
                    route.communities = obs.communities.clone();
                    route.large_communities = obs.large_communities.clone();
                    RibEntry {
                        peer_index,
                        originated_time: obs.time,
                        route,
                    }
                })
                .collect(),
        };
        writer.write_record(timestamp, &MrtRecord::Rib(rib))?;
    }
    writer.flush()?;
    Ok(writer.records_written())
}

/// Write a `BGP4MP` update stream: one UPDATE record per observation, in
/// input order (callers sort by time for realistic archives).
pub fn write_update_stream<W: Write>(
    out: W,
    collector_asn: Asn,
    observations: &[Observation],
) -> Result<u64, MrtError> {
    let mut vps: Vec<Asn> = observations.iter().map(|o| o.vp).collect();
    vps.sort_unstable();
    vps.dedup();
    let vp_index: BTreeMap<Asn, usize> = vps.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    let collector_addr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1));
    let mut writer = MrtWriter::new(out);
    for obs in observations {
        let mut route =
            RouteAttrs::originated(obs.path.clone(), IpAddr::V4(vp_addr(vp_index[&obs.vp])));
        route.communities = obs.communities.clone();
        route.large_communities = obs.large_communities.clone();
        writer.write_update(
            obs.time,
            obs.vp,
            collector_asn,
            IpAddr::V4(vp_addr(vp_index[&obs.vp])),
            collector_addr,
            &route,
            std::slice::from_ref(&obs.prefix),
            &[],
        )?;
    }
    writer.flush()?;
    Ok(writer.records_written())
}

/// Fold one decoded record into an [`ObservationSink`] — a plain
/// `Vec<Observation>` for the historical slice APIs, or a columnar
/// [`ObservationStore`] when ingestion feeds the analysis pipeline
/// directly (no intermediate vector of per-record heap graphs).
///
/// Returns the number of entries dropped under [`EntryPolicy::Skip`]; under
/// [`EntryPolicy::Abort`] the first invalid entry aborts with an error.
fn accumulate<S: ObservationSink>(
    rec: TimestampedRecord,
    peers: &mut Vec<PeerEntry>,
    sink: &mut S,
    policy: EntryPolicy,
) -> Result<u64, MrtError> {
    let mut dropped = 0u64;
    match rec.record {
        MrtRecord::PeerIndexTable(t) => *peers = t.peers,
        MrtRecord::Rib(rib) => {
            for entry in rib.entries {
                let peer = match peers.get(entry.peer_index as usize) {
                    Some(peer) => peer,
                    None if policy == EntryPolicy::Skip => {
                        dropped += 1;
                        continue;
                    }
                    None => {
                        return Err(MrtError::malformed(
                            "RIB entry",
                            format!("peer index {} out of range", entry.peer_index),
                        ))
                    }
                };
                sink.push_observation(Observation {
                    vp: peer.asn,
                    prefix: rib.prefix,
                    path: entry.route.as_path,
                    communities: entry.route.communities,
                    large_communities: entry.route.large_communities,
                    time: entry.originated_time,
                });
            }
        }
        MrtRecord::Message(m) => {
            if let BgpMessage::Update(u) = m.message {
                if let Some(attrs) = u.attrs {
                    for prefix in u.announced.iter().chain(attrs.mp_announced.iter()) {
                        sink.push_observation(Observation {
                            vp: m.peer_asn,
                            prefix: *prefix,
                            path: attrs.route.as_path.clone(),
                            communities: attrs.route.communities.clone(),
                            large_communities: attrs.route.large_communities.clone(),
                            time: rec.timestamp,
                        });
                    }
                }
            }
        }
        MrtRecord::TableDump(t) => {
            sink.push_observation(Observation {
                vp: t.peer_asn,
                prefix: t.prefix,
                path: t.route.as_path,
                communities: t.route.communities,
                large_communities: t.route.large_communities,
                time: t.originated_time,
            });
        }
        MrtRecord::StateChange(_) => {}
    }
    Ok(dropped)
}

/// Read observations back from an MRT stream containing RIB dumps and/or
/// update streams. Unsupported or malformed records are skipped (the
/// reader can continue past a well-framed body it cannot decode), matching
/// how measurement pipelines treat archives; I/O and truncation errors
/// still abort.
pub fn read_observations<R: Read>(input: R) -> Result<Vec<Observation>, MrtError> {
    let mut observations = Vec::new();
    read_observations_into(input, &mut observations)?;
    Ok(observations)
}

/// [`read_observations`] folding into any [`ObservationSink`] instead of
/// returning a fresh `Vec` — pass an [`ObservationStore`] to intern
/// straight off the wire.
pub fn read_observations_into<R: Read, S: ObservationSink>(
    input: R,
    sink: &mut S,
) -> Result<(), MrtError> {
    let mut peers: Vec<PeerEntry> = Vec::new();
    for item in MrtReader::new(input) {
        let rec = match item {
            Ok(rec) => rec,
            Err(e @ (MrtError::Io(_) | MrtError::Truncated { .. })) => return Err(e),
            Err(_) => continue, // skip undecodable record bodies
        };
        accumulate(rec, &mut peers, sink, EntryPolicy::Abort)?;
    }
    Ok(())
}

/// Strict ingestion: the first decode error of *any* kind — undecodable
/// body, unknown type, truncation, framing damage — aborts the read.
///
/// This is the fail-fast mode for pipelines that would rather stop than
/// silently analyze a partial archive; [`read_observations`] tolerates
/// record-local damage, [`read_observations_resilient`] tolerates framing
/// damage too.
pub fn read_observations_strict<R: Read>(input: R) -> Result<Vec<Observation>, MrtError> {
    let mut observations = Vec::new();
    read_observations_strict_hooked(input, &mut observations, None)?;
    Ok(observations)
}

/// [`read_observations_strict`] folding into any [`ObservationSink`].
pub fn read_observations_strict_into<R: Read, S: ObservationSink>(
    input: R,
    sink: &mut S,
) -> Result<(), MrtError> {
    read_observations_strict_hooked(input, sink, None)
}

/// [`read_observations_strict`] with the [`IngestTuning::panic_after_records`]
/// fault hook applied.
fn read_observations_strict_hooked<R: Read, S: ObservationSink>(
    input: R,
    sink: &mut S,
    panic_after: Option<u64>,
) -> Result<(), MrtError> {
    let mut peers: Vec<PeerEntry> = Vec::new();
    let mut decoded = 0u64;
    for item in MrtReader::new(input) {
        let rec = item?;
        decoded += 1;
        injected_panic_check(decoded, panic_after);
        accumulate(rec, &mut peers, sink, EntryPolicy::Abort)?;
    }
    Ok(())
}

/// Fire the deliberate [`IngestTuning::panic_after_records`] fault: panic
/// once `decoded` reaches the configured record count.
fn injected_panic_check(decoded: u64, panic_after: Option<u64>) {
    if let Some(n) = panic_after {
        if decoded >= n {
            panic!("injected fault: panic after {n} decoded records");
        }
    }
}

/// Resilient ingestion over [`RecoveringReader`]: survive framing damage,
/// truncation, and semantically invalid entries, returning whatever could
/// be decoded plus an exact [`IngestReport`] of everything that could not.
///
/// Never fails: I/O errors and an exhausted error budget stop the read
/// early but are reported through [`IngestReport::aborted`] rather than an
/// `Err`, so the caller always gets the salvaged observations. RIB entries
/// whose peer index falls outside the peer table are dropped individually
/// and counted under `errors.malformed` (their bytes stay in `bytes_ok`,
/// since the record frame itself decoded).
pub fn read_observations_resilient<R: Read>(
    input: R,
    cfg: &RecoverConfig,
) -> (Vec<Observation>, IngestReport) {
    let mut observations = Vec::new();
    let report = read_observations_resilient_hooked(input, cfg, &mut observations, None);
    (observations, report)
}

/// [`read_observations_resilient`] folding into any [`ObservationSink`];
/// returns the [`IngestReport`] (the salvaged observations are in the
/// sink).
pub fn read_observations_resilient_into<R: Read, S: ObservationSink>(
    input: R,
    cfg: &RecoverConfig,
    sink: &mut S,
) -> IngestReport {
    read_observations_resilient_hooked(input, cfg, sink, None)
}

/// [`read_observations_resilient`] with the
/// [`IngestTuning::panic_after_records`] fault hook applied.
///
/// This is the zero-copy hot path: record bodies are parsed in place into a
/// reusable [`RecordScratch`] arena and handed to the sink as borrowed
/// views — no owned record tree, no per-record heap allocation. The
/// [`read_observations_resilient_reference`] function keeps the owned fold
/// alive as the differential-testing oracle.
fn read_observations_resilient_hooked<R: Read, S: ObservationSink>(
    input: R,
    cfg: &RecoverConfig,
    sink: &mut S,
    panic_after: Option<u64>,
) -> IngestReport {
    let mut reader = RecoveringReader::with_config(input, cfg.clone());
    let mut peers: Vec<PeerEntry> = Vec::new();
    let mut scratch = RecordScratch::new();
    let mut dropped_entries = 0u64;
    let mut decoded = 0u64;
    // Err items need no handling here: they are already counted inside the
    // reader's report.
    while let Some(item) = reader
        .process_next(|ts, mrt_type, subtype, body| scratch.parse(ts, mrt_type, subtype, body))
    {
        if item.is_err() {
            continue;
        }
        decoded += 1;
        injected_panic_check(decoded, panic_after);
        dropped_entries += scratch
            .emit(&mut peers, sink, EntryPolicy::Skip)
            .expect("Skip policy never errors");
    }
    let mut report = reader.into_report();
    report.errors.malformed += dropped_entries;
    report.arena_bytes = scratch.arena_bytes();
    report
}

/// The owned-decode reference implementation of
/// [`read_observations_resilient`]: identical semantics, but every record is
/// materialized through [`crate::records::decode_body`] and folded from the
/// owned tree.
///
/// This exists as the oracle for the differential tests that pin the
/// zero-copy view decoder bit-identical to the owned path (same
/// observations, same [`IngestReport`] up to the view-only `arena_bytes`
/// field); production callers should use [`read_observations_resilient`].
pub fn read_observations_resilient_reference<R: Read, S: ObservationSink>(
    input: R,
    cfg: &RecoverConfig,
    sink: &mut S,
) -> IngestReport {
    let mut reader = RecoveringReader::with_config(input, cfg.clone());
    let mut peers: Vec<PeerEntry> = Vec::new();
    let mut dropped_entries = 0u64;
    for rec in reader.by_ref().flatten() {
        dropped_entries +=
            accumulate(rec, &mut peers, sink, EntryPolicy::Skip).expect("Skip policy never errors");
    }
    let mut report = reader.into_report();
    report.errors.malformed += dropped_entries;
    report
}

/// What [`StreamDecoder::next_record`] consumed from the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStep {
    /// A record decoded; its observations (possibly zero — peer-index
    /// tables and state changes carry none) were pushed into the sink.
    Record,
    /// A malformed or unframeable span was quarantined and skipped; the
    /// reader resynced past it. Accounted in the report's error counters.
    Skipped,
}

/// Incremental record-at-a-time decoding for stream consumers.
///
/// The batch entry points above drain their input to EOF before returning;
/// a daemon instead needs to fold observations *as records arrive* and to
/// know, at any record boundary, the exact byte position everything before
/// which has been folded — that position is what a crash-safe checkpoint
/// stores as its resume cursor. `StreamDecoder` wraps the same
/// [`RecoveringReader`] quarantine-and-resync loop and the same zero-copy
/// [`RecordScratch`] fold as [`read_observations_resilient`], exposed one
/// record at a time.
#[derive(Debug)]
pub struct StreamDecoder<R: Read> {
    reader: RecoveringReader<R>,
    peers: Vec<PeerEntry>,
    scratch: RecordScratch,
    dropped_entries: u64,
    records_decoded: u64,
}

impl<R: Read> StreamDecoder<R> {
    /// Wrap a byte stream with the given decode policy.
    pub fn new(input: R, cfg: RecoverConfig) -> Self {
        StreamDecoder {
            reader: RecoveringReader::with_config(input, cfg),
            peers: Vec::new(),
            scratch: RecordScratch::new(),
            dropped_entries: 0,
            records_decoded: 0,
        }
    }

    /// Decode the next record (or quarantine the next damaged span) into
    /// `sink`. Returns `None` at end of stream — clean EOF, a fatal I/O
    /// error, or an exhausted error budget (distinguished by the report).
    pub fn next_record<S: ObservationSink>(&mut self, sink: &mut S) -> Option<StreamStep> {
        let scratch = &mut self.scratch;
        let item = self.reader.process_next(|ts, mrt_type, subtype, body| {
            scratch.parse(ts, mrt_type, subtype, body)
        })?;
        if item.is_err() {
            return Some(StreamStep::Skipped);
        }
        self.records_decoded += 1;
        self.dropped_entries += self
            .scratch
            .emit(&mut self.peers, sink, EntryPolicy::Skip)
            .expect("Skip policy never errors");
        Some(StreamStep::Record)
    }

    /// Records decoded so far.
    pub fn records_decoded(&self) -> u64 {
        self.records_decoded
    }

    /// The frame-aligned resume position: every byte before it has been
    /// decoded (or skipped by resync) and delivered to the sink; every byte
    /// after it is still lookahead. Checkpoints store this as the stream
    /// cursor.
    pub fn consumed_bytes(&self) -> u64 {
        self.reader.report().bytes_read - self.reader.buffered() as u64
    }

    /// The accounting so far, with entry-level drops folded in the same way
    /// the batch paths do.
    pub fn report(&self) -> IngestReport {
        let mut report = self.reader.report().clone();
        report.errors.malformed += self.dropped_entries;
        report.arena_bytes = self.scratch.arena_bytes();
        report
    }

    /// Consume the decoder, returning the final report.
    pub fn into_report(self) -> IngestReport {
        let mut report = self.reader.into_report();
        report.errors.malformed += self.dropped_entries;
        report.arena_bytes = self.scratch.arena_bytes();
        report
    }
}

/// Per-file outcome of [`read_observations_parallel`].
#[derive(Debug, Clone)]
pub struct FileIngest {
    /// The input file.
    pub path: PathBuf,
    /// Observations salvaged from this file.
    pub observations: Vec<Observation>,
    /// This file's ingest accounting. A file that could not even be opened
    /// shows up as an aborted, zero-byte report (the ledger still
    /// balances: `0 + 0 == 0`), never as a panic or a lost slot.
    pub report: IngestReport,
}

/// Supervision knobs for the parallel ingestion paths, beyond the decode
/// policy in [`RecoverConfig`]: how hard to retry transient I/O, and an
/// optional delivery-fault injector for tests.
#[derive(Debug, Clone, Default)]
pub struct IngestTuning {
    /// Retry policy applied to file open and every read.
    pub retry: RetryPolicy,
    /// Fault injection: wrap every file's byte stream in a seeded
    /// [`FlakyReader`] (the per-file seed is `cfg.seed + file index`, so
    /// schedules decorrelate across files). Test-only; `None` in
    /// production.
    pub flaky: Option<FlakyConfig>,
    /// Fault injection: panic (deliberately) inside the worker once this
    /// many records have decoded in one file, simulating a decoder bug
    /// mid-stream so supervision tests can prove one poisoned worker
    /// cannot abort a whole run. `None` (the default, and the only sane
    /// production value) never panics.
    pub panic_after_records: Option<u64>,
}

/// Open `path` under the retry policy and stack the supervised read chain:
/// `File → BufReader → [FlakyReader] → RetryingReader → Readahead`.
///
/// The retrying reader runs on the readahead producer thread, so transient
/// faults are absorbed (and counted into the shared `retries` counter)
/// while the decode thread keeps draining already-fetched blocks; `blocks`
/// counts delivered readahead blocks for the ingest report.
fn open_supervised(
    path: &Path,
    index: usize,
    tuning: &IngestTuning,
    retries: &Arc<AtomicU64>,
    blocks: &Arc<AtomicU64>,
) -> std::io::Result<Readahead> {
    let file = tuning.retry.run(retries, || File::open(path))?;
    let base: Box<dyn Read + Send> = match &tuning.flaky {
        Some(cfg) => Box::new(FlakyReader::new(
            BufReader::new(file),
            cfg.reseeded(cfg.seed.wrapping_add(index as u64)),
        )),
        None => Box::new(BufReader::new(file)),
    };
    let retrying = RetryingReader::new(base, tuning.retry.clone(), retries.clone());
    Ok(Readahead::new(retrying, blocks.clone()))
}

/// The [`IngestReport`] for a file that produced nothing, with the failure
/// accounted: `why` lands in `aborted`, and the dedicated counters record
/// whether it was an open failure or a captured worker panic.
fn failed_report(why: String, open_error: Option<String>, panic: bool) -> IngestReport {
    let mut report = IngestReport::default();
    if open_error.is_some() {
        report.errors.io = 1;
    }
    report.open_failed = open_error;
    report.panicked = u64::from(panic);
    report.aborted = Some(why);
    report
}

/// Resilient ingestion over many MRT files at once: each file is decoded
/// sequentially (MRT framing is a byte stream; records cannot be split
/// mid-file) but files fan out across `threads` workers (`0` = one per
/// CPU).
///
/// Returns one [`FileIngest`] per input path *in input order* regardless of
/// scheduling, plus the merged [`IngestReport`] (merged in input order, so
/// its `aborted` reason comes from the earliest aborted file). Each file is
/// read with [`read_observations_resilient`] semantics under supervision:
/// transient open/read failures are retried with deterministic backoff
/// (counted in `retries`), a file that cannot be opened after retries is
/// reported as `open_failed`, and a worker panic is captured and reported
/// as a failed file (`panicked`) instead of aborting the process. This
/// never fails; concatenating the per-file observations in order yields
/// exactly what a sequential loop over the files would produce.
pub fn read_observations_parallel_with(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    tuning: &IngestTuning,
    threads: usize,
) -> (Vec<FileIngest>, IngestReport) {
    let (files, merged) = read_files_parallel_into::<Vec<Observation>>(
        paths,
        cfg,
        tuning,
        threads,
        &Telemetry::disabled(),
    );
    let files = files
        .into_iter()
        .map(|(path, observations, report)| FileIngest {
            path,
            observations,
            report,
        })
        .collect();
    (files, merged)
}

/// The supervised fan-out shared by the `Vec<Observation>` and
/// [`ObservationStore`] parallel readers: one sink of type `S` per file,
/// filled with [`read_observations_resilient`] semantics, slots returned
/// in input order with open failures and captured worker panics reported
/// as failed (empty-sink) files.
fn read_files_parallel_into<S: ObservationSink + Default + Send>(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    tuning: &IngestTuning,
    threads: usize,
    tel: &Telemetry,
) -> (Vec<(PathBuf, S, IngestReport)>, IngestReport) {
    let threads = effective_threads(threads);
    let slots = try_par_map_indexed(paths.len(), threads, |i| {
        let path = paths[i].clone();
        let retries = Arc::new(AtomicU64::new(0));
        let blocks = Arc::new(AtomicU64::new(0));
        match open_supervised(&path, i, tuning, &retries, &blocks) {
            Ok(reader) => {
                let mut span = span!(tel.tracer, "ingest/file", file = path.display());
                let mut sink = S::default();
                let mut report = read_observations_resilient_hooked(
                    reader,
                    cfg,
                    &mut sink,
                    tuning.panic_after_records,
                );
                report.retries += retries.load(Ordering::Relaxed);
                report.readahead_blocks += blocks.load(Ordering::Relaxed);
                if span.enabled() {
                    span.set("observations", &sink.observation_count());
                    span.set("bytes_read", &report.bytes_read);
                    span.set("bytes_ok", &report.bytes_ok);
                    span.set("records", &report.records_read);
                    span.set("retries", &report.retries);
                    span.set("faults", &report.errors.decode_errors());
                    span.set("resyncs", &report.resync_events);
                    span.set("readahead_blocks", &report.readahead_blocks);
                    span.set("arena_bytes", &report.arena_bytes);
                }
                (path, sink, report)
            }
            Err(e) => (
                path,
                S::default(),
                failed_report(
                    format!("open: {e}"),
                    Some(format!(
                        "{e} (after {} retry(s))",
                        retries.load(Ordering::Relaxed)
                    )),
                    false,
                ),
            ),
        }
    });
    let files: Vec<(PathBuf, S, IngestReport)> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Ok(file) => file,
            Err(p) => (
                paths[i].clone(),
                S::default(),
                failed_report(format!("worker panicked: {}", p.message), None, true),
            ),
        })
        .collect();
    let mut merged = IngestReport::default();
    for (_, _, report) in &files {
        merged.merge(report);
    }
    (files, merged)
}

/// Per-file outcome of [`read_observations_parallel_store`]: like
/// [`FileIngest`], but the observations were interned straight into a
/// columnar [`ObservationStore`] as they decoded.
#[derive(Debug, Clone)]
pub struct FileStoreIngest {
    /// The input file.
    pub path: PathBuf,
    /// Observations salvaged from this file, in columnar form.
    pub store: ObservationStore,
    /// This file's ingest accounting (same semantics as
    /// [`FileIngest::report`]).
    pub report: IngestReport,
}

/// [`read_observations_parallel_with`] folding each file straight into a
/// per-file [`ObservationStore`] — no `Vec<Observation>` is ever
/// materialized. Merging the per-file stores in input order (see
/// [`ObservationStore::merge`]) yields exactly the store a sequential
/// single-sink read of the concatenated files would have produced.
pub fn read_observations_parallel_store_with(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    tuning: &IngestTuning,
    threads: usize,
) -> (Vec<FileStoreIngest>, IngestReport) {
    read_observations_parallel_store_telemetry(paths, cfg, tuning, threads, &Telemetry::disabled())
}

/// [`read_observations_parallel_store_with`] under observation: each file's
/// decode runs inside an `ingest/file` span (with bytes/records/retries/
/// fault counts attached from its [`IngestReport`]), the whole fan-out is
/// wrapped in the `ingest` stage timing, and the merged report lands in the
/// metrics registry under `ingest/*` (see [`IngestReport::record_metrics`]).
/// With [`Telemetry::disabled`] this is exactly the plain reader.
pub fn read_observations_parallel_store_telemetry(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    tuning: &IngestTuning,
    threads: usize,
    tel: &Telemetry,
) -> (Vec<FileStoreIngest>, IngestReport) {
    let (files, merged) = tel.stage("ingest", || {
        read_files_parallel_into::<ObservationStore>(paths, cfg, tuning, threads, tel)
    });
    if let Some(metrics) = tel.registry() {
        merged.record_metrics(metrics);
        metrics.counter("ingest/files").add(paths.len() as u64);
    }
    let files = files
        .into_iter()
        .map(|(path, store, report)| FileStoreIngest {
            path,
            store,
            report,
        })
        .collect();
    (files, merged)
}

/// [`read_observations_parallel_store_with`] under the default supervision
/// tuning.
pub fn read_observations_parallel_store(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    threads: usize,
) -> (Vec<FileStoreIngest>, IngestReport) {
    read_observations_parallel_store_with(paths, cfg, &IngestTuning::default(), threads)
}

/// [`read_observations_parallel_with`] under the default supervision
/// tuning (default retry policy, no injected delivery faults).
pub fn read_observations_parallel(
    paths: &[PathBuf],
    cfg: &RecoverConfig,
    threads: usize,
) -> (Vec<FileIngest>, IngestReport) {
    read_observations_parallel_with(paths, cfg, &IngestTuning::default(), threads)
}

/// Strict ingestion over many MRT files at once, fanning files out across
/// `threads` workers (`0` = one per CPU).
///
/// Returns the per-file observations in input order, or — matching the
/// fail-fast contract of [`read_observations_strict`] — the error of the
/// *earliest* failing file by input order (deterministic even when a later
/// file fails first on the wall clock). File-open failures surface as
/// [`MrtError::Io`]; transient open/read failures are retried under the
/// default [`RetryPolicy`] first. A worker panic is captured and surfaced
/// as that file's [`MrtError::Malformed`] — fail-fast still means a clean
/// error for the caller, never a process abort.
pub fn read_observations_parallel_strict(
    paths: &[PathBuf],
    threads: usize,
) -> Result<Vec<Vec<Observation>>, (PathBuf, MrtError)> {
    read_observations_parallel_strict_with(paths, &IngestTuning::default(), threads)
}

/// [`read_observations_parallel_strict`] with explicit supervision
/// [`IngestTuning`] (retry policy, injected delivery faults, panic hook).
pub fn read_observations_parallel_strict_with(
    paths: &[PathBuf],
    tuning: &IngestTuning,
    threads: usize,
) -> Result<Vec<Vec<Observation>>, (PathBuf, MrtError)> {
    let threads = effective_threads(threads);
    let slots = try_par_map_indexed(paths.len(), threads, |i| {
        let retries = Arc::new(AtomicU64::new(0));
        let blocks = Arc::new(AtomicU64::new(0));
        open_supervised(&paths[i], i, tuning, &retries, &blocks)
            .map_err(MrtError::from)
            .and_then(|r| {
                let mut observations = Vec::new();
                read_observations_strict_hooked(r, &mut observations, tuning.panic_after_records)?;
                Ok(observations)
            })
    });
    let mut out = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(Ok(observations)) => out.push(observations),
            Ok(Err(e)) => return Err((paths[i].clone(), e)),
            Err(p) => {
                return Err((
                    paths[i].clone(),
                    MrtError::malformed("ingest worker", format!("panicked: {}", p.message)),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Community;

    fn obs(vp: u32, prefix: &str, path: &str, comms: &[(u16, u16)], time: u32) -> Observation {
        Observation {
            vp: Asn::new(vp),
            prefix: prefix.parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time,
        }
    }

    fn sample() -> Vec<Observation> {
        vec![
            obs(
                64500,
                "10.0.0.0/24",
                "64500 1299 64496",
                &[(1299, 2569)],
                100,
            ),
            obs(
                64501,
                "10.0.0.0/24",
                "64501 7018 1299 64496",
                &[(1299, 2569), (7018, 100)],
                100,
            ),
            obs(
                64500,
                "10.0.1.0/24",
                "64500 3356 64497",
                &[(3356, 35130)],
                100,
            ),
            obs(64501, "2001:db8:5::/48", "64501 3356 64498", &[], 100),
        ]
    }

    #[test]
    fn rib_dump_roundtrip() {
        let observations = sample();
        let mut buf = Vec::new();
        let n = write_rib_dump(&mut buf, 100, &observations).unwrap();
        assert_eq!(n, 1 + 3); // peer table + 3 prefixes
        let mut back = read_observations(&buf[..]).unwrap();
        let mut expected = observations;
        let key = |o: &Observation| (o.prefix, o.vp);
        back.sort_by_key(key);
        expected.sort_by_key(key);
        assert_eq!(back, expected);
    }

    #[test]
    fn rib_dump_keeps_latest_per_vp_prefix() {
        let mut observations = sample();
        let mut newer = observations[0].clone();
        newer.time = 200;
        newer.communities = vec![Community::new(1299, 666)];
        observations.push(newer.clone());
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 200, &observations).unwrap();
        let back = read_observations(&buf[..]).unwrap();
        let hit: Vec<&Observation> = back
            .iter()
            .filter(|o| o.vp == newer.vp && o.prefix == newer.prefix)
            .collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].communities, newer.communities);
        assert_eq!(hit[0].time, 200);
    }

    #[test]
    fn update_stream_roundtrip() {
        let observations = sample();
        let mut buf = Vec::new();
        let n = write_update_stream(&mut buf, Asn::new(6447), &observations).unwrap();
        assert_eq!(n, 4);
        let back = read_observations(&buf[..]).unwrap();
        assert_eq!(back, observations);
    }

    #[test]
    fn mixed_stream_concatenates() {
        let observations = sample();
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 100, &observations[..2]).unwrap();
        write_update_stream(&mut buf, Asn::new(6447), &observations[2..]).unwrap();
        let back = read_observations(&buf[..]).unwrap();
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn legacy_table_dump_records_become_observations() {
        use crate::records::{MrtRecord, TableDumpEntry};
        use crate::writer::MrtWriter;
        use bgp_types::RouteAttrs;
        use std::net::IpAddr;

        let mut route = RouteAttrs::originated(
            "7018 1299 64496".parse().unwrap(),
            IpAddr::from([192, 0, 2, 9]),
        );
        route.communities.push(Community::new(1299, 35130));
        let rec = MrtRecord::TableDump(TableDumpEntry {
            view: 0,
            sequence: 1,
            prefix: "10.0.0.0/24".parse().unwrap(),
            status: 1,
            originated_time: 777,
            peer_addr: IpAddr::from([192, 0, 2, 9]),
            peer_asn: Asn::new(7018),
            route,
        });
        let mut wire = Vec::new();
        MrtWriter::new(&mut wire).write_record(777, &rec).unwrap();
        let back = read_observations(&wire[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].vp, Asn::new(7018));
        assert_eq!(back[0].prefix, "10.0.0.0/24".parse().unwrap());
        assert_eq!(back[0].communities, vec![Community::new(1299, 35130)]);
        assert_eq!(back[0].time, 777);
    }

    #[test]
    fn empty_roundtrip() {
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 1, &[]).unwrap();
        assert_eq!(read_observations(&buf[..]).unwrap(), vec![]);
    }

    /// Four identical update records, so every record has the same length.
    fn uniform_updates() -> (Vec<u8>, usize) {
        let one = vec![obs(
            64500,
            "10.0.0.0/24",
            "64500 1299 64496",
            &[(1299, 1)],
            100,
        )];
        let mut buf = Vec::new();
        write_update_stream(&mut buf, Asn::new(6447), &one).unwrap();
        let rec_len = buf.len();
        for _ in 0..3 {
            write_update_stream(&mut buf, Asn::new(6447), &one).unwrap();
        }
        (buf, rec_len)
    }

    #[test]
    fn strict_aborts_on_first_bad_record() {
        let (mut buf, rec_len) = uniform_updates();
        // Make record 2's MRT type unknown: strict must abort, the default
        // reader (which skips well-framed undecodable bodies) must not.
        buf[2 * rec_len + 5] = 0xEE;
        assert!(read_observations_strict(&buf[..]).is_err());
        assert_eq!(read_observations(&buf[..]).unwrap().len(), 3);
    }

    #[test]
    fn strict_matches_default_reader_on_clean_input() {
        let observations = sample();
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 100, &observations).unwrap();
        assert_eq!(
            read_observations_strict(&buf[..]).unwrap(),
            read_observations(&buf[..]).unwrap()
        );
    }

    #[test]
    fn resilient_survives_framing_damage_the_plain_reader_cannot() {
        let (buf, rec_len) = uniform_updates();
        // Drop 5 bytes from the middle of record 0: its length field now
        // points into record 1, so the plain reader aborts (truncation /
        // framing loss), while the resilient reader resyncs.
        let damaged = buf[..rec_len - 5]
            .iter()
            .chain(&buf[rec_len..])
            .copied()
            .collect::<Vec<u8>>();
        assert!(read_observations(&damaged[..]).is_err());
        let (back, report) = read_observations_resilient(&damaged[..], &RecoverConfig::default());
        assert_eq!(back.len(), 3, "records after the damage recovered");
        assert_eq!(report.records_read, 3);
        assert!(report.resync_events >= 1);
        assert_eq!(report.bytes_ok + report.bytes_skipped, report.bytes_read);
        assert!(report.aborted.is_none());
    }

    #[test]
    fn resilient_drops_rib_entries_with_bad_peer_index() {
        // RIB records with no preceding peer index table: every entry
        // references a missing peer. Entries are dropped one by one and
        // counted; the record frames themselves still decode.
        let observations = sample();
        let mut route = RouteAttrs::originated(
            "64500 1299 64496".parse().unwrap(),
            IpAddr::from([192, 0, 2, 9]),
        );
        route.communities.push(Community::new(1299, 1));
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for (i, o) in observations.iter().enumerate() {
            let rib = RibSnapshot {
                sequence: i as u32,
                prefix: o.prefix,
                entries: vec![RibEntry {
                    peer_index: 7, // no table loaded: always out of range
                    originated_time: o.time,
                    route: route.clone(),
                }],
            };
            w.write_record(100, &MrtRecord::Rib(rib)).unwrap();
        }
        w.flush().unwrap();
        let _ = w;
        let (back, report) = read_observations_resilient(&buf[..], &RecoverConfig::default());
        assert_eq!(back, vec![]);
        assert_eq!(report.errors.malformed, 4, "one per dropped RIB entry");
        assert_eq!(report.records_read, 4, "record frames still decoded");
    }

    /// Write three distinct single-record archives to a fresh temp dir.
    fn archive_trio(name: &str) -> Vec<PathBuf> {
        let dir = std::env::temp_dir().join(format!("bgp-mrt-par-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (0..3u32)
            .map(|i| {
                let one = vec![obs(
                    64500 + i,
                    "10.0.0.0/24",
                    &format!("{} 1299 64496", 64500 + i),
                    &[(1299, i as u16)],
                    100 + i,
                )];
                let mut buf = Vec::new();
                write_update_stream(&mut buf, Asn::new(6447), &one).unwrap();
                let path = dir.join(format!("updates.{i}.mrt"));
                std::fs::write(&path, buf).unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn parallel_read_matches_sequential_at_any_thread_count() {
        let paths = archive_trio("clean");
        let cfg = RecoverConfig::default();
        let sequential: Vec<Vec<Observation>> = paths
            .iter()
            .map(|p| {
                let file = std::fs::File::open(p).unwrap();
                read_observations_resilient(std::io::BufReader::new(file), &cfg).0
            })
            .collect();
        for threads in [1, 2, 8] {
            let (files, merged) = read_observations_parallel(&paths, &cfg, threads);
            assert_eq!(files.len(), 3);
            for (file, expected) in files.iter().zip(&sequential) {
                assert_eq!(&file.observations, expected, "threads = {threads}");
                assert!(file.report.is_clean());
            }
            assert!(merged.is_clean());
            assert_eq!(merged.records_read, 3);
            assert_eq!(merged.bytes_ok + merged.bytes_skipped, merged.bytes_read);
        }
    }

    #[test]
    fn store_parallel_read_matches_vec_parallel_read() {
        let paths = archive_trio("store");
        let cfg = RecoverConfig::default();
        let (vec_files, vec_merged) = read_observations_parallel(&paths, &cfg, 2);
        for threads in [1, 2, 8] {
            let (store_files, store_merged) =
                read_observations_parallel_store(&paths, &cfg, threads);
            assert_eq!(store_files.len(), vec_files.len());
            let mut folded = ObservationStore::new();
            for (sf, vf) in store_files.iter().zip(&vec_files) {
                assert_eq!(sf.path, vf.path);
                assert_eq!(sf.report, vf.report, "threads = {threads}");
                assert_eq!(sf.store.len(), vf.observations.len());
                for (i, o) in vf.observations.iter().enumerate() {
                    assert_eq!(sf.store.get(i), *o, "threads = {threads}");
                }
                folded.merge(&sf.store);
            }
            assert_eq!(store_merged, vec_merged);
            // Folding per-file stores in input order reproduces the
            // sequential single-sink read of the concatenated files.
            let all: Vec<Observation> = vec_files
                .iter()
                .flat_map(|f| f.observations.iter().cloned())
                .collect();
            assert_eq!(folded.len(), all.len());
            for (i, o) in all.iter().enumerate() {
                assert_eq!(folded.get(i), *o);
            }
        }
    }

    #[test]
    fn sink_readers_match_vec_readers() {
        let observations = sample();
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 100, &observations).unwrap();
        let via_vec = read_observations(&buf[..]).unwrap();
        let mut store = ObservationStore::new();
        read_observations_into(&buf[..], &mut store).unwrap();
        assert_eq!(store.len(), via_vec.len());
        let mut strict_store = ObservationStore::new();
        read_observations_strict_into(&buf[..], &mut strict_store).unwrap();
        let mut resilient_store = ObservationStore::new();
        let report = read_observations_resilient_into(
            &buf[..],
            &RecoverConfig::default(),
            &mut resilient_store,
        );
        assert!(report.is_clean());
        for (i, o) in via_vec.iter().enumerate() {
            assert_eq!(store.get(i), *o);
            assert_eq!(strict_store.get(i), *o);
            assert_eq!(resilient_store.get(i), *o);
        }
    }

    #[test]
    fn parallel_read_reports_unopenable_file_as_aborted() {
        let mut paths = archive_trio("missing");
        paths.insert(1, paths[0].with_file_name("does-not-exist.mrt"));
        let (files, merged) = read_observations_parallel(&paths, &RecoverConfig::default(), 2);
        assert_eq!(files.len(), 4);
        assert!(files[1].observations.is_empty());
        assert!(files[1].report.aborted.is_some());
        assert_eq!(files[1].report.errors.io, 1);
        // Open failure is distinguished from "file decoded empty": only the
        // missing file carries the open error string.
        assert!(files[1].report.open_failed.is_some());
        assert!(files[0].report.open_failed.is_none());
        // Other files are unaffected; the ledger still balances.
        assert_eq!(files[0].observations.len(), 1);
        assert_eq!(merged.records_read, 3);
        assert_eq!(merged.bytes_ok + merged.bytes_skipped, merged.bytes_read);
        assert!(merged.aborted.is_some());
        assert!(merged.open_failed.is_some());
    }

    #[test]
    fn worker_panic_is_isolated_to_its_file() {
        let paths = archive_trio("panic");
        // Give file 1 three records; its worker trips the injected panic
        // at record 2 while the single-record neighbors stay below it.
        let many: Vec<Observation> = (0..3)
            .map(|i| {
                obs(
                    64600 + i,
                    "10.9.0.0/24",
                    "64600 1299 64496",
                    &[(1299, 9)],
                    i,
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_update_stream(&mut buf, Asn::new(6447), &many).unwrap();
        std::fs::write(&paths[1], buf).unwrap();
        let tuning = IngestTuning {
            panic_after_records: Some(2),
            ..IngestTuning::default()
        };
        for threads in [1, 2, 8] {
            let (files, merged) = read_observations_parallel_with(
                &paths,
                &RecoverConfig::default(),
                &tuning,
                threads,
            );
            assert_eq!(files.len(), 3, "threads = {threads}");
            assert!(files[1].observations.is_empty());
            assert_eq!(files[1].report.panicked, 1);
            let why = files[1].report.aborted.as_deref().unwrap();
            assert!(why.contains("panicked"), "aborted reason: {why}");
            assert!(why.contains("injected fault"), "payload preserved: {why}");
            // Neighbors are untouched and the run as a whole completed.
            assert_eq!(files[0].observations.len(), 1);
            assert_eq!(files[2].observations.len(), 1);
            assert_eq!(merged.panicked, 1);
            assert!(merged.aborted.is_some());
            assert!(merged.open_failed.is_none());
        }
    }

    #[test]
    fn parallel_strict_surfaces_panic_as_clean_error() {
        let paths = archive_trio("panic-strict");
        let tuning = IngestTuning {
            panic_after_records: Some(1),
            ..IngestTuning::default()
        };
        for threads in [1, 2, 8] {
            let err = read_observations_parallel_strict_with(&paths, &tuning, threads).unwrap_err();
            // Every file panics at its first record; the earliest by input
            // order wins deterministically.
            assert_eq!(err.0, paths[0], "threads = {threads}");
            assert!(err.1.to_string().contains("panicked"), "{}", err.1);
        }
    }

    #[test]
    fn flaky_delivery_is_absorbed_by_retries_bit_identically() {
        let paths = archive_trio("flaky");
        let cfg = RecoverConfig::default();
        let (clean_files, clean_merged) = read_observations_parallel(&paths, &cfg, 2);
        let tuning = IngestTuning {
            retry: RetryPolicy {
                max_attempts: 64,
                base_delay: std::time::Duration::ZERO,
                max_delay: std::time::Duration::ZERO,
                per_file_deadline: None,
            },
            // Tiny archives mean only a handful of read calls per file, so
            // the rates are cranked high enough that the fixed schedule is
            // certain to fire (the retry budget above absorbs them all).
            flaky: Some(FlakyConfig {
                seed: 7,
                interrupt_rate: 0.45,
                stall_rate: 0.25,
                short_read_rate: 0.25,
            }),
            panic_after_records: None,
        };
        for threads in [1, 2, 8] {
            let (files, merged) = read_observations_parallel_with(&paths, &cfg, &tuning, threads);
            for (flaky, clean) in files.iter().zip(&clean_files) {
                assert_eq!(
                    flaky.observations, clean.observations,
                    "threads = {threads}"
                );
                assert!(flaky.report.aborted.is_none());
            }
            assert!(merged.retries > 0, "faults were actually injected");
            assert!(merged.is_clean(), "retries alone do not dirty a report");
            assert_eq!(merged.records_read, clean_merged.records_read);
            assert_eq!(merged.bytes_ok, clean_merged.bytes_ok);
        }
    }

    #[test]
    fn injected_faults_surface_in_metrics_with_exact_counts() {
        use bgp_types::obs::CaptureSink;
        use bgp_types::Tracer;

        let paths = archive_trio("flaky_metrics");
        let cfg = RecoverConfig::default();
        let tuning = IngestTuning {
            retry: RetryPolicy {
                max_attempts: 64,
                base_delay: std::time::Duration::ZERO,
                max_delay: std::time::Duration::ZERO,
                per_file_deadline: None,
            },
            flaky: Some(FlakyConfig {
                seed: 7,
                interrupt_rate: 0.45,
                stall_rate: 0.25,
                short_read_rate: 0.25,
            }),
            panic_after_records: None,
        };
        let sink = Arc::new(CaptureSink::new());
        let tel = Telemetry {
            tracer: Tracer::new(sink.clone()),
            ..Telemetry::with_metrics()
        };
        let (_, merged) =
            read_observations_parallel_store_telemetry(&paths, &cfg, &tuning, 2, &tel);
        assert!(merged.retries > 0, "faults were actually injected");

        // Every report counter lands in the snapshot with its exact value —
        // the accounting that used to be reachable only via `--report`.
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counters["ingest/retries"], merged.retries);
        assert_eq!(snap.counters["ingest/records_read"], merged.records_read);
        assert_eq!(snap.counters["ingest/bytes_ok"], merged.bytes_ok);
        assert_eq!(snap.counters["ingest/bytes_read"], merged.bytes_read);
        assert_eq!(snap.counters["ingest/errors/io"], merged.errors.io);
        assert_eq!(snap.counters["ingest/worker_panics"], 0);
        assert_eq!(snap.counters["ingest/files"], paths.len() as u64);
        assert_eq!(snap.gauges["ingest/aborted"], 0);

        // One per-file span each, with its own retry count attached, under
        // the ingest stage span.
        let spans = sink.take();
        let files: Vec<_> = spans.iter().filter(|s| s.name == "ingest/file").collect();
        assert_eq!(files.len(), paths.len());
        let per_file_retries: u64 = files
            .iter()
            .map(|s| {
                s.fields
                    .iter()
                    .find(|(k, _)| k == "retries")
                    .expect("retries field")
                    .1
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(per_file_retries, merged.retries);
        assert!(spans.iter().any(|s| s.name == "ingest"));
    }

    #[test]
    fn parallel_strict_fails_on_earliest_bad_file() {
        let paths = archive_trio("strict");
        // Damage the *second* file's MRT type byte.
        let mut bytes = std::fs::read(&paths[1]).unwrap();
        bytes[5] = 0xEE;
        std::fs::write(&paths[1], &bytes).unwrap();
        for threads in [1, 2, 8] {
            let err = read_observations_parallel_strict(&paths, threads).unwrap_err();
            assert_eq!(err.0, paths[1], "threads = {threads}");
        }
        // Clean trio succeeds and preserves input order.
        let clean = archive_trio("strict-clean");
        let per_file = read_observations_parallel_strict(&clean, 8).unwrap();
        assert_eq!(per_file.len(), 3);
        for (i, observations) in per_file.iter().enumerate() {
            assert_eq!(observations.len(), 1);
            assert_eq!(observations[0].vp, Asn::new(64500 + i as u32));
        }
    }

    #[test]
    fn resilient_report_is_clean_on_clean_input() {
        let observations = sample();
        let mut buf = Vec::new();
        write_rib_dump(&mut buf, 100, &observations).unwrap();
        let (back, report) = read_observations_resilient(&buf[..], &RecoverConfig::default());
        assert_eq!(back.len(), observations.len());
        assert!(report.is_clean());
        assert_eq!(report.bytes_ok, buf.len() as u64);
    }
}
