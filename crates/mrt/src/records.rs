//! MRT record model and body codecs (RFC 6396).
//!
//! Supported records — the ones RouteViews/RIS archives consist of and the
//! paper's pipeline consumes:
//!
//! | MRT type | subtype | model |
//! |---|---|---|
//! | `TABLE_DUMP` (12) | AFI (1 = IPv4, 2 = IPv6) | [`TableDumpEntry`] |
//! | `TABLE_DUMP_V2` (13) | `PEER_INDEX_TABLE` (1) | [`PeerIndexTable`] |
//! | `TABLE_DUMP_V2` (13) | `RIB_IPV4_UNICAST` (2) | [`RibSnapshot`] |
//! | `TABLE_DUMP_V2` (13) | `RIB_IPV6_UNICAST` (4) | [`RibSnapshot`] |
//! | `BGP4MP` (16) | `BGP4MP_MESSAGE` (1, 2-byte ASNs, decode only) | [`Bgp4mpMessage`] |
//! | `BGP4MP` (16) | `BGP4MP_MESSAGE_AS4` (4) | [`Bgp4mpMessage`] |
//! | `BGP4MP` (16) | `BGP4MP_STATE_CHANGE_AS4` (5) | [`Bgp4mpStateChange`] |

use std::net::{IpAddr, Ipv4Addr};

use bytes::BufMut;

use bgp_types::{Asn, Prefix, RouteAttrs};

use crate::attrs::{self, AttrCtx, EncodeOpts};
use crate::bgpmsg::{self, BgpMessage};
use crate::cursor::Cursor;
use crate::error::MrtError;
use crate::nlri::{self, Afi};

/// MRT type `TABLE_DUMP` (legacy, pre-2008 archives).
pub const TYPE_TABLE_DUMP: u16 = 12;
/// MRT type `TABLE_DUMP_V2`.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// MRT type `BGP4MP`.
pub const TYPE_BGP4MP: u16 = 16;

/// `TABLE_DUMP_V2` subtype `PEER_INDEX_TABLE`.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// `TABLE_DUMP_V2` subtype `RIB_IPV4_UNICAST`.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// `TABLE_DUMP_V2` subtype `RIB_IPV6_UNICAST`.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;
/// `BGP4MP` subtype `BGP4MP_MESSAGE` (legacy 2-byte ASNs).
pub const SUBTYPE_BGP4MP_MESSAGE: u16 = 1;
/// `BGP4MP` subtype `BGP4MP_MESSAGE_AS4`.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;
/// `BGP4MP` subtype `BGP4MP_STATE_CHANGE_AS4`.
pub const SUBTYPE_BGP4MP_STATE_CHANGE_AS4: u16 = 5;

/// One peer of the collector, from the `PEER_INDEX_TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// The peer's address (IPv4 or IPv6).
    pub addr: IpAddr,
    /// The peer's ASN (always encoded 4-byte).
    pub asn: Asn,
}

/// The `PEER_INDEX_TABLE` record that must precede RIB entries in a
/// `TABLE_DUMP_V2` dump; RIB entries refer to peers by index into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_bgp_id: Ipv4Addr,
    /// Optional view name (usually empty).
    pub view_name: String,
    /// The peers, in index order.
    pub peers: Vec<PeerEntry>,
}

/// One peer's path for the prefix of a [`RibSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into the preceding [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was last changed (Unix seconds).
    pub originated_time: u32,
    /// The route's attributes.
    pub route: RouteAttrs,
}

/// A `RIB_IPV4_UNICAST`/`RIB_IPV6_UNICAST` record: every collector peer's
/// best path for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibSnapshot {
    /// Record sequence number within the dump.
    pub sequence: u32,
    /// The prefix all entries describe.
    pub prefix: Prefix,
    /// Per-peer entries.
    pub entries: Vec<RibEntry>,
}

/// A `BGP4MP_MESSAGE[_AS4]` record: one BGP message between the collector
/// and a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// The peer's ASN.
    pub peer_asn: Asn,
    /// The collector-side ASN.
    pub local_asn: Asn,
    /// Interface index (0 when unknown).
    pub if_index: u16,
    /// The peer's address.
    pub peer_addr: IpAddr,
    /// The collector's address (same family as `peer_addr`).
    pub local_addr: IpAddr,
    /// The embedded BGP message.
    pub message: BgpMessage,
}

/// BGP FSM states for `BGP4MP_STATE_CHANGE` (RFC 6396 §4.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpState {
    /// Idle.
    Idle,
    /// Connect.
    Connect,
    /// Active.
    Active,
    /// OpenSent.
    OpenSent,
    /// OpenConfirm.
    OpenConfirm,
    /// Established.
    Established,
}

impl BgpState {
    /// RFC 6396 numeric encoding (1-based).
    pub const fn to_u16(self) -> u16 {
        match self {
            BgpState::Idle => 1,
            BgpState::Connect => 2,
            BgpState::Active => 3,
            BgpState::OpenSent => 4,
            BgpState::OpenConfirm => 5,
            BgpState::Established => 6,
        }
    }

    /// Decode from the wire value.
    pub const fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(BgpState::Idle),
            2 => Some(BgpState::Connect),
            3 => Some(BgpState::Active),
            4 => Some(BgpState::OpenSent),
            5 => Some(BgpState::OpenConfirm),
            6 => Some(BgpState::Established),
            _ => None,
        }
    }
}

/// A `BGP4MP_STATE_CHANGE_AS4` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpStateChange {
    /// The peer's ASN.
    pub peer_asn: Asn,
    /// The collector-side ASN.
    pub local_asn: Asn,
    /// Interface index.
    pub if_index: u16,
    /// The peer's address.
    pub peer_addr: IpAddr,
    /// The collector's address.
    pub local_addr: IpAddr,
    /// FSM state before the transition.
    pub old_state: BgpState,
    /// FSM state after the transition.
    pub new_state: BgpState,
}

/// One legacy `TABLE_DUMP` record: a single peer's path for one prefix
/// (RFC 6396 §4.2). Used by archives collected before 2008; AS_PATH ASNs
/// are 2 bytes wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDumpEntry {
    /// View number (usually 0).
    pub view: u16,
    /// Sequence number, wrapping at 65535.
    pub sequence: u16,
    /// The prefix.
    pub prefix: Prefix,
    /// Status octet (undefined in RFC 6396; preserved verbatim).
    pub status: u8,
    /// When the route was last changed (Unix seconds).
    pub originated_time: u32,
    /// The peer's address.
    pub peer_addr: IpAddr,
    /// The peer's (16-bit) ASN.
    pub peer_asn: Asn,
    /// The route's attributes.
    pub route: RouteAttrs,
}

/// Any supported MRT record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecord {
    /// `TABLE_DUMP_V2` / `PEER_INDEX_TABLE`.
    PeerIndexTable(PeerIndexTable),
    /// `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST` or `RIB_IPV6_UNICAST`.
    Rib(RibSnapshot),
    /// Legacy `TABLE_DUMP` (one peer, one prefix).
    TableDump(TableDumpEntry),
    /// `BGP4MP` / `BGP4MP_MESSAGE[_AS4]`.
    Message(Bgp4mpMessage),
    /// `BGP4MP` / `BGP4MP_STATE_CHANGE_AS4`.
    StateChange(Bgp4mpStateChange),
}

/// A record together with its MRT header timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampedRecord {
    /// Unix seconds from the MRT common header.
    pub timestamp: u32,
    /// The decoded record.
    pub record: MrtRecord,
}

fn afi_of_pair(peer: IpAddr, local: IpAddr) -> Result<Afi, MrtError> {
    match (peer.is_ipv4(), local.is_ipv4()) {
        (true, true) => Ok(Afi::Ipv4),
        (false, false) => Ok(Afi::Ipv6),
        _ => Err(MrtError::malformed(
            "BGP4MP addresses",
            "mixed address families",
        )),
    }
}

/// Encode a record body, returning `(mrt_type, subtype, body)`.
pub fn encode_body(record: &MrtRecord) -> Result<(u16, u16, Vec<u8>), MrtError> {
    match record {
        MrtRecord::PeerIndexTable(t) => {
            let mut out = Vec::new();
            out.extend_from_slice(&t.collector_bgp_id.octets());
            if t.view_name.len() > u16::MAX as usize {
                return Err(MrtError::TooLong {
                    context: "view name",
                    len: t.view_name.len(),
                });
            }
            out.put_u16(t.view_name.len() as u16);
            out.extend_from_slice(t.view_name.as_bytes());
            if t.peers.len() > u16::MAX as usize {
                return Err(MrtError::TooLong {
                    context: "peer table",
                    len: t.peers.len(),
                });
            }
            out.put_u16(t.peers.len() as u16);
            for p in &t.peers {
                // Bit 0: peer address is IPv6. Bit 1: ASN is 4 bytes (always).
                let ty = if p.addr.is_ipv4() { 0b10 } else { 0b11 };
                out.put_u8(ty);
                out.extend_from_slice(&p.bgp_id.octets());
                nlri::encode_addr(&mut out, p.addr);
                out.put_u32(p.asn.value());
            }
            Ok((TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE, out))
        }
        MrtRecord::Rib(rib) => {
            let subtype = if rib.prefix.is_ipv4() {
                SUBTYPE_RIB_IPV4_UNICAST
            } else {
                SUBTYPE_RIB_IPV6_UNICAST
            };
            let mut out = Vec::new();
            out.put_u32(rib.sequence);
            nlri::encode_prefix(&mut out, &rib.prefix);
            if rib.entries.len() > u16::MAX as usize {
                return Err(MrtError::TooLong {
                    context: "RIB entries",
                    len: rib.entries.len(),
                });
            }
            out.put_u16(rib.entries.len() as u16);
            for e in &rib.entries {
                out.put_u16(e.peer_index);
                out.put_u32(e.originated_time);
                let attrs =
                    attrs::encode_attrs(&e.route, AttrCtx::TABLE_DUMP_V2, &EncodeOpts::default())?;
                if attrs.len() > u16::MAX as usize {
                    return Err(MrtError::TooLong {
                        context: "RIB entry attributes",
                        len: attrs.len(),
                    });
                }
                out.put_u16(attrs.len() as u16);
                out.extend_from_slice(&attrs);
            }
            Ok((TYPE_TABLE_DUMP_V2, subtype, out))
        }
        MrtRecord::Message(m) => {
            let afi = afi_of_pair(m.peer_addr, m.local_addr)?;
            let mut out = Vec::new();
            out.put_u32(m.peer_asn.value());
            out.put_u32(m.local_asn.value());
            out.put_u16(m.if_index);
            out.put_u16(afi.to_u16());
            nlri::encode_addr(&mut out, m.peer_addr);
            nlri::encode_addr(&mut out, m.local_addr);
            let msg = match &m.message {
                BgpMessage::Update(_) => return Err(MrtError::malformed(
                    "BGP4MP message",
                    "encode updates via MrtWriter::write_update, which owns the attribute context",
                )),
                BgpMessage::Keepalive => bgpmsg::encode_keepalive(),
                BgpMessage::Open(o) => bgpmsg::encode_open(o),
                BgpMessage::Notification(n) => bgpmsg::encode_notification(n)?,
            };
            out.extend_from_slice(&msg);
            Ok((TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, out))
        }
        MrtRecord::TableDump(t) => {
            let afi = Afi::of(&t.prefix);
            if t.peer_addr.is_ipv4() != t.prefix.is_ipv4() {
                return Err(MrtError::malformed(
                    "TABLE_DUMP",
                    "peer address family must match the prefix (the subtype encodes both)",
                ));
            }
            if !t.peer_asn.is_16bit() {
                return Err(MrtError::malformed(
                    "TABLE_DUMP",
                    "peer ASN must fit 16 bits",
                ));
            }
            let mut out = Vec::new();
            out.put_u16(t.view);
            out.put_u16(t.sequence);
            nlri::encode_addr(&mut out, t.prefix.addr());
            out.put_u8(t.prefix.len());
            out.put_u8(t.status);
            out.put_u32(t.originated_time);
            nlri::encode_addr(&mut out, t.peer_addr);
            out.put_u16(t.peer_asn.value() as u16);
            let attrs = attrs::encode_attrs(&t.route, AttrCtx::BGP4MP_AS2, &EncodeOpts::default())?;
            if attrs.len() > u16::MAX as usize {
                return Err(MrtError::TooLong {
                    context: "TABLE_DUMP attributes",
                    len: attrs.len(),
                });
            }
            out.put_u16(attrs.len() as u16);
            out.extend_from_slice(&attrs);
            Ok((TYPE_TABLE_DUMP, afi.to_u16(), out))
        }
        MrtRecord::StateChange(s) => {
            let afi = afi_of_pair(s.peer_addr, s.local_addr)?;
            let mut out = Vec::new();
            out.put_u32(s.peer_asn.value());
            out.put_u32(s.local_asn.value());
            out.put_u16(s.if_index);
            out.put_u16(afi.to_u16());
            nlri::encode_addr(&mut out, s.peer_addr);
            nlri::encode_addr(&mut out, s.local_addr);
            out.put_u16(s.old_state.to_u16());
            out.put_u16(s.new_state.to_u16());
            Ok((TYPE_BGP4MP, SUBTYPE_BGP4MP_STATE_CHANGE_AS4, out))
        }
    }
}

/// Encode a `BGP4MP_MESSAGE_AS4` body holding a raw, already-encoded BGP
/// message (used by the writer's update path).
pub(crate) fn encode_message_body(
    peer_asn: Asn,
    local_asn: Asn,
    if_index: u16,
    peer_addr: IpAddr,
    local_addr: IpAddr,
    raw_message: &[u8],
) -> Result<Vec<u8>, MrtError> {
    let afi = afi_of_pair(peer_addr, local_addr)?;
    let mut out = Vec::new();
    out.put_u32(peer_asn.value());
    out.put_u32(local_asn.value());
    out.put_u16(if_index);
    out.put_u16(afi.to_u16());
    nlri::encode_addr(&mut out, peer_addr);
    nlri::encode_addr(&mut out, local_addr);
    out.extend_from_slice(raw_message);
    Ok(out)
}

fn decode_peer_index_table(cur: &mut Cursor<'_>) -> Result<PeerIndexTable, MrtError> {
    let id = cur.take(4, "collector BGP id")?;
    let collector_bgp_id = Ipv4Addr::new(id[0], id[1], id[2], id[3]);
    let name_len = cur.u16("view name length")? as usize;
    let name_bytes = cur.take(name_len, "view name")?;
    let view_name = String::from_utf8(name_bytes.to_vec())
        .map_err(|e| MrtError::malformed("view name", e.to_string()))?;
    let count = cur.u16("peer count")? as usize;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        let ty = cur.u8("peer type")?;
        let id = cur.take(4, "peer BGP id")?;
        let bgp_id = Ipv4Addr::new(id[0], id[1], id[2], id[3]);
        let addr = if ty & 0b01 != 0 {
            nlri::decode_addr(cur, Afi::Ipv6)?
        } else {
            nlri::decode_addr(cur, Afi::Ipv4)?
        };
        let asn = if ty & 0b10 != 0 {
            Asn::new(cur.u32("peer ASN")?)
        } else {
            Asn::new(cur.u16("peer ASN")? as u32)
        };
        peers.push(PeerEntry { bgp_id, addr, asn });
    }
    Ok(PeerIndexTable {
        collector_bgp_id,
        view_name,
        peers,
    })
}

fn decode_rib(cur: &mut Cursor<'_>, afi: Afi) -> Result<RibSnapshot, MrtError> {
    let sequence = cur.u32("RIB sequence")?;
    let prefix = nlri::decode_prefix(cur, afi)?;
    let count = cur.u16("RIB entry count")? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let peer_index = cur.u16("RIB peer index")?;
        let originated_time = cur.u32("RIB originated time")?;
        let alen = cur.u16("RIB attribute length")? as usize;
        let mut acur = cur.slice(alen, "RIB attributes")?;
        let decoded = attrs::decode_attrs(&mut acur, AttrCtx::TABLE_DUMP_V2)?;
        entries.push(RibEntry {
            peer_index,
            originated_time,
            route: decoded.route,
        });
    }
    Ok(RibSnapshot {
        sequence,
        prefix,
        entries,
    })
}

fn decode_bgp4mp_endpoints(
    cur: &mut Cursor<'_>,
    as4: bool,
) -> Result<(Asn, Asn, u16, IpAddr, IpAddr), MrtError> {
    let peer_asn = if as4 {
        Asn::new(cur.u32("peer ASN")?)
    } else {
        Asn::new(cur.u16("peer ASN")? as u32)
    };
    let local_asn = if as4 {
        Asn::new(cur.u32("local ASN")?)
    } else {
        Asn::new(cur.u16("local ASN")? as u32)
    };
    let if_index = cur.u16("interface index")?;
    let afi_raw = cur.u16("BGP4MP AFI")?;
    let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
        context: "BGP4MP AFI",
        value: afi_raw as u32,
    })?;
    let peer_addr = nlri::decode_addr(cur, afi)?;
    let local_addr = nlri::decode_addr(cur, afi)?;
    Ok((peer_asn, local_asn, if_index, peer_addr, local_addr))
}

/// Decode a record body given its MRT type and subtype.
pub fn decode_body(mrt_type: u16, subtype: u16, body: &[u8]) -> Result<MrtRecord, MrtError> {
    let mut cur = Cursor::new(body);
    let record = match (mrt_type, subtype) {
        (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
            MrtRecord::PeerIndexTable(decode_peer_index_table(&mut cur)?)
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
            MrtRecord::Rib(decode_rib(&mut cur, Afi::Ipv4)?)
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
            MrtRecord::Rib(decode_rib(&mut cur, Afi::Ipv6)?)
        }
        (TYPE_TABLE_DUMP, afi_raw) => {
            let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
                context: "TABLE_DUMP subtype (AFI)",
                value: afi_raw as u32,
            })?;
            let view = cur.u16("TABLE_DUMP view")?;
            let sequence = cur.u16("TABLE_DUMP sequence")?;
            let addr = nlri::decode_addr(&mut cur, afi)?;
            let len = cur.u8("TABLE_DUMP prefix length")?;
            let prefix = Prefix::new(addr, len)
                .ok_or_else(|| MrtError::malformed("TABLE_DUMP prefix", format!("/{len}")))?;
            let status = cur.u8("TABLE_DUMP status")?;
            let originated_time = cur.u32("TABLE_DUMP originated time")?;
            let peer_addr = nlri::decode_addr(&mut cur, afi)?;
            let peer_asn = Asn::new(cur.u16("TABLE_DUMP peer ASN")? as u32);
            let alen = cur.u16("TABLE_DUMP attribute length")? as usize;
            let mut acur = cur.slice(alen, "TABLE_DUMP attributes")?;
            let decoded = attrs::decode_attrs(&mut acur, AttrCtx::BGP4MP_AS2)?;
            MrtRecord::TableDump(TableDumpEntry {
                view,
                sequence,
                prefix,
                status,
                originated_time,
                peer_addr,
                peer_asn,
                route: decoded.route,
            })
        }
        (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4 | SUBTYPE_BGP4MP_MESSAGE) => {
            let as4 = subtype == SUBTYPE_BGP4MP_MESSAGE_AS4;
            let (peer_asn, local_asn, if_index, peer_addr, local_addr) =
                decode_bgp4mp_endpoints(&mut cur, as4)?;
            let ctx = if as4 {
                AttrCtx::BGP4MP_AS4
            } else {
                AttrCtx::BGP4MP_AS2
            };
            let message = bgpmsg::decode_message(&mut cur, ctx)?;
            MrtRecord::Message(Bgp4mpMessage {
                peer_asn,
                local_asn,
                if_index,
                peer_addr,
                local_addr,
                message,
            })
        }
        (TYPE_BGP4MP, SUBTYPE_BGP4MP_STATE_CHANGE_AS4) => {
            let (peer_asn, local_asn, if_index, peer_addr, local_addr) =
                decode_bgp4mp_endpoints(&mut cur, true)?;
            let old = cur.u16("old state")?;
            let new = cur.u16("new state")?;
            let old_state = BgpState::from_u16(old)
                .ok_or_else(|| MrtError::malformed("BGP state", format!("value {old}")))?;
            let new_state = BgpState::from_u16(new)
                .ok_or_else(|| MrtError::malformed("BGP state", format!("value {new}")))?;
            MrtRecord::StateChange(Bgp4mpStateChange {
                peer_asn,
                local_asn,
                if_index,
                peer_addr,
                local_addr,
                old_state,
                new_state,
            })
        }
        (t, s) => {
            return Err(MrtError::Unsupported {
                context: "MRT type/subtype",
                value: ((t as u32) << 16) | s as u32,
            })
        }
    };
    if !cur.is_empty() {
        return Err(MrtError::malformed(
            "MRT record body",
            format!("{} trailing byte(s)", cur.remaining()),
        ));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Community};

    fn sample_rib(v6: bool) -> RibSnapshot {
        let mut route = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(7018), Asn::new(1299), Asn::new(64496)]),
            if v6 {
                "2001:db8::9".parse().unwrap()
            } else {
                IpAddr::from([203, 0, 113, 1])
            },
        );
        route.add_community(Community::new(1299, 35130));
        RibSnapshot {
            sequence: 7,
            prefix: if v6 {
                "2001:db8:100::/48".parse().unwrap()
            } else {
                "192.0.2.0/24".parse().unwrap()
            },
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 1_682_899_200,
                route,
            }],
        }
    }

    fn roundtrip(record: &MrtRecord) -> MrtRecord {
        let (t, s, body) = encode_body(record).unwrap();
        decode_body(t, s, &body).unwrap()
    }

    #[test]
    fn peer_index_table_roundtrip_mixed_families() {
        let table = PeerIndexTable {
            collector_bgp_id: Ipv4Addr::new(192, 0, 2, 1),
            view_name: "view".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: Ipv4Addr::new(192, 0, 2, 2),
                    addr: IpAddr::from([192, 0, 2, 2]),
                    asn: Asn::new(64500),
                },
                PeerEntry {
                    bgp_id: Ipv4Addr::new(192, 0, 2, 3),
                    addr: "2001:db8::3".parse().unwrap(),
                    asn: Asn::new(399260),
                },
            ],
        };
        let rec = MrtRecord::PeerIndexTable(table);
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn rib_v4_roundtrip() {
        let rec = MrtRecord::Rib(sample_rib(false));
        let (t, s, _) = encode_body(&rec).unwrap();
        assert_eq!((t, s), (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST));
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn rib_v6_roundtrip_uses_v6_subtype() {
        let rec = MrtRecord::Rib(sample_rib(true));
        let (t, s, _) = encode_body(&rec).unwrap();
        assert_eq!((t, s), (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST));
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn state_change_roundtrip() {
        let rec = MrtRecord::StateChange(Bgp4mpStateChange {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: IpAddr::from([192, 0, 2, 1]),
            old_state: BgpState::OpenConfirm,
            new_state: BgpState::Established,
        });
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn keepalive_message_roundtrip() {
        let rec = MrtRecord::Message(Bgp4mpMessage {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: IpAddr::from([192, 0, 2, 1]),
            message: BgpMessage::Keepalive,
        });
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn mixed_families_rejected() {
        let rec = MrtRecord::Message(Bgp4mpMessage {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: "2001:db8::1".parse().unwrap(),
            message: BgpMessage::Keepalive,
        });
        assert!(encode_body(&rec).is_err());
    }

    #[test]
    fn bgp_state_wire_values() {
        assert_eq!(BgpState::Idle.to_u16(), 1);
        assert_eq!(BgpState::Established.to_u16(), 6);
        for v in 1..=6 {
            assert_eq!(BgpState::from_u16(v).unwrap().to_u16(), v);
        }
        assert_eq!(BgpState::from_u16(0), None);
        assert_eq!(BgpState::from_u16(7), None);
    }

    #[test]
    fn legacy_table_dump_roundtrip() {
        let mut route = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(7018), Asn::new(1299)]),
            IpAddr::from([192, 0, 2, 9]),
        );
        route.add_community(Community::new(1299, 35130));
        let rec = MrtRecord::TableDump(TableDumpEntry {
            view: 0,
            sequence: 42,
            prefix: "192.0.2.0/24".parse().unwrap(),
            status: 1,
            originated_time: 1_000_000_000,
            peer_addr: IpAddr::from([192, 0, 2, 9]),
            peer_asn: Asn::new(7018),
            route,
        });
        let (t, s, _) = encode_body(&rec).unwrap();
        assert_eq!((t, s), (TYPE_TABLE_DUMP, 1));
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn legacy_table_dump_v6_roundtrip() {
        let route = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(7018)]),
            "2001:db8::9".parse().unwrap(),
        );
        let rec = MrtRecord::TableDump(TableDumpEntry {
            view: 1,
            sequence: 7,
            prefix: "2001:db8:100::/48".parse().unwrap(),
            status: 0,
            originated_time: 5,
            peer_addr: "2001:db8::9".parse().unwrap(),
            peer_asn: Asn::new(7018),
            route,
        });
        let (t, s, _) = encode_body(&rec).unwrap();
        assert_eq!((t, s), (TYPE_TABLE_DUMP, 2));
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn legacy_table_dump_rejects_wide_asn_and_mixed_family() {
        let route = RouteAttrs::originated(AsPath::empty(), IpAddr::from([192, 0, 2, 9]));
        let wide = MrtRecord::TableDump(TableDumpEntry {
            view: 0,
            sequence: 0,
            prefix: "192.0.2.0/24".parse().unwrap(),
            status: 0,
            originated_time: 0,
            peer_addr: IpAddr::from([192, 0, 2, 9]),
            peer_asn: Asn::new(400_000),
            route: route.clone(),
        });
        assert!(encode_body(&wide).is_err());
        let mixed = MrtRecord::TableDump(TableDumpEntry {
            view: 0,
            sequence: 0,
            prefix: "192.0.2.0/24".parse().unwrap(),
            status: 0,
            originated_time: 0,
            peer_addr: "2001:db8::9".parse().unwrap(),
            peer_asn: Asn::new(7018),
            route,
        });
        assert!(encode_body(&mixed).is_err());
    }

    #[test]
    fn unsupported_type_rejected() {
        assert!(matches!(
            decode_body(99, 1, &[]),
            Err(MrtError::Unsupported { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let rec = MrtRecord::Rib(sample_rib(false));
        let (t, s, mut body) = encode_body(&rec).unwrap();
        body.push(0);
        assert!(matches!(
            decode_body(t, s, &body),
            Err(MrtError::Malformed { .. })
        ));
    }
}
