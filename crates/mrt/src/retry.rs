//! Bounded retry with deterministic backoff for transient I/O.
//!
//! Long supervised runs over many archives hit transient stalls — an NFS
//! hiccup, an `EINTR`, a network filesystem timing out — that a one-shot
//! read turns into a lost file. [`RetryPolicy`] bounds how hard to try
//! (attempt count, exponential backoff, a per-file deadline) and
//! [`RetryingReader`] applies that policy to every `read` call, absorbing
//! transient failures and counting each retry so the ingest report can say
//! exactly how flaky the storage was.
//!
//! The backoff schedule is deterministic — `min(base · 2^(attempt-1), max)`
//! with no jitter — so a given fault schedule always produces the same
//! retry count and the same outcome, which is what the seeded fault tests
//! rely on.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How hard to retry transient I/O failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Once this much wall-clock time has elapsed on one file, stop
    /// retrying (the next transient error is surfaced as-is). `None`
    /// disables the deadline.
    pub per_file_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            per_file_deadline: Some(Duration::from_secs(30)),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (for tests and strict latency budgets).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            per_file_deadline: None,
        }
    }

    /// The deterministic backoff before retry number `retry` (1-based):
    /// `min(base · 2^(retry-1), max)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << (retry - 1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Whether another attempt is allowed after `done` attempts, given the
    /// time already spent on this file.
    pub fn may_retry(&self, done: u32, started: Instant) -> bool {
        if done >= self.max_attempts {
            return false;
        }
        match self.per_file_deadline {
            Some(deadline) => started.elapsed() < deadline,
            None => true,
        }
    }

    /// Run `op` under this policy: transient [`io::Error`]s (see
    /// [`is_transient`]) are retried with backoff until the attempt budget
    /// or the deadline runs out; other errors return immediately. Each
    /// retry bumps `retries`.
    pub fn run<T>(
        &self,
        retries: &AtomicU64,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let started = Instant::now();
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && self.may_retry(attempt, started) => {
                    std::thread::sleep(self.backoff(attempt));
                    retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether an I/O error is worth retrying: the kinds that describe a
/// moment-in-time condition rather than a property of the file.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

/// A `Read` adapter that retries transient failures of the inner reader
/// under a [`RetryPolicy`], sharing a retry counter with the caller (the
/// counter outlives the reader, which is consumed by the decode stack).
#[derive(Debug)]
pub struct RetryingReader<R> {
    inner: R,
    policy: RetryPolicy,
    started: Instant,
    retries: Arc<AtomicU64>,
}

impl<R: Read> RetryingReader<R> {
    /// Wrap `inner`, counting retries into `retries`.
    pub fn new(inner: R, policy: RetryPolicy, retries: Arc<AtomicU64>) -> Self {
        RetryingReader {
            inner,
            policy,
            started: Instant::now(),
            retries,
        }
    }
}

impl<R: Read> Read for RetryingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut attempt = 1u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if is_transient(&e) && self.policy.may_retry(attempt, self.started) => {
                    std::thread::sleep(self.policy.backoff(attempt));
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that fails the first `failures` read calls with `kind`,
    /// then serves the payload.
    struct FailThen {
        payload: Vec<u8>,
        pos: usize,
        failures: u32,
        kind: io::ErrorKind,
    }

    impl Read for FailThen {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(io::Error::new(self.kind, "injected"));
            }
            let n = buf.len().min(self.payload.len() - self.pos);
            buf[..n].copy_from_slice(&self.payload[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn quick_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            per_file_deadline: None,
        }
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(9),
            per_file_deadline: None,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(9));
        assert_eq!(p.backoff(30), Duration::from_millis(9), "shift is clamped");
    }

    #[test]
    fn transient_errors_are_absorbed_and_counted() {
        let retries = Arc::new(AtomicU64::new(0));
        let mut r = RetryingReader::new(
            FailThen {
                payload: b"hello".to_vec(),
                pos: 0,
                failures: 3,
                kind: io::ErrorKind::TimedOut,
            },
            quick_policy(4),
            retries.clone(),
        );
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        assert_eq!(retries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn attempt_budget_exhaustion_surfaces_the_error() {
        let retries = Arc::new(AtomicU64::new(0));
        let mut r = RetryingReader::new(
            FailThen {
                payload: b"x".to_vec(),
                pos: 0,
                failures: 10,
                kind: io::ErrorKind::TimedOut,
            },
            quick_policy(3),
            retries.clone(),
        );
        let err = r.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(retries.load(Ordering::Relaxed), 2, "3 attempts, 2 retries");
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let retries = Arc::new(AtomicU64::new(0));
        let mut r = RetryingReader::new(
            FailThen {
                payload: Vec::new(),
                pos: 0,
                failures: 5,
                kind: io::ErrorKind::NotFound,
            },
            quick_policy(8),
            retries.clone(),
        );
        assert_eq!(
            r.read(&mut [0u8; 4]).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn deadline_stops_retrying() {
        let policy = RetryPolicy {
            max_attempts: 1_000,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            per_file_deadline: Some(Duration::ZERO),
        };
        // Deadline already elapsed: the first transient error surfaces.
        assert!(!policy.may_retry(1, Instant::now() - Duration::from_secs(1)));
        let retries = AtomicU64::new(0);
        let err = policy
            .run(&retries, || -> io::Result<()> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "stall"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn zero_attempt_budget_never_retries() {
        // A budget of zero attempts is degenerate but must not loop or
        // panic: the operation still runs once (`run` is attempt-driven,
        // not permission-driven) and its first transient error surfaces
        // with nothing counted as a retry.
        let policy = quick_policy(0);
        assert!(!policy.may_retry(0, Instant::now()));
        assert!(!policy.may_retry(1, Instant::now()));
        let retries = AtomicU64::new(0);
        let mut calls = 0u32;
        let err = policy
            .run(&retries, || -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(calls, 1, "the operation runs exactly once");
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn deadline_expired_before_the_first_attempt() {
        // The deadline gates *retries*, not the first attempt: with the
        // deadline already in the past the operation still runs once, a
        // success is returned as-is, and a transient failure surfaces
        // immediately with zero retries.
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            per_file_deadline: Some(Duration::from_millis(5)),
        };
        let long_ago = Instant::now() - Duration::from_secs(60);
        assert!(!policy.may_retry(1, long_ago), "no retry budget remains");

        let retries = AtomicU64::new(0);
        let got = policy
            .run(&retries, || -> io::Result<u32> { Ok(11) })
            .unwrap();
        assert_eq!(got, 11, "an immediate success ignores the deadline");

        let policy = RetryPolicy {
            per_file_deadline: Some(Duration::ZERO),
            ..policy
        };
        let mut calls = 0u32;
        let err = policy
            .run(&retries, || -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::TimedOut, "stall"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls, 1);
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn final_attempt_success_counts_every_preceding_retry() {
        // Success on the very last allowed attempt: the result is Ok and
        // the counter records exactly max_attempts - 1 retries — the
        // accounting must not over-count the successful attempt itself.
        let retries = AtomicU64::new(0);
        let mut left = 2u32;
        let got = quick_policy(3)
            .run(&retries, || {
                if left > 0 {
                    left -= 1;
                    Err(io::Error::new(io::ErrorKind::TimedOut, "flap"))
                } else {
                    Ok("done")
                }
            })
            .unwrap();
        assert_eq!(got, "done");
        assert_eq!(retries.load(Ordering::Relaxed), 2, "3 attempts, 2 retries");

        // Same schedule against a deadline that has expired by the time
        // the success lands: an attempt already under way is never
        // abandoned, so the result is still Ok with the same accounting.
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            per_file_deadline: Some(Duration::from_secs(3600)),
        };
        let retries = AtomicU64::new(0);
        let mut left = 2u32;
        let got = policy
            .run(&retries, || {
                if left > 0 {
                    left -= 1;
                    Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
                } else {
                    Ok(99)
                }
            })
            .unwrap();
        assert_eq!(got, 99);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_retries_open_like_operations() {
        let retries = AtomicU64::new(0);
        let mut left = 2;
        let got = quick_policy(4)
            .run(&retries, || {
                if left > 0 {
                    left -= 1;
                    Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
                } else {
                    Ok(7)
                }
            })
            .unwrap();
        assert_eq!(got, 7);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }
}
