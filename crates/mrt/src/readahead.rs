//! Double-buffered readahead I/O.
//!
//! MRT decode alternates between pulling bytes off the supervised reader
//! chain and crunching them; on a spinning disk or a network filesystem the
//! pull stalls the crunch. [`Readahead`] moves the pull onto a producer
//! thread: it owns the underlying reader, fills fixed-size blocks, and
//! hands them to the consumer over a bounded channel (depth 2 — classic
//! double buffering: the producer fills block *n+1* while decode drains
//! block *n*). Consumed blocks are recycled back to the producer, so the
//! steady state allocates nothing.
//!
//! The consumer side implements [`Read`], so the whole thing slots
//! transparently *below* [`crate::recover::RecoveringReader`] (which still
//! does framing, resync, and byte accounting on exactly the bytes this
//! reader yields) and *above* [`crate::retry::RetryingReader`] (whose
//! retries run on the producer thread, against the shared retry counter).
//!
//! Blocks are filled **completely** (short reads from the inner reader are
//! looped) so the block count for a given input is `ceil(len / block)`
//! regardless of how the inner reader chunks its reads — that makes
//! `ingest/readahead_blocks` a deterministic metric. I/O errors are
//! delivered in-order, once, at the position where the producer hit them;
//! `Interrupted` is retried in place like every other reader in this crate.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default block size: big enough to amortize syscalls and channel hops,
/// small enough that two blocks in flight stay cache- and memory-friendly.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// Queue depth: one block being drained, one being filled.
const QUEUE_DEPTH: usize = 2;

/// A [`Read`] adapter that prefetches the underlying stream on a producer
/// thread. See the module docs for the contract.
#[derive(Debug)]
pub struct Readahead {
    rx: Option<Receiver<io::Result<Vec<u8>>>>,
    recycle: SyncSender<Vec<u8>>,
    current: Vec<u8>,
    pos: usize,
    done: bool,
    blocks: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Readahead {
    /// Spawn the producer thread over `inner` with the default block size.
    ///
    /// `blocks` is incremented once per block the consumer takes delivery
    /// of; pass a fresh counter (or one shared with an ingest report).
    pub fn new<R: Read + Send + 'static>(inner: R, blocks: Arc<AtomicU64>) -> Self {
        Self::with_block_size(inner, blocks, DEFAULT_BLOCK_SIZE)
    }

    /// [`Readahead::new`] with an explicit block size (tests use tiny
    /// blocks to force records to straddle block boundaries).
    pub fn with_block_size<R: Read + Send + 'static>(
        mut inner: R,
        blocks: Arc<AtomicU64>,
        block_size: usize,
    ) -> Self {
        assert!(block_size > 0, "readahead block size must be positive");
        let (tx, rx) = sync_channel::<io::Result<Vec<u8>>>(QUEUE_DEPTH);
        let (recycle, recycle_rx) = sync_channel::<Vec<u8>>(QUEUE_DEPTH + 1);
        let handle = std::thread::spawn(move || {
            producer(&mut inner, &tx, &recycle_rx, block_size);
        });
        Readahead {
            rx: Some(rx),
            recycle,
            current: Vec::new(),
            pos: 0,
            done: false,
            blocks,
            handle: Some(handle),
        }
    }

    /// Pull the next block into `current`. Returns `Ok(false)` at end of
    /// stream, `Err` (once) if the producer hit an I/O error.
    fn advance(&mut self) -> io::Result<bool> {
        // Recycle the drained block; if the producer already exited the
        // send just fails and the buffer drops.
        let spent = std::mem::take(&mut self.current);
        if spent.capacity() > 0 {
            let _ = self.recycle.try_send(spent);
        }
        self.pos = 0;
        let Some(rx) = &self.rx else {
            return Ok(false);
        };
        match rx.recv() {
            Ok(Ok(block)) => {
                self.blocks.fetch_add(1, Ordering::Relaxed);
                self.current = block;
                Ok(true)
            }
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            Err(_) => {
                // Channel closed: clean end of stream.
                self.done = true;
                Ok(false)
            }
        }
    }
}

impl Read for Readahead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos >= self.current.len() {
            if self.done || !self.advance()? {
                return Ok(0);
            }
        }
        let n = buf.len().min(self.current.len() - self.pos);
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Drop for Readahead {
    fn drop(&mut self) {
        // Close the delivery channel first so a producer blocked on send
        // wakes up and exits, then join it.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn producer<R: Read>(
    inner: &mut R,
    tx: &SyncSender<io::Result<Vec<u8>>>,
    recycle: &Receiver<Vec<u8>>,
    block_size: usize,
) {
    loop {
        let mut block = recycle.try_recv().unwrap_or_default();
        block.clear();
        block.resize(block_size, 0);
        let mut filled = 0;
        let mut fatal = None;
        loop {
            match inner.read(&mut block[filled..]) {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    if filled == block_size {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        // Bytes read before an error are still delivered (as a short
        // block), matching how a direct reader keeps them; the error
        // follows in order.
        block.truncate(filled);
        if filled > 0 && tx.send(Ok(block)).is_err() {
            return; // consumer gone
        }
        match fatal {
            Some(e) => {
                let _ = tx.send(Err(e));
                return;
            }
            None if filled == 0 => return, // EOF: dropping tx closes the channel
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(mut r: impl Read) -> Vec<u8> {
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn roundtrips_bytes_exactly() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for block in [1, 7, 4096, DEFAULT_BLOCK_SIZE] {
            let blocks = Arc::new(AtomicU64::new(0));
            let r = Readahead::with_block_size(
                std::io::Cursor::new(data.clone()),
                blocks.clone(),
                block,
            );
            assert_eq!(read_all(r), data, "block size {block}");
            assert_eq!(
                blocks.load(Ordering::Relaxed),
                data.len().div_ceil(block) as u64,
                "block count is deterministic at block size {block}"
            );
        }
    }

    #[test]
    fn empty_stream_yields_eof_and_zero_blocks() {
        let blocks = Arc::new(AtomicU64::new(0));
        let r = Readahead::new(std::io::Cursor::new(Vec::new()), blocks.clone());
        assert_eq!(read_all(r), Vec::<u8>::new());
        assert_eq!(blocks.load(Ordering::Relaxed), 0);
    }

    /// A reader that yields deliberately ragged short reads, then an error.
    struct Ragged {
        data: Vec<u8>,
        pos: usize,
        fail_at: Option<usize>,
    }

    impl Read for Ragged {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if let Some(f) = self.fail_at {
                if self.pos >= f {
                    return Err(io::Error::other("injected"));
                }
            }
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            // Short reads of varying size, never aligned with blocks.
            let n = buf.len().min(13).min(self.data.len() - self.pos);
            let n = n
                .min(self.fail_at.map_or(usize::MAX, |f| f - self.pos))
                .max(1);
            let n = n.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn short_reads_do_not_change_block_count() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 239) as u8).collect();
        let blocks = Arc::new(AtomicU64::new(0));
        let r = Readahead::with_block_size(
            Ragged {
                data: data.clone(),
                pos: 0,
                fail_at: None,
            },
            blocks.clone(),
            1024,
        );
        assert_eq!(read_all(r), data);
        assert_eq!(
            blocks.load(Ordering::Relaxed),
            data.len().div_ceil(1024) as u64
        );
    }

    #[test]
    fn io_error_is_delivered_in_order_once() {
        let data: Vec<u8> = vec![0xAB; 5000];
        let blocks = Arc::new(AtomicU64::new(0));
        let mut r = Readahead::with_block_size(
            Ragged {
                data: data.clone(),
                pos: 0,
                fail_at: Some(2500),
            },
            blocks.clone(),
            1024,
        );
        let mut got = Vec::new();
        let err = loop {
            let mut chunk = [0u8; 512];
            match r.read(&mut chunk) {
                Ok(0) => panic!("expected an error before EOF"),
                Ok(n) => got.extend_from_slice(&chunk[..n]),
                Err(e) => break e,
            }
        };
        assert_eq!(err.to_string(), "injected");
        // Every byte before the failure point arrived, in order, including
        // the partially filled block the error interrupted.
        assert_eq!(got, data[..2500].to_vec());
        // After the error, the stream reads as ended rather than repeating
        // the error forever.
        let mut chunk = [0u8; 16];
        assert_eq!(r.read(&mut chunk).unwrap(), 0);
    }

    #[test]
    fn drop_mid_stream_joins_the_producer() {
        let data: Vec<u8> = vec![7; DEFAULT_BLOCK_SIZE * 8];
        let blocks = Arc::new(AtomicU64::new(0));
        let mut r = Readahead::new(std::io::Cursor::new(data), blocks);
        let mut chunk = [0u8; 64];
        assert_eq!(r.read(&mut chunk).unwrap(), chunk.len());
        drop(r); // must not hang or leak the thread
    }
}
