//! Borrowed-view record decoding: the zero-copy hot path.
//!
//! [`crate::records::decode_body`] materializes every record as an owned
//! tree — `Vec<PathSegment>` per AS path, `Vec<Community>` per route — that
//! the observation layer immediately tears apart again. For bulk ingestion
//! that per-record heap churn dominates decode time, so this module parses
//! a record body **in place**: AS paths, community sets, and prefixes land
//! in a reusable [`RecordScratch`] arena (flat arrays, cleared but never
//! shrunk between records) and are handed to the sink as borrowed
//! [`ObservationView`]s. An [`ObservationStore`] sink interns directly from
//! the borrowed slices; nothing record-sized ever hits the allocator in
//! steady state.
//!
//! Correctness contract: this decoder is **bit-identical** to the owned
//! path. It performs exactly the same validation, in the same order, with
//! the same error strings, as `decode_body` + the owned observation fold —
//! the differential proptests in `tests/view_parity.rs` pin that equivalence
//! across the fault matrix. Record types that produce no observations in
//! bulk (peer index tables, state changes) are delegated to the owned
//! decoder outright; they are rare (once per file) and reusing the owned
//! code keeps parity trivially.
//!
//! Decode is two-phase so damage cannot leak: phase one
//! ([`RecordScratch::parse`]) validates the *whole* record into the arena
//! and a mid-record error discards everything; phase two
//! ([`RecordScratch::emit`]) pushes views to the sink only after the record
//! proved well-formed — mirroring how the owned path only folds a record
//! that decoded completely.
//!
//! [`ObservationStore`]: bgp_types::store::ObservationStore

use bgp_types::aspath::{SEG_SEQUENCE, SEG_SET};
use bgp_types::store::{ObservationSink, ObservationView};
use bgp_types::{AsPathView, Asn, Community, LargeCommunity, Origin, Prefix};

use crate::attrs::{flag, type_code, AttrCtx};
use crate::cursor::Cursor;
use crate::error::MrtError;
use crate::nlri::{self, Afi};
use crate::records::{
    self, MrtRecord, PeerEntry, SUBTYPE_BGP4MP_MESSAGE, SUBTYPE_BGP4MP_MESSAGE_AS4,
    SUBTYPE_BGP4MP_STATE_CHANGE_AS4, SUBTYPE_PEER_INDEX_TABLE, SUBTYPE_RIB_IPV4_UNICAST,
    SUBTYPE_RIB_IPV6_UNICAST, TYPE_BGP4MP, TYPE_TABLE_DUMP, TYPE_TABLE_DUMP_V2,
};

/// What to do with a semantically invalid entry (e.g. a RIB entry whose
/// peer index points outside the peer table) inside an otherwise decodable
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryPolicy {
    /// Abort the whole read (historic strict behavior).
    Abort,
    /// Drop the entry, keep the rest of the record and stream.
    Skip,
}

/// Where an entry's vantage point comes from at emit time.
#[derive(Debug, Clone, Copy)]
enum EntryOrigin {
    /// A RIB entry: resolve through the current peer index table.
    Peer(u16),
    /// The record itself named the peer ASN (updates, legacy table dumps).
    Direct(Asn),
}

/// One observation-producing entry parsed from the current record, as
/// ranges into the [`RecordScratch`] arenas.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    origin: EntryOrigin,
    time: u32,
    segs: (u32, u32),
    asns: (u32, u32),
    comms: (u32, u32),
    large: (u32, u32),
    prefixes: (u32, u32),
}

/// What the current record turned out to be.
#[derive(Debug, Default)]
enum ParsedKind {
    /// Nothing to emit (state-less message types, withdrawals).
    #[default]
    Quiet,
    /// A rare record delegated to the owned decoder (peer index table,
    /// state change) — folded owned at emit time.
    Owned(Box<MrtRecord>),
    /// View-parsed entries in the arenas.
    Entries,
}

/// Reusable per-stream decode arena. One instance lives for a whole file:
/// every vector is cleared between records but keeps its capacity, so after
/// the first few records the hot loop allocates nothing.
#[derive(Debug, Default)]
pub struct RecordScratch {
    kind: ParsedKind,
    /// `(tag, ASN count)` segment descriptors, all entries concatenated.
    segs: Vec<(u8, u32)>,
    /// Flat ASN values backing `segs`.
    asns: Vec<u32>,
    comms: Vec<Community>,
    large: Vec<LargeCommunity>,
    prefixes: Vec<Prefix>,
    /// MP_REACH NLRI staging: appended to `prefixes` *after* the plain NLRI
    /// so emission order matches the owned path (announced, then
    /// mp_announced).
    mp_prefixes: Vec<Prefix>,
    entries: Vec<EntryMeta>,
    /// High-water arena footprint in bytes, for the ingest report.
    max_footprint: usize,
}

impl RecordScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// High-water footprint of the arenas in bytes — the whole per-stream
    /// "heap" of the view decoder. Deterministic for a given input.
    pub fn arena_bytes(&self) -> u64 {
        self.max_footprint as u64
    }

    fn footprint(&self) -> usize {
        self.segs.capacity() * std::mem::size_of::<(u8, u32)>()
            + self.asns.capacity() * std::mem::size_of::<u32>()
            + self.comms.capacity() * std::mem::size_of::<Community>()
            + self.large.capacity() * std::mem::size_of::<LargeCommunity>()
            + self.prefixes.capacity() * std::mem::size_of::<Prefix>()
            + self.mp_prefixes.capacity() * std::mem::size_of::<Prefix>()
            + self.entries.capacity() * std::mem::size_of::<EntryMeta>()
    }

    fn clear(&mut self) {
        self.kind = ParsedKind::Quiet;
        self.segs.clear();
        self.asns.clear();
        self.comms.clear();
        self.large.clear();
        self.prefixes.clear();
        self.mp_prefixes.clear();
        self.entries.clear();
    }

    /// Phase one: validate and parse one record body into the arena.
    ///
    /// Mirrors [`records::decode_body`] exactly — same field order, same
    /// checks, same error strings — but without materializing owned
    /// records for the observation-producing types.
    pub(crate) fn parse(
        &mut self,
        timestamp: u32,
        mrt_type: u16,
        subtype: u16,
        body: &[u8],
    ) -> Result<(), MrtError> {
        self.clear();
        let mut cur = Cursor::new(body);
        match (mrt_type, subtype) {
            (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE)
            | (TYPE_BGP4MP, SUBTYPE_BGP4MP_STATE_CHANGE_AS4) => {
                // Rare, observation-free record types: the owned decoder is
                // the parity reference, so just use it (including its
                // trailing-bytes check).
                self.kind =
                    ParsedKind::Owned(Box::new(records::decode_body(mrt_type, subtype, body)?));
                return Ok(());
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
                self.parse_rib(&mut cur, Afi::Ipv4)?;
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
                self.parse_rib(&mut cur, Afi::Ipv6)?;
            }
            (TYPE_TABLE_DUMP, afi_raw) => {
                let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
                    context: "TABLE_DUMP subtype (AFI)",
                    value: afi_raw as u32,
                })?;
                self.parse_table_dump(&mut cur, afi)?;
            }
            (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4 | SUBTYPE_BGP4MP_MESSAGE) => {
                let as4 = subtype == SUBTYPE_BGP4MP_MESSAGE_AS4;
                self.parse_bgp4mp_message(&mut cur, as4, timestamp)?;
            }
            (t, s) => {
                return Err(MrtError::Unsupported {
                    context: "MRT type/subtype",
                    value: ((t as u32) << 16) | s as u32,
                })
            }
        }
        if !cur.is_empty() {
            return Err(MrtError::malformed(
                "MRT record body",
                format!("{} trailing byte(s)", cur.remaining()),
            ));
        }
        self.max_footprint = self.max_footprint.max(self.footprint());
        Ok(())
    }

    /// Phase two: resolve vantage points and push one [`ObservationView`]
    /// per (entry, prefix) into the sink, in the owned path's order.
    ///
    /// Returns the number of entries dropped under [`EntryPolicy::Skip`];
    /// under [`EntryPolicy::Abort`] the first unresolvable peer index
    /// aborts (entries before it have already been pushed, exactly like the
    /// owned fold).
    pub(crate) fn emit<S: ObservationSink>(
        &mut self,
        peers: &mut Vec<PeerEntry>,
        sink: &mut S,
        policy: EntryPolicy,
    ) -> Result<u64, MrtError> {
        match std::mem::take(&mut self.kind) {
            ParsedKind::Quiet => Ok(0),
            ParsedKind::Owned(rec) => {
                if let MrtRecord::PeerIndexTable(t) = *rec {
                    *peers = t.peers;
                }
                Ok(0)
            }
            ParsedKind::Entries => {
                let mut dropped = 0u64;
                for e in &self.entries {
                    let vp = match e.origin {
                        EntryOrigin::Direct(asn) => asn,
                        EntryOrigin::Peer(idx) => match peers.get(idx as usize) {
                            Some(peer) => peer.asn,
                            None if policy == EntryPolicy::Skip => {
                                dropped += 1;
                                continue;
                            }
                            None => {
                                return Err(MrtError::malformed(
                                    "RIB entry",
                                    format!("peer index {idx} out of range"),
                                ))
                            }
                        },
                    };
                    let path = AsPathView {
                        segs: &self.segs[e.segs.0 as usize..e.segs.1 as usize],
                        asns: &self.asns[e.asns.0 as usize..e.asns.1 as usize],
                    };
                    let communities = &self.comms[e.comms.0 as usize..e.comms.1 as usize];
                    let large_communities = &self.large[e.large.0 as usize..e.large.1 as usize];
                    for prefix in &self.prefixes[e.prefixes.0 as usize..e.prefixes.1 as usize] {
                        sink.push_observation_view(&ObservationView {
                            vp,
                            prefix: *prefix,
                            path,
                            communities,
                            large_communities,
                            time: e.time,
                        });
                    }
                }
                Ok(dropped)
            }
        }
    }

    fn parse_rib(&mut self, cur: &mut Cursor<'_>, afi: Afi) -> Result<(), MrtError> {
        let _sequence = cur.u32("RIB sequence")?;
        let prefix = nlri::decode_prefix(cur, afi)?;
        self.prefixes.push(prefix);
        let count = cur.u16("RIB entry count")? as usize;
        for _ in 0..count {
            let peer_index = cur.u16("RIB peer index")?;
            let originated_time = cur.u32("RIB originated time")?;
            let alen = cur.u16("RIB attribute length")? as usize;
            let mut acur = cur.slice(alen, "RIB attributes")?;
            let attrs = self.parse_attrs(&mut acur, AttrCtx::TABLE_DUMP_V2)?;
            self.entries.push(EntryMeta {
                origin: EntryOrigin::Peer(peer_index),
                time: originated_time,
                prefixes: (0, 1),
                ..attrs
            });
        }
        self.kind = ParsedKind::Entries;
        Ok(())
    }

    fn parse_table_dump(&mut self, cur: &mut Cursor<'_>, afi: Afi) -> Result<(), MrtError> {
        let _view = cur.u16("TABLE_DUMP view")?;
        let _sequence = cur.u16("TABLE_DUMP sequence")?;
        let addr = nlri::decode_addr(cur, afi)?;
        let len = cur.u8("TABLE_DUMP prefix length")?;
        let prefix = Prefix::new(addr, len)
            .ok_or_else(|| MrtError::malformed("TABLE_DUMP prefix", format!("/{len}")))?;
        let _status = cur.u8("TABLE_DUMP status")?;
        let originated_time = cur.u32("TABLE_DUMP originated time")?;
        let _peer_addr = nlri::decode_addr(cur, afi)?;
        let peer_asn = Asn::new(cur.u16("TABLE_DUMP peer ASN")? as u32);
        let alen = cur.u16("TABLE_DUMP attribute length")? as usize;
        let mut acur = cur.slice(alen, "TABLE_DUMP attributes")?;
        let attrs = self.parse_attrs(&mut acur, AttrCtx::BGP4MP_AS2)?;
        self.prefixes.push(prefix);
        self.entries.push(EntryMeta {
            origin: EntryOrigin::Direct(peer_asn),
            time: originated_time,
            prefixes: (self.prefixes.len() as u32 - 1, self.prefixes.len() as u32),
            ..attrs
        });
        self.kind = ParsedKind::Entries;
        Ok(())
    }

    fn parse_bgp4mp_message(
        &mut self,
        cur: &mut Cursor<'_>,
        as4: bool,
        timestamp: u32,
    ) -> Result<(), MrtError> {
        // Endpoints, exactly as records::decode_bgp4mp_endpoints.
        let peer_asn = if as4 {
            Asn::new(cur.u32("peer ASN")?)
        } else {
            Asn::new(cur.u16("peer ASN")? as u32)
        };
        let _local_asn = if as4 {
            Asn::new(cur.u32("local ASN")?)
        } else {
            Asn::new(cur.u16("local ASN")? as u32)
        };
        let _if_index = cur.u16("interface index")?;
        let afi_raw = cur.u16("BGP4MP AFI")?;
        let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
            context: "BGP4MP AFI",
            value: afi_raw as u32,
        })?;
        let _peer_addr = nlri::decode_addr(cur, afi)?;
        let _local_addr = nlri::decode_addr(cur, afi)?;
        let ctx = if as4 {
            AttrCtx::BGP4MP_AS4
        } else {
            AttrCtx::BGP4MP_AS2
        };

        // BGP message framing, exactly as bgpmsg::decode_message.
        let marker = cur.take(16, "BGP marker")?;
        if marker != [0xFF; 16] {
            return Err(MrtError::malformed("BGP marker", "not all-ones"));
        }
        let length = cur.u16("BGP length")? as usize;
        const HEADER_LEN: usize = crate::bgpmsg::HEADER_LEN;
        if length < HEADER_LEN {
            return Err(MrtError::malformed(
                "BGP length",
                format!("{length} < {HEADER_LEN}"),
            ));
        }
        let msg_type = cur.u8("BGP type")?;
        let mut body = cur.slice(length - HEADER_LEN, "BGP body")?;
        match msg_type {
            1 => {
                let _version = body.u8("OPEN version")?;
                let _asn = body.u16("OPEN ASN")?;
                let _hold_time = body.u16("OPEN hold time")?;
                let _id = body.take(4, "OPEN BGP id")?;
                let opt_len = body.u8("OPEN optional parameter length")? as usize;
                let _ = body.take(opt_len, "OPEN optional parameters")?;
            }
            2 => {
                let wlen = body.u16("withdrawn routes length")? as usize;
                let mut wcur = body.slice(wlen, "withdrawn routes")?;
                while !wcur.is_empty() {
                    let _ = nlri::decode_prefix(&mut wcur, Afi::Ipv4)?;
                }
                let alen = body.u16("path attribute length")? as usize;
                let mut acur = body.slice(alen, "path attributes")?;
                let attrs = if alen == 0 {
                    None
                } else {
                    Some(self.parse_attrs(&mut acur, ctx)?)
                };
                let nlri_start = self.prefixes.len();
                while !body.is_empty() {
                    let p = nlri::decode_prefix(&mut body, Afi::Ipv4)?;
                    self.prefixes.push(p);
                }
                // Observation order in the owned fold is plain NLRI first,
                // then MP_REACH NLRI — the staging vec preserves that even
                // though MP_REACH parsed before the trailing NLRI field.
                self.prefixes.append(&mut self.mp_prefixes);
                if let Some(attrs) = attrs {
                    self.entries.push(EntryMeta {
                        origin: EntryOrigin::Direct(peer_asn),
                        time: timestamp,
                        prefixes: (nlri_start as u32, self.prefixes.len() as u32),
                        ..attrs
                    });
                    self.kind = ParsedKind::Entries;
                }
            }
            3 => {
                let _code = body.u8("NOTIFICATION code")?;
                let _subcode = body.u8("NOTIFICATION subcode")?;
                let _ = body.take(body.remaining(), "NOTIFICATION data")?;
            }
            4 => {
                if !body.is_empty() {
                    return Err(MrtError::malformed("KEEPALIVE", "non-empty body"));
                }
            }
            other => {
                return Err(MrtError::Unsupported {
                    context: "BGP message type",
                    value: other as u32,
                })
            }
        }
        Ok(())
    }

    /// Parse one attribute block into the arenas, mirroring
    /// [`crate::attrs::decode_attrs`] check for check. Returns an
    /// [`EntryMeta`] template holding the path/community ranges (origin,
    /// time, and prefixes are filled by the caller).
    ///
    /// Duplicate-attribute semantics match the owned decoder: a second
    /// AS_PATH (or MP_REACH) *replaces* the first, while COMMUNITIES and
    /// LARGE_COMMUNITIES *append*.
    fn parse_attrs(&mut self, cur: &mut Cursor<'_>, ctx: AttrCtx) -> Result<EntryMeta, MrtError> {
        let seg_mark = self.segs.len();
        let asn_mark = self.asns.len();
        let comm_mark = self.comms.len();
        let large_mark = self.large.len();
        let mp_mark = self.mp_prefixes.len();
        while !cur.is_empty() {
            let flags = cur.u8("attribute flags")?;
            let code = cur.u8("attribute type")?;
            let len = if flags & flag::EXTENDED_LENGTH != 0 {
                cur.u16("attribute extended length")? as usize
            } else {
                cur.u8("attribute length")? as usize
            };
            let mut body = cur.slice(len, "attribute body")?;
            match code {
                type_code::ORIGIN => {
                    let v = body.u8("ORIGIN")?;
                    Origin::from_u8(v)
                        .ok_or_else(|| MrtError::malformed("ORIGIN", format!("value {v}")))?;
                }
                type_code::AS_PATH => {
                    // Last AS_PATH wins, like the owned assignment.
                    self.segs.truncate(seg_mark);
                    self.asns.truncate(asn_mark);
                    while !body.is_empty() {
                        let ty = body.u8("AS_PATH segment type")?;
                        let count = body.u8("AS_PATH segment count")? as usize;
                        for _ in 0..count {
                            let v = if ctx.as4 {
                                body.u32("AS_PATH ASN")?
                            } else {
                                body.u16("AS_PATH ASN")? as u32
                            };
                            self.asns.push(v);
                        }
                        let tag = match ty {
                            1 => SEG_SET,
                            2 => SEG_SEQUENCE,
                            other => {
                                return Err(MrtError::malformed(
                                    "AS_PATH",
                                    format!("unknown segment type {other}"),
                                ))
                            }
                        };
                        self.segs.push((tag, count as u32));
                    }
                }
                type_code::NEXT_HOP => {
                    let _ = nlri::decode_addr(&mut body, Afi::Ipv4)?;
                }
                type_code::MED => {
                    let _ = body.u32("MED")?;
                }
                type_code::LOCAL_PREF => {
                    let _ = body.u32("LOCAL_PREF")?;
                }
                type_code::ATOMIC_AGGREGATE => {}
                type_code::AGGREGATOR => {
                    let _asn = if ctx.as4 {
                        body.u32("AGGREGATOR ASN")?
                    } else {
                        body.u16("AGGREGATOR ASN")? as u32
                    };
                    let _ = nlri::decode_addr(&mut body, Afi::Ipv4)?;
                }
                type_code::COMMUNITIES => {
                    if len % 4 != 0 {
                        return Err(MrtError::malformed(
                            "COMMUNITIES",
                            format!("length {len} not a multiple of 4"),
                        ));
                    }
                    while !body.is_empty() {
                        self.comms
                            .push(Community::from_u32(body.u32("COMMUNITIES")?));
                    }
                }
                type_code::LARGE_COMMUNITIES => {
                    if len % 12 != 0 {
                        return Err(MrtError::malformed(
                            "LARGE_COMMUNITIES",
                            format!("length {len} not a multiple of 12"),
                        ));
                    }
                    while !body.is_empty() {
                        self.large.push(LargeCommunity::new(
                            body.u32("LARGE_COMMUNITIES global")?,
                            body.u32("LARGE_COMMUNITIES local1")?,
                            body.u32("LARGE_COMMUNITIES local2")?,
                        ));
                    }
                }
                type_code::MP_REACH_NLRI => {
                    // Last MP_REACH wins, like the owned assignment.
                    self.mp_prefixes.truncate(mp_mark);
                    self.parse_mp_reach(&mut body, ctx)?;
                }
                type_code::MP_UNREACH_NLRI => {
                    let afi_raw = body.u16("MP_UNREACH AFI")?;
                    let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
                        context: "MP_UNREACH AFI",
                        value: afi_raw as u32,
                    })?;
                    let safi = body.u8("MP_UNREACH SAFI")?;
                    if safi != 1 {
                        return Err(MrtError::Unsupported {
                            context: "MP_UNREACH SAFI",
                            value: safi as u32,
                        });
                    }
                    while !body.is_empty() {
                        let _ = nlri::decode_prefix(&mut body, afi)?;
                    }
                }
                _other => {} // unknown optional attributes tolerated
            }
        }
        Ok(EntryMeta {
            origin: EntryOrigin::Direct(Asn::new(0)), // caller overrides
            time: 0,                                  // caller overrides
            segs: (seg_mark as u32, self.segs.len() as u32),
            asns: (asn_mark as u32, self.asns.len() as u32),
            comms: (comm_mark as u32, self.comms.len() as u32),
            large: (large_mark as u32, self.large.len() as u32),
            prefixes: (0, 0), // caller overrides
        })
    }

    fn parse_mp_reach(&mut self, cur: &mut Cursor<'_>, ctx: AttrCtx) -> Result<(), MrtError> {
        if ctx.tdv2 {
            let nh_len = cur.u8("MP_REACH next-hop length")? as usize;
            let afi = match nh_len {
                4 => Afi::Ipv4,
                16 | 32 => Afi::Ipv6,
                other => {
                    return Err(MrtError::malformed(
                        "MP_REACH next-hop",
                        format!("unexpected length {other}"),
                    ))
                }
            };
            let _ = nlri::decode_addr(cur, afi)?;
            if nh_len == 32 {
                let _ = nlri::decode_addr(cur, Afi::Ipv6)?; // discard link-local
            }
            return Ok(());
        }
        let afi_raw = cur.u16("MP_REACH AFI")?;
        let afi = Afi::from_u16(afi_raw).ok_or(MrtError::Unsupported {
            context: "MP_REACH AFI",
            value: afi_raw as u32,
        })?;
        let safi = cur.u8("MP_REACH SAFI")?;
        if safi != 1 {
            return Err(MrtError::Unsupported {
                context: "MP_REACH SAFI",
                value: safi as u32,
            });
        }
        let nh_len = cur.u8("MP_REACH next-hop length")? as usize;
        let mut nh_cur = cur.slice(nh_len, "MP_REACH next-hop")?;
        match nh_len {
            4 => {
                let _ = nlri::decode_addr(&mut nh_cur, Afi::Ipv4)?;
            }
            16 | 32 => {
                let _ = nlri::decode_addr(&mut nh_cur, Afi::Ipv6)?;
            }
            other => {
                return Err(MrtError::malformed(
                    "MP_REACH next-hop",
                    format!("unexpected length {other}"),
                ))
            }
        }
        let _ = cur.u8("MP_REACH reserved")?;
        while !cur.is_empty() {
            let p = nlri::decode_prefix(cur, afi)?;
            self.mp_prefixes.push(p);
        }
        Ok(())
    }
}
