//! Errors produced while encoding or decoding MRT and BGP wire data.

use std::fmt;
use std::io;

/// An error from the MRT/BGP codec.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure while reading or writing a stream.
    Io(io::Error),
    /// The input ended before a complete record/field was read.
    ///
    /// `needed` is how many more bytes the decoder wanted; `context` names
    /// the field being decoded.
    Truncated {
        /// Field being decoded when the data ran out.
        context: &'static str,
        /// Additional bytes the decoder needed.
        needed: usize,
    },
    /// The bytes were well-framed but semantically invalid.
    Malformed {
        /// Field being decoded.
        context: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A record/message/attribute type this implementation does not handle.
    Unsupported {
        /// What kind of discriminator was unknown (e.g. "MRT type").
        context: &'static str,
        /// The unknown numeric value.
        value: u32,
    },
    /// A value too large to encode in its wire field (e.g. an attribute body
    /// over 65535 bytes).
    TooLong {
        /// Field being encoded.
        context: &'static str,
        /// The offending length.
        len: usize,
    },
    /// A lenient reader hit its configured error budget and stopped early.
    BudgetExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
}

/// The coarse kind of an [`MrtError`], used for error accounting: ingest
/// reports count decode failures per kind so operators can tell a rotten
/// archive (truncation, garbage) from a merely exotic one (unsupported
/// record types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrtErrorKind {
    /// [`MrtError::Io`].
    Io,
    /// [`MrtError::Truncated`].
    Truncated,
    /// [`MrtError::Malformed`].
    Malformed,
    /// [`MrtError::Unsupported`].
    Unsupported,
    /// [`MrtError::TooLong`].
    TooLong,
    /// [`MrtError::BudgetExceeded`].
    BudgetExceeded,
}

impl MrtError {
    /// Shorthand for [`MrtError::Malformed`].
    pub fn malformed(context: &'static str, reason: impl Into<String>) -> Self {
        MrtError::Malformed {
            context,
            reason: reason.into(),
        }
    }

    /// The coarse kind of this error, for counting.
    pub fn kind(&self) -> MrtErrorKind {
        match self {
            MrtError::Io(_) => MrtErrorKind::Io,
            MrtError::Truncated { .. } => MrtErrorKind::Truncated,
            MrtError::Malformed { .. } => MrtErrorKind::Malformed,
            MrtError::Unsupported { .. } => MrtErrorKind::Unsupported,
            MrtError::TooLong { .. } => MrtErrorKind::TooLong,
            MrtError::BudgetExceeded { .. } => MrtErrorKind::BudgetExceeded,
        }
    }

    /// Whether the stream position after this error is still trustworthy: the
    /// record was well-framed and fully consumed, so a reader can continue.
    /// Framing-level errors (I/O, truncation, budget) are not recoverable
    /// in-place — a plain reader must stop, a recovering reader must resync.
    pub fn is_record_local(&self) -> bool {
        matches!(
            self.kind(),
            MrtErrorKind::Malformed | MrtErrorKind::Unsupported | MrtErrorKind::TooLong
        )
    }
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::Truncated { context, needed } => {
                write!(f, "truncated {context}: {needed} more byte(s) needed")
            }
            MrtError::Malformed { context, reason } => {
                write!(f, "malformed {context}: {reason}")
            }
            MrtError::Unsupported { context, value } => {
                write!(f, "unsupported {context} {value}")
            }
            MrtError::TooLong { context, len } => {
                write!(f, "{context} too long to encode: {len} bytes")
            }
            MrtError::BudgetExceeded { limit } => {
                write!(
                    f,
                    "error budget exceeded: more than {limit} decode error(s)"
                )
            }
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MrtError::Truncated {
            context: "MRT header",
            needed: 4,
        };
        assert!(e.to_string().contains("MRT header"));
        let e = MrtError::malformed("AS_PATH", "segment overruns attribute");
        assert!(e.to_string().contains("AS_PATH"));
        let e = MrtError::Unsupported {
            context: "MRT type",
            value: 99,
        };
        assert!(e.to_string().contains("99"));
        let e = MrtError::TooLong {
            context: "view name",
            len: 70000,
        };
        assert!(e.to_string().contains("70000"));
        let e = MrtError::BudgetExceeded { limit: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn kinds_and_recoverability() {
        assert_eq!(
            MrtError::malformed("x", "y").kind(),
            MrtErrorKind::Malformed
        );
        assert!(MrtError::malformed("x", "y").is_record_local());
        assert!(MrtError::Unsupported {
            context: "MRT type",
            value: 99
        }
        .is_record_local());
        assert!(!MrtError::Truncated {
            context: "h",
            needed: 1
        }
        .is_record_local());
        assert!(!MrtError::BudgetExceeded { limit: 0 }.is_record_local());
    }

    #[test]
    fn io_error_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = MrtError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
