//! Streaming MRT reader.

use std::io::Read;

use crate::error::MrtError;
use crate::records::{self, TimestampedRecord};

/// Reads MRT records from any [`Read`], yielding them as an iterator.
///
/// A clean end-of-stream (EOF exactly at a record boundary) ends iteration;
/// EOF inside a header or body surfaces as [`MrtError::Truncated`] and ends
/// the stream (the position is unrecoverable). Records with unsupported
/// type/subtype or malformed bodies surface as errors **without** ending
/// the stream — the record is framed by its header length, so the reader
/// can continue past it, the way deployed pipelines skip the record types
/// they do not understand (e.g. `GEO_PEER_TABLE`).
#[derive(Debug)]
pub struct MrtReader<R> {
    inner: R,
    /// Reusable body buffer: resized per record, never reallocated once it
    /// has grown to the largest record seen.
    body: Vec<u8>,
    records_read: u64,
    records_skipped: u64,
    records_truncated: u64,
    fused: bool,
}

impl<R: Read> MrtReader<R> {
    /// Wrap an input stream.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            body: Vec::new(),
            records_read: 0,
            records_skipped: 0,
            records_truncated: 0,
            fused: false,
        }
    }

    /// Number of records successfully decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Number of well-framed records whose bodies could not be decoded
    /// (unsupported types, semantic errors) — reported then skipped.
    /// Truncated records are counted by [`MrtReader::records_truncated`],
    /// never here.
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// Number of records cut short by end-of-stream (header or body): at
    /// most 1 for a plain reader, since truncation fuses the iterator.
    pub fn records_truncated(&self) -> u64 {
        self.records_truncated
    }

    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, MrtError> {
        // Distinguish "no more records" from "record cut short".
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(MrtError::Truncated {
                        context: "MRT header",
                        needed: buf.len() - filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    fn read_record(&mut self) -> Result<Option<TimestampedRecord>, MrtError> {
        let mut header = [0u8; 12];
        if !self.read_exact_or_eof(&mut header)? {
            return Ok(None);
        }
        let timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
        let mrt_type = u16::from_be_bytes([header[4], header[5]]);
        let subtype = u16::from_be_bytes([header[6], header[7]]);
        let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
        self.body.clear();
        // Read through `Take::read_to_end` rather than into a pre-sized
        // buffer: the reused buffer grows only as far as the stream actually
        // delivers, so a corrupted length field cannot force a multi-GB
        // zeroed allocation, and a short body still reports exactly how many
        // bytes were missing.
        self.inner
            .by_ref()
            .take(length as u64)
            .read_to_end(&mut self.body)?;
        if self.body.len() < length {
            return Err(MrtError::Truncated {
                context: "MRT record body",
                needed: length - self.body.len(),
            });
        }
        match records::decode_body(mrt_type, subtype, &self.body) {
            Ok(record) => {
                self.records_read += 1;
                Ok(Some(TimestampedRecord { timestamp, record }))
            }
            Err(e) => {
                // The body was fully consumed, so the stream position is
                // still sound: report the error but stay usable.
                self.records_skipped += 1;
                Err(e)
            }
        }
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<TimestampedRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        match self.read_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.fused = true;
                None
            }
            Err(e @ (MrtError::Io(_) | MrtError::Truncated { .. })) => {
                // An I/O or framing error leaves the stream position
                // unknown; stop after reporting it rather than spinning.
                if matches!(e, MrtError::Truncated { .. }) {
                    self.records_truncated += 1;
                }
                self.fused = true;
                Some(Err(e))
            }
            Err(e) => Some(Err(e)), // body-level error: skippable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Bgp4mpStateChange, BgpState, MrtRecord};
    use crate::writer::MrtWriter;
    use bgp_types::Asn;
    use std::net::IpAddr;

    fn state_change() -> MrtRecord {
        MrtRecord::StateChange(Bgp4mpStateChange {
            peer_asn: Asn::new(64500),
            local_asn: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::from([192, 0, 2, 2]),
            local_addr: IpAddr::from([192, 0, 2, 1]),
            old_state: BgpState::Idle,
            new_state: BgpState::Established,
        })
    }

    #[test]
    fn multiple_records_in_order() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for ts in [10, 20, 30] {
            w.write_record(ts, &state_change()).unwrap();
        }
        let recs: Vec<_> = MrtReader::new(&buf[..]).map(Result::unwrap).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.timestamp).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let recs: Vec<_> = MrtReader::new(&[][..]).collect();
        assert!(recs.is_empty());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf)
            .write_record(1, &state_change())
            .unwrap();
        buf.truncate(6); // mid-header
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(r.next(), Some(Err(MrtError::Truncated { .. }))));
        assert!(r.next().is_none()); // fused after error
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf)
            .write_record(1, &state_change())
            .unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(r.next(), Some(Err(MrtError::Truncated { .. }))));
    }

    #[test]
    fn truncated_body_reports_accurate_needed() {
        // Header claims a body longer than what remains: `needed` must be
        // exactly the missing byte count, not the whole body length.
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf)
            .write_record(1, &state_change())
            .unwrap();
        let body_len = buf.len() - 12;
        buf.truncate(buf.len() - 5); // 5 body bytes missing
        let mut r = MrtReader::new(&buf[..]);
        match r.next() {
            Some(Err(MrtError::Truncated { context, needed })) => {
                assert_eq!(context, "MRT record body");
                assert_eq!(needed, 5);
                assert!(needed < body_len);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        // Truncation is accounted separately from body-level skips.
        assert_eq!(r.records_truncated(), 1);
        assert_eq!(r.records_skipped(), 0);
        assert_eq!(r.records_read(), 0);
        assert!(r.next().is_none());
    }

    #[test]
    fn oversized_length_field_is_truncation_not_skip() {
        // A header whose length field exceeds the remaining stream entirely.
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_be_bytes()); // timestamp
        buf.extend_from_slice(&13u16.to_be_bytes()); // TABLE_DUMP_V2
        buf.extend_from_slice(&2u16.to_be_bytes()); // RIB_IPV4_UNICAST
        buf.extend_from_slice(&1000u32.to_be_bytes()); // body "length"
        buf.extend_from_slice(&[0xAB; 24]); // only 24 bytes follow
        let mut r = MrtReader::new(&buf[..]);
        match r.next() {
            Some(Err(MrtError::Truncated { needed, .. })) => assert_eq!(needed, 1000 - 24),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(
            (r.records_read(), r.records_skipped(), r.records_truncated()),
            (0, 0, 1)
        );
    }

    #[test]
    fn counters_partition_outcomes() {
        // good, unsupported, good, truncated: each outcome lands in exactly
        // one counter.
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        w.write_record(1, &state_change()).unwrap();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&99u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&[0xAA; 4]);
        MrtWriter::new(&mut buf)
            .write_record(3, &state_change())
            .unwrap();
        let tail = buf.len();
        MrtWriter::new(&mut buf)
            .write_record(4, &state_change())
            .unwrap();
        buf.truncate(tail + 13); // cut the last record mid-body
        let mut r = MrtReader::new(&buf[..]);
        let outcomes: Vec<bool> = r.by_ref().map(|item| item.is_ok()).collect();
        assert_eq!(outcomes, vec![true, false, true, false]);
        assert_eq!(r.records_read(), 2);
        assert_eq!(r.records_skipped(), 1);
        assert_eq!(r.records_truncated(), 1);
    }

    #[test]
    fn unsupported_record_is_skippable() {
        // A good record, an unknown-type record, then another good one:
        // the reader reports the middle error and keeps going.
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        w.write_record(1, &state_change()).unwrap();
        // Hand-craft an unsupported record: type 99, subtype 0, 4-byte body.
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&99u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&[0xAA; 4]);
        let tail_start = buf.len();
        MrtWriter::new(&mut buf)
            .write_record(3, &state_change())
            .unwrap();
        assert!(buf.len() > tail_start);

        let mut r = MrtReader::new(&buf[..]);
        assert!(r.next().unwrap().is_ok());
        assert!(matches!(r.next(), Some(Err(MrtError::Unsupported { .. }))));
        let third = r.next().unwrap().unwrap();
        assert_eq!(third.timestamp, 3);
        assert!(r.next().is_none());
        assert_eq!(r.records_read(), 2);
        assert_eq!(r.records_skipped(), 1);
    }

    #[test]
    fn read_observations_skips_undecodable_records() {
        use crate::obs::{read_observations, write_rib_dump};
        use bgp_types::Observation;

        let observations = vec![Observation {
            vp: Asn::new(64500),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: "64500 1299 64496".parse().unwrap(),
            communities: vec![],
            large_communities: vec![],
            time: 9,
        }];
        let mut buf = Vec::new();
        // Unsupported record first, then a valid dump.
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&99u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0, 0]);
        write_rib_dump(&mut buf, 9, &observations).unwrap();
        let back = read_observations(&buf[..]).unwrap();
        assert_eq!(back, observations);
    }

    #[test]
    fn records_read_counts() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        w.write_record(1, &state_change()).unwrap();
        w.write_record(2, &state_change()).unwrap();
        let mut r = MrtReader::new(&buf[..]);
        for rec in r.by_ref() {
            rec.unwrap();
        }
        assert_eq!(r.records_read(), 2);
    }
}
