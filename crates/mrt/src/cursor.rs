//! Checked byte cursor used by every decoder in this crate.
//!
//! `bytes::Buf` panics on underflow; wire parsers must instead surface
//! truncation as an error, so this thin wrapper performs bounds-checked
//! reads that return [`MrtError::Truncated`].

use crate::error::MrtError;

/// A bounds-checked reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes as a slice.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], MrtError> {
        if self.remaining() < n {
            return Err(MrtError::Truncated {
                context,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Split off a sub-cursor over the next `n` bytes.
    pub fn slice(&mut self, n: usize, context: &'static str) -> Result<Cursor<'a>, MrtError> {
        Ok(Cursor::new(self.take(n, context)?))
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, MrtError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, MrtError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, MrtError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_order() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u8("a").unwrap(), 1);
        assert_eq!(c.u16("b").unwrap(), 0x0203);
        assert_eq!(c.u32("c").unwrap(), 0x0405_0607);
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let mut c = Cursor::new(&[0x01]);
        match c.u32("field") {
            Err(MrtError::Truncated { context, needed }) => {
                assert_eq!(context, "field");
                assert_eq!(needed, 3);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn slice_limits_sub_reads() {
        let data = [1, 2, 3, 4];
        let mut c = Cursor::new(&data);
        let mut sub = c.slice(2, "sub").unwrap();
        assert_eq!(sub.u16("x").unwrap(), 0x0102);
        assert!(sub.u8("y").is_err());
        assert_eq!(c.remaining(), 2);
    }
}
