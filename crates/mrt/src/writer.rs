//! Streaming MRT writer.

use std::io::Write;
use std::net::IpAddr;

use bgp_types::{Asn, Prefix, RouteAttrs};

use crate::attrs::{AttrCtx, EncodeOpts};
use crate::bgpmsg;
use crate::error::MrtError;
use crate::records::{self, MrtRecord, SUBTYPE_BGP4MP_MESSAGE_AS4, TYPE_BGP4MP};

/// Writes MRT records (RFC 6396 common header + body) to any [`Write`].
///
/// The writer is format-only: callers are responsible for ordering (e.g. the
/// `PEER_INDEX_TABLE` before RIB records, as collectors do).
#[derive(Debug)]
pub struct MrtWriter<W> {
    inner: W,
    records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wrap an output stream.
    pub fn new(inner: W) -> Self {
        MrtWriter {
            inner,
            records_written: 0,
        }
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Consume the writer, returning the underlying stream.
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn write_raw(
        &mut self,
        timestamp: u32,
        mrt_type: u16,
        subtype: u16,
        body: &[u8],
    ) -> Result<(), MrtError> {
        if body.len() > u32::MAX as usize {
            return Err(MrtError::TooLong {
                context: "MRT record body",
                len: body.len(),
            });
        }
        self.inner.write_all(&timestamp.to_be_bytes())?;
        self.inner.write_all(&mrt_type.to_be_bytes())?;
        self.inner.write_all(&subtype.to_be_bytes())?;
        self.inner.write_all(&(body.len() as u32).to_be_bytes())?;
        self.inner.write_all(body)?;
        self.records_written += 1;
        Ok(())
    }

    /// Write one record with the given header timestamp.
    pub fn write_record(&mut self, timestamp: u32, record: &MrtRecord) -> Result<(), MrtError> {
        let (t, s, body) = records::encode_body(record)?;
        self.write_raw(timestamp, t, s, &body)
    }

    /// Write a `BGP4MP_MESSAGE_AS4` record carrying an UPDATE that announces
    /// `announced` with attributes `route` and withdraws `withdrawn`.
    ///
    /// IPv6 prefixes are routed into MP_REACH/MP_UNREACH automatically.
    #[allow(clippy::too_many_arguments)]
    pub fn write_update(
        &mut self,
        timestamp: u32,
        peer_asn: Asn,
        local_asn: Asn,
        peer_addr: IpAddr,
        local_addr: IpAddr,
        route: &RouteAttrs,
        announced: &[Prefix],
        withdrawn: &[Prefix],
    ) -> Result<(), MrtError> {
        let (v4a, v6a): (Vec<Prefix>, Vec<Prefix>) = announced.iter().partition(|p| p.is_ipv4());
        let (v4w, v6w): (Vec<Prefix>, Vec<Prefix>) = withdrawn.iter().partition(|p| p.is_ipv4());
        let opts = EncodeOpts {
            mp_announced: v6a,
            mp_withdrawn: v6w,
            aggregator: None,
        };
        let msg = bgpmsg::encode_update(route, AttrCtx::BGP4MP_AS4, &opts, &v4a, &v4w)?;
        let body =
            records::encode_message_body(peer_asn, local_asn, 0, peer_addr, local_addr, &msg)?;
        self.write_raw(timestamp, TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, &body)
    }

    /// Flush the underlying stream.
    pub fn flush(&mut self) -> Result<(), MrtError> {
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgpmsg::BgpMessage;
    use crate::reader::MrtReader;
    use bgp_types::{AsPath, Community};

    #[test]
    fn update_writer_reader_roundtrip() {
        let mut route = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(64500), Asn::new(1299)]),
            IpAddr::from([192, 0, 2, 2]),
        );
        route.add_community(Community::new(1299, 2569));
        let announced: Vec<Prefix> = vec![
            "192.0.2.0/24".parse().unwrap(),
            "2001:db8:200::/48".parse().unwrap(),
        ];
        let withdrawn: Vec<Prefix> = vec!["198.51.100.0/24".parse().unwrap()];

        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        w.write_update(
            1_682_899_200,
            Asn::new(64500),
            Asn::new(6447),
            IpAddr::from([192, 0, 2, 2]),
            IpAddr::from([192, 0, 2, 1]),
            &route,
            &announced,
            &withdrawn,
        )
        .unwrap();
        assert_eq!(w.records_written(), 1);

        let rec = MrtReader::new(&buf[..]).next().unwrap().unwrap();
        assert_eq!(rec.timestamp, 1_682_899_200);
        match rec.record {
            MrtRecord::Message(m) => {
                assert_eq!(m.peer_asn, Asn::new(64500));
                match m.message {
                    BgpMessage::Update(u) => {
                        let got: Vec<Prefix> = u.all_announced().copied().collect();
                        assert_eq!(got.len(), 2);
                        assert!(got.contains(&announced[0]));
                        assert!(got.contains(&announced[1]));
                        assert_eq!(u.withdrawn, withdrawn);
                        let attrs = u.attrs.unwrap();
                        assert_eq!(attrs.route.communities, route.communities);
                        assert_eq!(attrs.route.as_path, route.as_path);
                    }
                    other => panic!("expected update, got {other:?}"),
                }
            }
            other => panic!("expected message, got {other:?}"),
        }
    }
}
