//! BGP message framing (RFC 4271 §4) and the UPDATE body.
//!
//! `BGP4MP` MRT records embed complete BGP messages — marker, length, type,
//! body. This module encodes and decodes the four message types, with full
//! support for UPDATE (the only one carrying routes) and enough of
//! OPEN/NOTIFICATION/KEEPALIVE to round-trip session traces.

use std::net::Ipv4Addr;

use bytes::BufMut;

use bgp_types::{Prefix, RouteAttrs};

use crate::attrs::{self, AttrCtx, DecodedAttrs, EncodeOpts};
use crate::cursor::Cursor;
use crate::error::MrtError;
use crate::nlri::{self, Afi};

/// BGP message header length: 16-byte marker + 2-byte length + 1-byte type.
pub const HEADER_LEN: usize = 19;
/// Maximum message size with RFC 8654 extended messages.
pub const MAX_MESSAGE_LEN: usize = 65535;

/// A decoded BGP message.
///
/// UPDATE dominates the size (it carries routes) and also dominates the
/// population — boxing it would add a pointer chase to the hot path for no
/// practical memory win, so the size-difference lint is waived.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum BgpMessage {
    /// OPEN (type 1).
    Open(BgpOpen),
    /// UPDATE (type 2).
    Update(BgpUpdate),
    /// NOTIFICATION (type 3).
    Notification(BgpNotification),
    /// KEEPALIVE (type 4).
    Keepalive,
}

/// A BGP OPEN message (RFC 4271 §4.2), without optional parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpOpen {
    /// Protocol version; always 4.
    pub version: u8,
    /// The sender's ASN (AS_TRANS when the real ASN needs 4 bytes).
    pub asn: u16,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// The sender's BGP identifier.
    pub bgp_id: Ipv4Addr,
}

/// A BGP NOTIFICATION message (RFC 4271 §4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpNotification {
    /// Error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// A decoded BGP UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgpUpdate {
    /// IPv4 prefixes withdrawn in the fixed withdrawn-routes field.
    pub withdrawn: Vec<Prefix>,
    /// Decoded path attributes (absent in a pure-withdrawal UPDATE).
    pub attrs: Option<DecodedAttrs>,
    /// IPv4 prefixes announced in the trailing NLRI field.
    pub announced: Vec<Prefix>,
}

impl BgpUpdate {
    /// All announced prefixes: plain NLRI plus MP_REACH (IPv6).
    pub fn all_announced(&self) -> impl Iterator<Item = &Prefix> {
        self.announced
            .iter()
            .chain(self.attrs.iter().flat_map(|a| a.mp_announced.iter()))
    }

    /// All withdrawn prefixes: fixed field plus MP_UNREACH.
    pub fn all_withdrawn(&self) -> impl Iterator<Item = &Prefix> {
        self.withdrawn
            .iter()
            .chain(self.attrs.iter().flat_map(|a| a.mp_withdrawn.iter()))
    }
}

fn frame(msg_type: u8, body: &[u8]) -> Result<Vec<u8>, MrtError> {
    let total = HEADER_LEN + body.len();
    if total > MAX_MESSAGE_LEN {
        return Err(MrtError::TooLong {
            context: "BGP message",
            len: total,
        });
    }
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&[0xFF; 16]);
    out.put_u16(total as u16);
    out.put_u8(msg_type);
    out.extend_from_slice(body);
    Ok(out)
}

/// Encode an UPDATE announcing `announced` (IPv4, via NLRI; put IPv6 in
/// `opts.mp_announced`) with the given attributes, withdrawing `withdrawn`.
pub fn encode_update(
    route: &RouteAttrs,
    ctx: AttrCtx,
    opts: &EncodeOpts,
    announced: &[Prefix],
    withdrawn: &[Prefix],
) -> Result<Vec<u8>, MrtError> {
    let mut body = Vec::new();
    let mut w = Vec::new();
    for p in withdrawn {
        if !p.is_ipv4() {
            return Err(MrtError::malformed(
                "withdrawn routes",
                "IPv6 withdrawals must use MP_UNREACH (opts.mp_withdrawn)",
            ));
        }
        nlri::encode_prefix(&mut w, p);
    }
    if w.len() > u16::MAX as usize {
        return Err(MrtError::TooLong {
            context: "withdrawn routes",
            len: w.len(),
        });
    }
    body.put_u16(w.len() as u16);
    body.extend_from_slice(&w);

    let attr_block =
        if announced.is_empty() && opts.mp_announced.is_empty() && opts.mp_withdrawn.is_empty() {
            Vec::new() // pure withdrawal: no attributes at all
        } else {
            attrs::encode_attrs(route, ctx, opts)?
        };
    if attr_block.len() > u16::MAX as usize {
        return Err(MrtError::TooLong {
            context: "path attributes",
            len: attr_block.len(),
        });
    }
    body.put_u16(attr_block.len() as u16);
    body.extend_from_slice(&attr_block);

    for p in announced {
        if !p.is_ipv4() {
            return Err(MrtError::malformed(
                "NLRI",
                "IPv6 announcements must use MP_REACH (opts.mp_announced)",
            ));
        }
        nlri::encode_prefix(&mut body, p);
    }
    frame(2, &body)
}

/// Encode an UPDATE that only withdraws IPv4 prefixes.
pub fn encode_withdrawal(withdrawn: &[Prefix]) -> Result<Vec<u8>, MrtError> {
    encode_update(
        &RouteAttrs::default(),
        AttrCtx::BGP4MP_AS4,
        &EncodeOpts::default(),
        &[],
        withdrawn,
    )
}

/// Encode a KEEPALIVE message.
pub fn encode_keepalive() -> Vec<u8> {
    frame(4, &[]).expect("keepalive fits")
}

/// Encode an OPEN message (no optional parameters).
pub fn encode_open(open: &BgpOpen) -> Vec<u8> {
    let mut body = Vec::with_capacity(10);
    body.put_u8(open.version);
    body.put_u16(open.asn);
    body.put_u16(open.hold_time);
    body.extend_from_slice(&open.bgp_id.octets());
    body.put_u8(0); // optional parameters length
    frame(1, &body).expect("open fits")
}

/// Encode a NOTIFICATION message.
pub fn encode_notification(n: &BgpNotification) -> Result<Vec<u8>, MrtError> {
    let mut body = Vec::with_capacity(2 + n.data.len());
    body.put_u8(n.code);
    body.put_u8(n.subcode);
    body.extend_from_slice(&n.data);
    frame(3, &body)
}

/// Decode one complete BGP message from `cur`.
pub fn decode_message(cur: &mut Cursor<'_>, ctx: AttrCtx) -> Result<BgpMessage, MrtError> {
    let marker = cur.take(16, "BGP marker")?;
    if marker != [0xFF; 16] {
        return Err(MrtError::malformed("BGP marker", "not all-ones"));
    }
    let length = cur.u16("BGP length")? as usize;
    if length < HEADER_LEN {
        return Err(MrtError::malformed(
            "BGP length",
            format!("{length} < {HEADER_LEN}"),
        ));
    }
    let msg_type = cur.u8("BGP type")?;
    let mut body = cur.slice(length - HEADER_LEN, "BGP body")?;
    match msg_type {
        1 => {
            let version = body.u8("OPEN version")?;
            let asn = body.u16("OPEN ASN")?;
            let hold_time = body.u16("OPEN hold time")?;
            let id = body.take(4, "OPEN BGP id")?;
            let opt_len = body.u8("OPEN optional parameter length")? as usize;
            let _ = body.take(opt_len, "OPEN optional parameters")?;
            Ok(BgpMessage::Open(BgpOpen {
                version,
                asn,
                hold_time,
                bgp_id: Ipv4Addr::new(id[0], id[1], id[2], id[3]),
            }))
        }
        2 => {
            let wlen = body.u16("withdrawn routes length")? as usize;
            let mut wcur = body.slice(wlen, "withdrawn routes")?;
            let withdrawn = nlri::decode_prefix_run(&mut wcur, Afi::Ipv4)?;
            let alen = body.u16("path attribute length")? as usize;
            let mut acur = body.slice(alen, "path attributes")?;
            let attrs = if alen == 0 {
                None
            } else {
                Some(attrs::decode_attrs(&mut acur, ctx)?)
            };
            let announced = nlri::decode_prefix_run(&mut body, Afi::Ipv4)?;
            Ok(BgpMessage::Update(BgpUpdate {
                withdrawn,
                attrs,
                announced,
            }))
        }
        3 => {
            let code = body.u8("NOTIFICATION code")?;
            let subcode = body.u8("NOTIFICATION subcode")?;
            let data = body.take(body.remaining(), "NOTIFICATION data")?.to_vec();
            Ok(BgpMessage::Notification(BgpNotification {
                code,
                subcode,
                data,
            }))
        }
        4 => {
            if !body.is_empty() {
                return Err(MrtError::malformed("KEEPALIVE", "non-empty body"));
            }
            Ok(BgpMessage::Keepalive)
        }
        other => Err(MrtError::Unsupported {
            context: "BGP message type",
            value: other as u32,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn, Community};
    use std::net::IpAddr;

    fn sample_route() -> RouteAttrs {
        let mut r = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(7018), Asn::new(1299), Asn::new(64496)]),
            IpAddr::from([203, 0, 113, 1]),
        );
        r.add_community(Community::new(1299, 2569));
        r
    }

    #[test]
    fn update_roundtrip() {
        let route = sample_route();
        let announced = vec!["192.0.2.0/24".parse().unwrap()];
        let withdrawn = vec!["198.51.100.0/24".parse().unwrap()];
        let wire = encode_update(
            &route,
            AttrCtx::BGP4MP_AS4,
            &EncodeOpts::default(),
            &announced,
            &withdrawn,
        )
        .unwrap();
        let mut cur = Cursor::new(&wire);
        match decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap() {
            BgpMessage::Update(u) => {
                assert_eq!(u.announced, announced);
                assert_eq!(u.withdrawn, withdrawn);
                assert_eq!(u.attrs.unwrap().route, route);
            }
            other => panic!("expected update, got {other:?}"),
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn pure_withdrawal_has_no_attributes() {
        let withdrawn: Vec<Prefix> = vec!["192.0.2.0/24".parse().unwrap()];
        let wire = encode_withdrawal(&withdrawn).unwrap();
        let mut cur = Cursor::new(&wire);
        match decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap() {
            BgpMessage::Update(u) => {
                assert_eq!(u.withdrawn, withdrawn);
                assert!(u.attrs.is_none());
                assert!(u.announced.is_empty());
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn ipv6_update_via_mp_reach() {
        let mut route = sample_route();
        route.next_hop = "2001:db8::1".parse().unwrap();
        let p: Prefix = "2001:db8:100::/48".parse().unwrap();
        let opts = EncodeOpts {
            mp_announced: vec![p],
            ..Default::default()
        };
        let wire = encode_update(&route, AttrCtx::BGP4MP_AS4, &opts, &[], &[]).unwrap();
        let mut cur = Cursor::new(&wire);
        match decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap() {
            BgpMessage::Update(u) => {
                assert!(u.announced.is_empty());
                assert_eq!(u.all_announced().collect::<Vec<_>>(), vec![&p]);
                assert_eq!(u.attrs.unwrap().route.next_hop, route.next_hop);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn ipv6_in_plain_nlri_is_an_encode_error() {
        let route = sample_route();
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(encode_update(
            &route,
            AttrCtx::BGP4MP_AS4,
            &EncodeOpts::default(),
            &[p],
            &[]
        )
        .is_err());
        assert!(encode_update(
            &route,
            AttrCtx::BGP4MP_AS4,
            &EncodeOpts::default(),
            &[],
            &[p]
        )
        .is_err());
    }

    #[test]
    fn keepalive_roundtrip() {
        let wire = encode_keepalive();
        assert_eq!(wire.len(), HEADER_LEN);
        let mut cur = Cursor::new(&wire);
        assert_eq!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap(),
            BgpMessage::Keepalive
        );
    }

    #[test]
    fn open_roundtrip() {
        let open = BgpOpen {
            version: 4,
            asn: 23456,
            hold_time: 180,
            bgp_id: Ipv4Addr::new(192, 0, 2, 33),
        };
        let wire = encode_open(&open);
        let mut cur = Cursor::new(&wire);
        assert_eq!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap(),
            BgpMessage::Open(open)
        );
    }

    #[test]
    fn notification_roundtrip() {
        let n = BgpNotification {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        };
        let wire = encode_notification(&n).unwrap();
        let mut cur = Cursor::new(&wire);
        assert_eq!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4).unwrap(),
            BgpMessage::Notification(n)
        );
    }

    #[test]
    fn bad_marker_rejected() {
        let mut wire = encode_keepalive();
        wire[0] = 0;
        let mut cur = Cursor::new(&wire);
        assert!(matches!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Malformed { .. })
        ));
    }

    #[test]
    fn short_length_rejected() {
        let mut wire = encode_keepalive();
        wire[16] = 0;
        wire[17] = 5; // length < 19
        let mut cur = Cursor::new(&wire);
        assert!(matches!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut wire = encode_keepalive();
        wire[18] = 9;
        let mut cur = Cursor::new(&wire);
        assert!(matches!(
            decode_message(&mut cur, AttrCtx::BGP4MP_AS4),
            Err(MrtError::Unsupported { .. })
        ));
    }

    #[test]
    fn nonempty_keepalive_rejected() {
        let wire = frame(4, &[0]).unwrap();
        let mut cur = Cursor::new(&wire);
        assert!(decode_message(&mut cur, AttrCtx::BGP4MP_AS4).is_err());
    }
}
