//! Deterministic synthetic AS-level Internet topologies.
//!
//! The paper's input is one week of RouteViews/RIPE RIS data over the real
//! Internet (~75K ASes). This crate generates the substitute substrate: a
//! scaled-down AS-level Internet with the structural properties the
//! inference method depends on —
//!
//! * a **tier hierarchy** (tier-1 clique, large/mid transit, stubs) joined by
//!   provider-customer (p2c) and peer-peer (p2p) links, so Gao-Rexford
//!   propagation produces realistic path diversity;
//! * **multihomed customers**, the mechanism that makes action communities
//!   visible off-path (Fig 5 of the paper);
//! * **geography** (region → country → city) so location information
//!   communities and geo-targeted action communities have something to
//!   signal;
//! * **organizations** with sibling ASes (the as2org substitute);
//! * **IXP route servers** that peer members multilaterally *without*
//!   appearing in the AS path — the population the method must refuse to
//!   classify;
//! * a small fraction of ASes that **scrub all communities** (§5.1 notes
//!   ≈400 such ASes in the wild).
//!
//! Everything is generated from a `u64` seed and is bit-for-bit reproducible.
//!
//! ```
//! use bgp_topology::{generate, Tier, TopologyConfig};
//!
//! let topo = generate(&TopologyConfig::with_scale(0.05));
//! assert!(topo.validate().is_empty());
//! // Tier-1s form a settlement-free clique at the top.
//! let tier1 = topo.asns_of_tier(Tier::Tier1);
//! for &a in &tier1 {
//!     assert!(topo.providers(a).is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod evolve;
pub mod generate;
pub mod geography;
pub mod graph;

pub use dot::{to_dot, to_dot_filtered};
pub use generate::{generate, TopologyConfig};
pub use geography::{CityId, Geography, Location, RegionId};
pub use graph::{AsNode, Link, NeighborKind, Organization, Rel, Tier, Topology};
