//! The topology generator.
//!
//! Builds a scaled-down Internet with the structural mechanisms the paper's
//! method exploits (see the crate docs). Fully deterministic in the seed.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bgp_types::{Asn, Prefix};

use crate::geography::{CityId, Geography};
use crate::graph::{AsNode, Link, Organization, Rel, Tier, Topology};

/// Parameters of the synthetic Internet.
///
/// The defaults produce ≈1,000 ASes — about 1/75 of the real Internet, the
/// same order of reduction the paper's counts scale down by in
/// EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// RNG seed; everything else being equal, same seed ⇒ same topology.
    pub seed: u64,
    /// Size of the settlement-free tier-1 clique.
    pub tier1_count: usize,
    /// Number of large (global) transit providers.
    pub large_transit_count: usize,
    /// Number of regional transit providers.
    pub mid_transit_count: usize,
    /// Number of stub (edge) ASes.
    pub stub_count: usize,
    /// Number of IXP route servers.
    pub ixp_count: usize,
    /// Countries per region (5 regions total).
    pub countries_per_region: usize,
    /// Cities per country.
    pub cities_per_country: usize,
    /// Probability a stub is multihomed (2–3 providers). Multihoming is what
    /// lets collectors observe action communities off-path (Fig 5).
    pub multihome_prob: f64,
    /// Probability two transit ASes of the same tier peer.
    pub peering_prob: f64,
    /// Fraction of ASes that scrub all communities when propagating
    /// (≈400/75K ≈ 0.5% in the wild, §5.1).
    pub scrub_fraction: f64,
    /// Fraction of transit ASes grouped into multi-AS organizations
    /// (siblings, the as2org substitute).
    pub sibling_org_fraction: f64,
    /// Fraction of stubs assigned 32-bit ASNs (cannot own regular
    /// communities).
    pub asn32_fraction: f64,
    /// IPv4 /24s originated per stub.
    pub prefixes_per_stub: usize,
    /// Fraction of stubs that also originate an IPv6 /48.
    pub stub_v6_fraction: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 20230501,
            tier1_count: 8,
            large_transit_count: 40,
            mid_transit_count: 140,
            stub_count: 800,
            ixp_count: 6,
            countries_per_region: 4,
            cities_per_country: 3,
            multihome_prob: 0.55,
            peering_prob: 0.25,
            scrub_fraction: 0.01,
            sibling_org_fraction: 0.10,
            asn32_fraction: 0.05,
            prefixes_per_stub: 2,
            stub_v6_fraction: 0.2,
        }
    }
}

impl TopologyConfig {
    /// Scale every population linearly (≥ a small floor so the structure
    /// survives very small scales). `scale = 1.0` is the default world.
    pub fn with_scale(scale: f64) -> Self {
        let base = TopologyConfig::default();
        let s = |n: usize, floor: usize| ((n as f64 * scale) as usize).max(floor);
        TopologyConfig {
            tier1_count: s(base.tier1_count, 3),
            large_transit_count: s(base.large_transit_count, 6),
            mid_transit_count: s(base.mid_transit_count, 10),
            stub_count: s(base.stub_count, 40),
            ixp_count: s(base.ixp_count, 1),
            ..base
        }
    }
}

/// Hands out ASNs: 16-bit public values in generation order, plus 32-bit
/// values on request. Skips reserved and private ranges.
#[derive(Debug)]
pub(crate) struct AsnAllocator {
    next16: u32,
    next32: u32,
}

impl AsnAllocator {
    pub(crate) fn new() -> Self {
        AsnAllocator {
            next16: 3,
            next32: 400_000,
        }
    }

    pub(crate) fn next_16bit(&mut self) -> Asn {
        loop {
            let candidate = Asn::new(self.next16);
            self.next16 += 1;
            assert!(self.next16 < 64_000, "exhausted 16-bit public ASN space");
            if candidate.is_public() {
                return candidate;
            }
        }
    }

    pub(crate) fn next_32bit(&mut self) -> Asn {
        let candidate = Asn::new(self.next32);
        self.next32 += 1;
        candidate
    }
}

/// Hands out globally unique prefixes.
#[derive(Debug)]
pub(crate) struct PrefixAllocator {
    next_v4: u32,
    next_v6: u16,
}

impl PrefixAllocator {
    pub(crate) fn new() -> Self {
        PrefixAllocator {
            next_v4: 0,
            next_v6: 0,
        }
    }

    /// Next /24 from 10.0.0.0/8 (65,536 available — plenty at this scale).
    pub(crate) fn next_v4_24(&mut self) -> Prefix {
        let i = self.next_v4;
        self.next_v4 += 1;
        assert!(i < 65_536, "exhausted 10.0.0.0/8 /24 space");
        Prefix::v4(10, (i >> 8) as u8, (i & 0xFF) as u8, 0, 24)
    }

    /// Next /48 from 2001:db8::/32.
    pub(crate) fn next_v6_48(&mut self) -> Prefix {
        let i = self.next_v6;
        self.next_v6 = self.next_v6.checked_add(1).expect("exhausted v6 space");
        format!("2001:db8:{i:x}::/48")
            .parse()
            .expect("valid synthetic v6 prefix")
    }
}

struct Builder<'a> {
    cfg: &'a TopologyConfig,
    rng: StdRng,
    geography: Geography,
    ases: HashMap<Asn, AsNode>,
    links: Vec<Link>,
    asn_alloc: AsnAllocator,
    prefix_alloc: PrefixAllocator,
}

impl Builder<'_> {
    fn pick_city(&mut self) -> CityId {
        self.rng.random_range(0..self.geography.city_count()) as CityId
    }

    fn presence_across_regions(&mut self, regions: usize, cities_per_region: usize) -> Vec<CityId> {
        let mut region_ids: Vec<u8> = (0..self.geography.region_count() as u8).collect();
        region_ids.shuffle(&mut self.rng);
        let mut presence = Vec::new();
        for r in region_ids.into_iter().take(regions) {
            let mut cities = self.geography.cities_in_region(r);
            cities.shuffle(&mut self.rng);
            presence.extend(cities.into_iter().take(cities_per_region));
        }
        presence.sort_unstable();
        presence.dedup();
        presence
    }

    fn add_as(&mut self, asn: Asn, tier: Tier, presence: Vec<CityId>) {
        let home = presence[0];
        self.ases.insert(
            asn,
            AsNode {
                asn,
                tier,
                home,
                presence,
                org: usize::MAX, // patched in assign_orgs
                scrubs_communities: false,
                prefixes: Vec::new(),
            },
        );
    }

    fn link(&mut self, a: Asn, b: Asn, rel: Rel) {
        self.links.push(Link { a, b, rel });
    }
}

/// Generate a topology from a configuration.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let geography = Geography::build(cfg.countries_per_region, cfg.cities_per_country);
    let mut b = Builder {
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        geography,
        ases: HashMap::new(),
        links: Vec::new(),
        asn_alloc: AsnAllocator::new(),
        prefix_alloc: PrefixAllocator::new(),
    };

    // --- Tier 1 clique: global presence, full p2p mesh, no providers. ---
    let tier1: Vec<Asn> = (0..cfg.tier1_count)
        .map(|_| b.asn_alloc.next_16bit())
        .collect();
    for &asn in &tier1 {
        let presence = b.presence_across_regions(b.geography.region_count(), 2);
        b.add_as(asn, Tier::Tier1, presence);
    }
    for i in 0..tier1.len() {
        for j in (i + 1)..tier1.len() {
            b.link(tier1[i], tier1[j], Rel::PeerPeer);
        }
    }

    // --- Large transit: 2–3 tier-1 providers, broad presence, some peering. ---
    let large: Vec<Asn> = (0..cfg.large_transit_count)
        .map(|_| b.asn_alloc.next_16bit())
        .collect();
    for &asn in &large {
        let n_regions = b.rng.random_range(2..=4);
        let presence = b.presence_across_regions(n_regions, 2);
        b.add_as(asn, Tier::LargeTransit, presence);
        let n_providers = b.rng.random_range(2..=3.min(tier1.len()));
        let mut providers = tier1.clone();
        providers.shuffle(&mut b.rng);
        for p in providers.into_iter().take(n_providers) {
            b.link(p, asn, Rel::ProviderCustomer);
        }
    }
    for i in 0..large.len() {
        for j in (i + 1)..large.len() {
            if b.rng.random_bool(cfg.peering_prob) {
                b.link(large[i], large[j], Rel::PeerPeer);
            }
        }
    }

    // --- Mid transit: regional; providers drawn from large transit. ---
    let mid: Vec<Asn> = (0..cfg.mid_transit_count)
        .map(|_| b.asn_alloc.next_16bit())
        .collect();
    for &asn in &mid {
        let home = b.pick_city();
        let region = b.geography.region_of(home);
        let mut cities = b.geography.cities_in_region(region);
        cities.shuffle(&mut b.rng);
        let mut presence: Vec<CityId> =
            cities.into_iter().take(b.rng.random_range(1..=3)).collect();
        if !presence.contains(&home) {
            presence.push(home);
        }
        presence.sort_unstable();
        // Home must be first per add_as contract; re-order.
        presence.retain(|&c| c != home);
        presence.insert(0, home);
        b.add_as(asn, Tier::MidTransit, presence);
        let n_providers = b.rng.random_range(1..=3.min(large.len()));
        let mut providers = large.clone();
        providers.shuffle(&mut b.rng);
        for p in providers.into_iter().take(n_providers) {
            b.link(p, asn, Rel::ProviderCustomer);
        }
    }
    // Same-region mid-transit peering, at a lower rate than large transit.
    for i in 0..mid.len() {
        for j in (i + 1)..mid.len() {
            let ra = b.geography.region_of(b.ases[&mid[i]].home);
            let rb = b.geography.region_of(b.ases[&mid[j]].home);
            if ra == rb && b.rng.random_bool(cfg.peering_prob / 2.0) {
                b.link(mid[i], mid[j], Rel::PeerPeer);
            }
        }
    }

    // --- Stubs: customers of mid/large transit, often multihomed. ---
    let transit_pool: Vec<Asn> = large.iter().chain(mid.iter()).copied().collect();
    let mut stubs = Vec::with_capacity(cfg.stub_count);
    for _ in 0..cfg.stub_count {
        let asn = if b.rng.random_bool(cfg.asn32_fraction) {
            b.asn_alloc.next_32bit()
        } else {
            b.asn_alloc.next_16bit()
        };
        stubs.push(asn);
        let home = b.pick_city();
        b.add_as(asn, Tier::Stub, vec![home]);
        let n_providers = if b.rng.random_bool(cfg.multihome_prob) {
            b.rng.random_range(2..=3)
        } else {
            1
        };
        // Prefer same-region providers but fall back to anyone.
        let region = b.geography.region_of(home);
        let mut local: Vec<Asn> = transit_pool
            .iter()
            .copied()
            .filter(|t| {
                b.ases[t]
                    .presence
                    .iter()
                    .any(|&c| b.geography.region_of(c) == region)
            })
            .collect();
        if local.len() < n_providers {
            local = transit_pool.clone();
        }
        local.shuffle(&mut b.rng);
        for p in local.into_iter().take(n_providers) {
            b.link(p, asn, Rel::ProviderCustomer);
        }
    }

    // --- IXP route servers: members are ASes present in the IXP's city. ---
    let mut ixp_cities: Vec<CityId> = (0..b.geography.city_count() as u16).collect();
    ixp_cities.shuffle(&mut b.rng);
    for &city in ixp_cities.iter().take(cfg.ixp_count) {
        let rs = b.asn_alloc.next_16bit();
        let members: Vec<Asn> = b
            .ases
            .values()
            .filter(|n| n.tier != Tier::IxpRouteServer && n.presence.contains(&city))
            .map(|n| n.asn)
            .collect();
        b.add_as(rs, Tier::IxpRouteServer, vec![city]);
        let mut members = members;
        members.sort_unstable();
        for m in members {
            b.link(rs, m, Rel::RouteServerMember);
        }
    }

    // --- Prefix origination. ---
    // Transit ASes originate one /24 each (their infrastructure space);
    // stubs originate `prefixes_per_stub` /24s and sometimes a /48.
    let mut all_sorted: Vec<Asn> = b.ases.keys().copied().collect();
    all_sorted.sort_unstable();
    for asn in &all_sorted {
        let tier = b.ases[asn].tier;
        let mut prefixes = Vec::new();
        match tier {
            Tier::IxpRouteServer => {}
            Tier::Stub => {
                for _ in 0..cfg.prefixes_per_stub {
                    prefixes.push(b.prefix_alloc.next_v4_24());
                }
                if b.rng.random_bool(cfg.stub_v6_fraction) {
                    prefixes.push(b.prefix_alloc.next_v6_48());
                }
            }
            _ => prefixes.push(b.prefix_alloc.next_v4_24()),
        }
        b.ases.get_mut(asn).unwrap().prefixes = prefixes;
    }

    // --- Community scrubbers. ---
    for asn in &all_sorted {
        if b.ases[asn].tier != Tier::IxpRouteServer && b.rng.random_bool(cfg.scrub_fraction) {
            b.ases.get_mut(asn).unwrap().scrubs_communities = true;
        }
    }

    // --- Organizations: group some transit ASes into multi-AS orgs. ---
    let mut orgs: Vec<Organization> = Vec::new();
    let mut transit_sorted: Vec<Asn> = b
        .ases
        .values()
        .filter(|n| n.tier.is_transit())
        .map(|n| n.asn)
        .collect();
    transit_sorted.sort_unstable();
    transit_sorted.shuffle(&mut b.rng);
    let grouped = (transit_sorted.len() as f64 * b.cfg.sibling_org_fraction) as usize;
    let mut it = transit_sorted.iter().copied();
    let mut in_multi = 0;
    while in_multi < grouped {
        let size = b.rng.random_range(2..=3usize);
        let members: Vec<Asn> = it.by_ref().take(size).collect();
        if members.len() < 2 {
            for m in members {
                let org = orgs.len();
                orgs.push(Organization {
                    name: format!("org-{org}"),
                    members: vec![m],
                });
                b.ases.get_mut(&m).unwrap().org = org;
            }
            break;
        }
        in_multi += members.len();
        let org = orgs.len();
        for m in &members {
            b.ases.get_mut(m).unwrap().org = org;
        }
        orgs.push(Organization {
            name: format!("org-{org}"),
            members,
        });
    }
    // Everyone else gets a singleton org.
    for asn in &all_sorted {
        if b.ases[asn].org == usize::MAX {
            let org = orgs.len();
            orgs.push(Organization {
                name: format!("org-{org}"),
                members: vec![*asn],
            });
            b.ases.get_mut(asn).unwrap().org = org;
        }
    }

    let topo = Topology::new(b.ases, b.links, orgs, b.geography);
    debug_assert!(topo.validate().is_empty(), "{:?}", topo.validate());
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TopologyConfig {
        TopologyConfig {
            tier1_count: 4,
            large_transit_count: 8,
            mid_transit_count: 16,
            stub_count: 60,
            ixp_count: 2,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn generates_expected_counts() {
        let cfg = small();
        let t = generate(&cfg);
        assert_eq!(t.asns_of_tier(Tier::Tier1).len(), 4);
        assert_eq!(t.asns_of_tier(Tier::LargeTransit).len(), 8);
        assert_eq!(t.asns_of_tier(Tier::MidTransit).len(), 16);
        assert_eq!(t.asns_of_tier(Tier::Stub).len(), 60);
        assert_eq!(t.asns_of_tier(Tier::IxpRouteServer).len(), 2);
        assert_eq!(t.as_count(), 4 + 8 + 16 + 60 + 2);
    }

    #[test]
    fn validates_clean() {
        let t = generate(&small());
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&TopologyConfig {
            seed: 99,
            ..small()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn tier1_forms_full_clique_without_providers() {
        let t = generate(&small());
        let tier1 = t.asns_of_tier(Tier::Tier1);
        for &a in &tier1 {
            assert!(t.providers(a).is_empty());
            for &b in &tier1 {
                if a != b {
                    assert!(t.peers(a).contains(&b), "{a} should peer with {b}");
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_non_rs_has_a_provider() {
        let t = generate(&small());
        for node in t.ases.values() {
            match node.tier {
                Tier::Tier1 | Tier::IxpRouteServer => {}
                _ => assert!(
                    !t.providers(node.asn).is_empty(),
                    "AS {} ({:?}) has no provider",
                    node.asn,
                    node.tier
                ),
            }
        }
    }

    #[test]
    fn some_stubs_are_multihomed() {
        let t = generate(&small());
        let multi = t
            .asns_of_tier(Tier::Stub)
            .iter()
            .filter(|&&s| t.providers(s).len() >= 2)
            .count();
        // multihome_prob = 0.55 over 60 stubs: expect far more than a few.
        assert!(multi > 15, "only {multi} multihomed stubs");
    }

    #[test]
    fn stubs_originate_prefixes_transit_originates_one() {
        let cfg = small();
        let t = generate(&cfg);
        for node in t.ases.values() {
            match node.tier {
                Tier::Stub => assert!(node.prefixes.len() >= cfg.prefixes_per_stub),
                Tier::IxpRouteServer => assert!(node.prefixes.is_empty()),
                _ => assert_eq!(node.prefixes.len(), 1),
            }
        }
    }

    #[test]
    fn prefixes_are_globally_unique() {
        let t = generate(&small());
        let mut all: Vec<Prefix> = t
            .ases
            .values()
            .flat_map(|n| n.prefixes.iter().copied())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn route_servers_have_members_and_no_transit_links() {
        let t = generate(&small());
        for rs in t.asns_of_tier(Tier::IxpRouteServer) {
            let neighbors = t.neighbors(rs);
            assert!(!neighbors.is_empty(), "route server {rs} has no members");
            assert!(neighbors
                .iter()
                .all(|(_, k)| *k == crate::graph::NeighborKind::RsMember));
        }
    }

    #[test]
    fn multi_as_orgs_exist() {
        let t = generate(&small());
        assert!(
            t.orgs.iter().any(|o| o.members.len() >= 2),
            "expected at least one multi-AS organization"
        );
        // And every AS is in exactly the org it references.
        for node in t.ases.values() {
            assert!(t.orgs[node.org].members.contains(&node.asn));
        }
    }

    #[test]
    fn some_ases_scrub_communities() {
        // With 1% over ~90 ASes this can be zero; use a high rate to test
        // the mechanism.
        let cfg = TopologyConfig {
            scrub_fraction: 0.3,
            ..small()
        };
        let t = generate(&cfg);
        assert!(t.ases.values().any(|n| n.scrubs_communities));
        assert!(t
            .ases
            .values()
            .filter(|n| n.tier == Tier::IxpRouteServer)
            .all(|n| !n.scrubs_communities));
    }

    #[test]
    fn transit_asns_are_16bit() {
        let t = generate(&small());
        for node in t.ases.values() {
            if node.tier.is_transit() {
                assert!(node.asn.is_16bit(), "transit AS {} is 32-bit", node.asn);
            }
        }
    }

    #[test]
    fn some_stub_asns_are_32bit() {
        let cfg = TopologyConfig {
            asn32_fraction: 0.5,
            ..small()
        };
        let t = generate(&cfg);
        assert!(t.asns_of_tier(Tier::Stub).iter().any(|a| !a.is_16bit()));
    }

    #[test]
    fn allocator_skips_reserved_and_private() {
        let mut alloc = AsnAllocator::new();
        for _ in 0..40_000 {
            let asn = alloc.next_16bit();
            assert!(asn.is_public(), "allocated non-public ASN {asn}");
            assert!(asn.is_16bit());
        }
    }

    #[test]
    fn with_scale_respects_floors() {
        let tiny = TopologyConfig::with_scale(0.01);
        assert!(tiny.tier1_count >= 3);
        assert!(tiny.stub_count >= 40);
        let big = TopologyConfig::with_scale(2.0);
        assert_eq!(big.stub_count, 1600);
    }
}
