//! Month-over-month topology growth, for the paper's accuracy-over-time
//! experiment (§6: June 2022 – May 2023, community count grows ≈5%).

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use bgp_types::Asn;

use crate::generate::{AsnAllocator, PrefixAllocator};
use crate::graph::{AsNode, Link, Organization, Rel, Tier, Topology};

/// Growth parameters per simulated month.
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// Fraction of the current stub population added each month
    /// (the Internet grows ≈4–6%/year ⇒ ≈0.4%/month).
    pub stub_growth_rate: f64,
    /// Probability an existing single-homed stub gains a second provider.
    pub new_provider_prob: f64,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            stub_growth_rate: 0.004,
            new_provider_prob: 0.002,
        }
    }
}

/// Grow `topo` in place by one month. Existing ASes, links, and orgs are
/// preserved; new stubs are appended with fresh ASNs and prefixes.
///
/// `month` seeds the month's RNG stream together with `seed`, so a given
/// (seed, month) pair always applies the same growth.
pub fn grow_one_month(topo: &mut Topology, seed: u64, month: u32, cfg: &GrowthConfig) {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(month as u64 + 1)));

    // Allocators must continue past what the topology already uses.
    let mut asn_alloc = AsnAllocator::new();
    let max16 = topo
        .ases
        .keys()
        .filter(|a| a.is_16bit())
        .map(|a| a.value())
        .max()
        .unwrap_or(2);
    while asn_alloc.next_16bit().value() <= max16 {}
    let mut prefix_alloc = PrefixAllocator::new();
    let used_prefixes: usize = topo
        .ases
        .values()
        .flat_map(|n| n.prefixes.iter())
        .filter(|p| p.is_ipv4())
        .count();
    for _ in 0..used_prefixes {
        let _ = prefix_alloc.next_v4_24();
    }
    let used_v6: usize = topo
        .ases
        .values()
        .flat_map(|n| n.prefixes.iter())
        .filter(|p| !p.is_ipv4())
        .count();
    for _ in 0..used_v6 {
        let _ = prefix_alloc.next_v6_48();
    }

    // Sort: HashMap iteration order must not leak into RNG-driven choices.
    let mut transit_pool: Vec<Asn> = topo
        .ases
        .values()
        .filter(|n| matches!(n.tier, Tier::LargeTransit | Tier::MidTransit))
        .map(|n| n.asn)
        .collect();
    transit_pool.sort_unstable();
    let stub_count = topo.asns_of_tier(Tier::Stub).len();
    let new_stubs = ((stub_count as f64 * cfg.stub_growth_rate).ceil() as usize).max(1);

    for _ in 0..new_stubs {
        let asn = asn_alloc.next_16bit();
        let home = rng.random_range(0..topo.geography.city_count()) as u16;
        let n_providers = if rng.random_bool(0.5) { 2 } else { 1 };
        let mut providers = transit_pool.clone();
        providers.shuffle(&mut rng);
        let prefixes = vec![prefix_alloc.next_v4_24()];
        let org = topo.orgs.len();
        topo.orgs.push(Organization {
            name: format!("org-{org}"),
            members: vec![asn],
        });
        topo.ases.insert(
            asn,
            AsNode {
                asn,
                tier: Tier::Stub,
                home,
                presence: vec![home],
                org,
                scrubs_communities: false,
                prefixes,
            },
        );
        for p in providers.into_iter().take(n_providers) {
            topo.links.push(Link {
                a: p,
                b: asn,
                rel: Rel::ProviderCustomer,
            });
        }
    }

    // Occasionally an existing single-homed stub multihomes.
    let stubs = topo.asns_of_tier(Tier::Stub);
    for s in stubs {
        if topo.providers(s).len() == 1 && rng.random_bool(cfg.new_provider_prob) {
            if let Some(&p) = transit_pool.choose(&mut rng) {
                if !topo.providers(s).contains(&p) {
                    topo.links.push(Link {
                        a: p,
                        b: s,
                        rel: Rel::ProviderCustomer,
                    });
                }
            }
        }
    }

    topo.rebuild_adjacency();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, TopologyConfig};

    fn base() -> Topology {
        generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 10,
            stub_count: 50,
            ixp_count: 1,
            ..TopologyConfig::default()
        })
    }

    #[test]
    fn growth_adds_stubs_and_stays_valid() {
        let mut t = base();
        let before = t.as_count();
        grow_one_month(&mut t, 7, 0, &GrowthConfig::default());
        assert!(t.as_count() > before);
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn growth_is_deterministic() {
        let mut a = base();
        let mut b = base();
        for m in 0..3 {
            grow_one_month(&mut a, 7, m, &GrowthConfig::default());
            grow_one_month(&mut b, 7, m, &GrowthConfig::default());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn new_asns_do_not_collide() {
        let mut t = base();
        let before: std::collections::HashSet<Asn> = t.ases.keys().copied().collect();
        grow_one_month(
            &mut t,
            7,
            0,
            &GrowthConfig {
                stub_growth_rate: 0.2,
                ..Default::default()
            },
        );
        let after: Vec<Asn> = t.ases.keys().copied().collect();
        assert_eq!(after.len(), t.as_count());
        let new: Vec<Asn> = after
            .iter()
            .copied()
            .filter(|a| !before.contains(a))
            .collect();
        assert!(!new.is_empty());
        for asn in new {
            assert!(asn.is_public());
        }
    }

    #[test]
    fn new_prefixes_do_not_collide() {
        let mut t = base();
        grow_one_month(
            &mut t,
            7,
            0,
            &GrowthConfig {
                stub_growth_rate: 0.3,
                ..Default::default()
            },
        );
        let mut all: Vec<_> = t
            .ases
            .values()
            .flat_map(|n| n.prefixes.iter().copied())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn twelve_months_compound() {
        let mut t = base();
        let start = t.asns_of_tier(Tier::Stub).len();
        for m in 0..12 {
            grow_one_month(&mut t, 7, m, &GrowthConfig::default());
        }
        let end = t.asns_of_tier(Tier::Stub).len();
        assert!(end >= start + 12, "stubs {start} -> {end}");
        assert!(t.validate().is_empty());
    }
}
