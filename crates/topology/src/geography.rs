//! Synthetic geography: regions, countries, and cities.
//!
//! Location information communities signal where a route entered a network
//! (city, country, or region — Fig 2 of the paper), and geo-targeted action
//! communities name a region ("do not export in Europe"). The generator
//! builds a fixed three-level hierarchy; every AS point of presence is a
//! [`CityId`], and the coarser levels are derived from it.

use serde::{Deserialize, Serialize};

/// Index of a region in [`Geography::regions`].
pub type RegionId = u8;
/// Global city index (unique across all regions).
pub type CityId = u16;

/// A city: the finest location granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct City {
    /// Globally unique id.
    pub id: CityId,
    /// Display name, e.g. `"NA1-C0-city2"` or `"Boston"`.
    pub name: String,
}

/// A country within a region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Country {
    /// Display name.
    pub name: String,
    /// Cities in this country.
    pub cities: Vec<City>,
}

/// A region (continent-scale, like the paper's Europe / North America /
/// Asia-Pacific in Fig 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Display name, e.g. `"EU"`.
    pub name: String,
    /// Countries in this region.
    pub countries: Vec<Country>,
}

/// The full location hierarchy plus a flat city index for O(1) lookups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geography {
    /// Regions in id order.
    pub regions: Vec<Region>,
    /// For every [`CityId`]: `(region index, country index within region)`.
    city_index: Vec<(u8, u16)>,
}

/// A resolved location of one city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Region index.
    pub region: RegionId,
    /// Country index within the region.
    pub country: u16,
    /// Global city id.
    pub city: CityId,
}

/// Region names used by the default generator (mirroring the paper's Fig 3
/// granularity: Europe, North America, Asia-Pacific, plus two more for
/// diversity).
pub const REGION_NAMES: [&str; 5] = ["EU", "NA", "AP", "SA", "AF"];

impl Geography {
    /// Build a geography with `countries_per_region` countries of
    /// `cities_per_country` cities in each of the [`REGION_NAMES`] regions.
    pub fn build(countries_per_region: usize, cities_per_country: usize) -> Self {
        let mut regions = Vec::with_capacity(REGION_NAMES.len());
        let mut city_index = Vec::new();
        let mut next_city: CityId = 0;
        for (ri, rname) in REGION_NAMES.iter().enumerate() {
            let mut countries = Vec::with_capacity(countries_per_region);
            for ci in 0..countries_per_region {
                let mut cities = Vec::with_capacity(cities_per_country);
                for k in 0..cities_per_country {
                    cities.push(City {
                        id: next_city,
                        name: format!("{rname}-C{ci}-city{k}"),
                    });
                    city_index.push((ri as u8, ci as u16));
                    next_city = next_city
                        .checked_add(1)
                        .expect("city count exceeds CityId range");
                }
                countries.push(Country {
                    name: format!("{rname}-C{ci}"),
                    cities,
                });
            }
            regions.push(Region {
                name: (*rname).to_string(),
                countries,
            });
        }
        Geography {
            regions,
            city_index,
        }
    }

    /// Total number of cities.
    pub fn city_count(&self) -> usize {
        self.city_index.len()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Resolve a city to its full location. Panics on an unknown id (city
    /// ids come from this geography, so that is a logic error).
    pub fn locate(&self, city: CityId) -> Location {
        let (region, country) = self.city_index[city as usize];
        Location {
            region,
            country,
            city,
        }
    }

    /// All city ids in a region.
    pub fn cities_in_region(&self, region: RegionId) -> Vec<CityId> {
        (0..self.city_count() as u16)
            .filter(|&c| self.city_index[c as usize].0 == region)
            .collect()
    }

    /// The region a city belongs to.
    pub fn region_of(&self, city: CityId) -> RegionId {
        self.city_index[city as usize].0
    }

    /// The `(region, country)` pair of a city.
    pub fn country_of(&self, city: CityId) -> (RegionId, u16) {
        self.city_index[city as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counts() {
        let g = Geography::build(4, 3);
        assert_eq!(g.region_count(), 5);
        assert_eq!(g.city_count(), 5 * 4 * 3);
        for r in &g.regions {
            assert_eq!(r.countries.len(), 4);
            for c in &r.countries {
                assert_eq!(c.cities.len(), 3);
            }
        }
    }

    #[test]
    fn city_ids_are_globally_unique_and_dense() {
        let g = Geography::build(2, 2);
        let mut ids: Vec<CityId> = g
            .regions
            .iter()
            .flat_map(|r| r.countries.iter())
            .flat_map(|c| c.cities.iter())
            .map(|c| c.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..g.city_count() as u16).collect::<Vec<_>>());
    }

    #[test]
    fn locate_is_consistent_with_hierarchy() {
        let g = Geography::build(3, 2);
        for (ri, r) in g.regions.iter().enumerate() {
            for (ci, c) in r.countries.iter().enumerate() {
                for city in &c.cities {
                    let loc = g.locate(city.id);
                    assert_eq!(loc.region as usize, ri);
                    assert_eq!(loc.country as usize, ci);
                    assert_eq!(loc.city, city.id);
                }
            }
        }
    }

    #[test]
    fn cities_in_region_partition_the_world() {
        let g = Geography::build(2, 3);
        let mut total = 0;
        for r in 0..g.region_count() as u8 {
            let cities = g.cities_in_region(r);
            total += cities.len();
            for c in cities {
                assert_eq!(g.region_of(c), r);
            }
        }
        assert_eq!(total, g.city_count());
    }

    #[test]
    fn serde_roundtrip() {
        let g = Geography::build(2, 2);
        let json = serde_json::to_string(&g).unwrap();
        let back: Geography = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
