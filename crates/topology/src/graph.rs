//! The AS-level graph: nodes, business relationships, organizations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_types::{Asn, Prefix};

use crate::geography::{CityId, Geography};

/// The role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Member of the settlement-free clique at the top; no providers.
    Tier1,
    /// Large transit provider (customer of tier-1s, provider to many).
    LargeTransit,
    /// Regional/mid-size transit provider.
    MidTransit,
    /// Edge network that originates prefixes but provides no transit.
    Stub,
    /// An IXP route server: reflects routes between members without
    /// inserting its ASN into the AS path.
    IxpRouteServer,
}

impl Tier {
    /// Whether this AS carries traffic for customers.
    pub fn is_transit(self) -> bool {
        matches!(self, Tier::Tier1 | Tier::LargeTransit | Tier::MidTransit)
    }
}

/// Business relationship between two ASes, from the perspective of the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rel {
    /// First AS is the provider, second is the customer (p2c).
    ProviderCustomer,
    /// Settlement-free peering (p2p).
    PeerPeer,
    /// Second AS is a member of the first's IXP route server; routes are
    /// reflected among members without the first appearing in paths.
    RouteServerMember,
}

/// A relationship as seen from one AS toward a neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborKind {
    /// The neighbor is our provider.
    Provider,
    /// The neighbor is our customer.
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is an IXP route server we are a member of.
    RouteServer,
    /// The neighbor is a member of the route server we operate.
    RsMember,
}

/// One AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Role in the hierarchy.
    pub tier: Tier,
    /// Home city (headquarters).
    pub home: CityId,
    /// Points of presence (always includes `home`). Information location
    /// communities record which of these a route entered at.
    pub presence: Vec<CityId>,
    /// Organization this AS belongs to (index into [`Topology::orgs`]).
    pub org: usize,
    /// Whether this AS strips all communities from routes it propagates.
    pub scrubs_communities: bool,
    /// Prefixes this AS originates.
    pub prefixes: Vec<Prefix>,
}

/// An organization owning one or more sibling ASes (the as2org substitute).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Display name.
    pub name: String,
    /// Member ASes.
    pub members: Vec<Asn>,
}

/// An undirected link with its business relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (provider for p2c, route server for RS links).
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// Relationship from `a` to `b`.
    pub rel: Rel,
}

/// The full synthetic Internet: nodes, links, orgs, geography.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// All ASes, keyed by ASN.
    pub ases: HashMap<Asn, AsNode>,
    /// All links.
    pub links: Vec<Link>,
    /// Organizations; `AsNode::org` indexes here.
    pub orgs: Vec<Organization>,
    /// The world's geography.
    pub geography: Geography,
    /// Adjacency cache: for each AS, its neighbors and how it sees them.
    #[serde(skip)]
    adjacency: HashMap<Asn, Vec<(Asn, NeighborKind)>>,
}

impl Topology {
    /// Assemble a topology and build the adjacency cache.
    pub fn new(
        ases: HashMap<Asn, AsNode>,
        links: Vec<Link>,
        orgs: Vec<Organization>,
        geography: Geography,
    ) -> Self {
        let mut t = Topology {
            ases,
            links,
            orgs,
            geography,
            adjacency: HashMap::new(),
        };
        t.rebuild_adjacency();
        t
    }

    /// Rebuild the adjacency cache (needed after deserialization or after
    /// mutating `links`).
    pub fn rebuild_adjacency(&mut self) {
        let mut adj: HashMap<Asn, Vec<(Asn, NeighborKind)>> = HashMap::new();
        for asn in self.ases.keys() {
            adj.entry(*asn).or_default();
        }
        for link in &self.links {
            match link.rel {
                Rel::ProviderCustomer => {
                    adj.entry(link.a)
                        .or_default()
                        .push((link.b, NeighborKind::Customer));
                    adj.entry(link.b)
                        .or_default()
                        .push((link.a, NeighborKind::Provider));
                }
                Rel::PeerPeer => {
                    adj.entry(link.a)
                        .or_default()
                        .push((link.b, NeighborKind::Peer));
                    adj.entry(link.b)
                        .or_default()
                        .push((link.a, NeighborKind::Peer));
                }
                Rel::RouteServerMember => {
                    adj.entry(link.a)
                        .or_default()
                        .push((link.b, NeighborKind::RsMember));
                    adj.entry(link.b)
                        .or_default()
                        .push((link.a, NeighborKind::RouteServer));
                }
            }
        }
        for neighbors in adj.values_mut() {
            neighbors.sort_unstable_by_key(|(asn, _)| *asn);
            neighbors.dedup();
        }
        self.adjacency = adj;
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Look up an AS.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.ases.get(&asn)
    }

    /// Neighbors of `asn` with the relationship as seen from `asn`.
    pub fn neighbors(&self, asn: Asn) -> &[(Asn, NeighborKind)] {
        self.adjacency.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Providers of `asn`.
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_of_kind(asn, NeighborKind::Provider)
    }

    /// Customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_of_kind(asn, NeighborKind::Customer)
    }

    /// Settlement-free peers of `asn`.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_of_kind(asn, NeighborKind::Peer)
    }

    fn neighbors_of_kind(&self, asn: Asn, kind: NeighborKind) -> Vec<Asn> {
        self.neighbors(asn)
            .iter()
            .filter(|(_, k)| *k == kind)
            .map(|(a, _)| *a)
            .collect()
    }

    /// How `a` sees `b`, if they are adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<NeighborKind> {
        self.neighbors(a)
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, k)| *k)
    }

    /// Sibling ASes of `asn` (other members of its org), excluding itself.
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        match self.ases.get(&asn) {
            Some(node) => self.orgs[node.org]
                .members
                .iter()
                .copied()
                .filter(|m| *m != asn)
                .collect(),
            None => Vec::new(),
        }
    }

    /// All ASNs sorted ascending (deterministic iteration order).
    pub fn asns_sorted(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.ases.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// ASNs of a given tier, sorted.
    pub fn asns_of_tier(&self, tier: Tier) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .ases
            .values()
            .filter(|n| n.tier == tier)
            .map(|n| n.asn)
            .collect();
        v.sort_unstable();
        v
    }

    /// Basic structural sanity checks; returns human-readable violations.
    ///
    /// Used by tests and by the generator's own self-check.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for link in &self.links {
            for end in [link.a, link.b] {
                if !self.ases.contains_key(&end) {
                    problems.push(format!(
                        "link {}-{} references unknown AS {end}",
                        link.a, link.b
                    ));
                }
            }
            if link.a == link.b {
                problems.push(format!("self-link at {}", link.a));
            }
        }
        for (asn, node) in &self.ases {
            if node.asn != *asn {
                problems.push(format!("AS {asn} keyed under wrong ASN"));
            }
            if !node.presence.contains(&node.home) {
                problems.push(format!("AS {asn} presence does not include home city"));
            }
            if node.org >= self.orgs.len() {
                problems.push(format!("AS {asn} references unknown org {}", node.org));
            } else if !self.orgs[node.org].members.contains(asn) {
                problems.push(format!("AS {asn} missing from its org's member list"));
            }
            if node.tier == Tier::Stub && !self.customers(*asn).is_empty() {
                problems.push(format!("stub AS {asn} has customers"));
            }
            if node.tier == Tier::Tier1 && !self.providers(*asn).is_empty() {
                problems.push(format!("tier-1 AS {asn} has a provider"));
            }
        }
        problems
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.ases == other.ases
            && self.links == other.links
            && self.orgs == other.orgs
            && self.geography == other.geography
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geography::Geography;

    fn tiny() -> Topology {
        let geography = Geography::build(1, 2);
        let mk = |asn: u32, tier: Tier, org: usize| AsNode {
            asn: Asn::new(asn),
            tier,
            home: 0,
            presence: vec![0],
            org,
            scrubs_communities: false,
            prefixes: vec![],
        };
        let mut ases = HashMap::new();
        ases.insert(Asn::new(10), mk(10, Tier::Tier1, 0));
        ases.insert(Asn::new(20), mk(20, Tier::MidTransit, 1));
        ases.insert(Asn::new(30), mk(30, Tier::Stub, 2));
        ases.insert(Asn::new(40), mk(40, Tier::IxpRouteServer, 3));
        let links = vec![
            Link {
                a: Asn::new(10),
                b: Asn::new(20),
                rel: Rel::ProviderCustomer,
            },
            Link {
                a: Asn::new(20),
                b: Asn::new(30),
                rel: Rel::ProviderCustomer,
            },
            Link {
                a: Asn::new(40),
                b: Asn::new(20),
                rel: Rel::RouteServerMember,
            },
            Link {
                a: Asn::new(40),
                b: Asn::new(30),
                rel: Rel::RouteServerMember,
            },
        ];
        let orgs = vec![
            Organization {
                name: "o0".into(),
                members: vec![Asn::new(10)],
            },
            Organization {
                name: "o1".into(),
                members: vec![Asn::new(20)],
            },
            Organization {
                name: "o2".into(),
                members: vec![Asn::new(30)],
            },
            Organization {
                name: "o3".into(),
                members: vec![Asn::new(40)],
            },
        ];
        Topology::new(ases, links, orgs, geography)
    }

    #[test]
    fn adjacency_views_are_symmetric() {
        let t = tiny();
        assert_eq!(
            t.relationship(Asn::new(10), Asn::new(20)),
            Some(NeighborKind::Customer)
        );
        assert_eq!(
            t.relationship(Asn::new(20), Asn::new(10)),
            Some(NeighborKind::Provider)
        );
        assert_eq!(
            t.relationship(Asn::new(40), Asn::new(30)),
            Some(NeighborKind::RsMember)
        );
        assert_eq!(
            t.relationship(Asn::new(30), Asn::new(40)),
            Some(NeighborKind::RouteServer)
        );
        assert_eq!(t.relationship(Asn::new(10), Asn::new(30)), None);
    }

    #[test]
    fn provider_customer_accessors() {
        let t = tiny();
        assert_eq!(t.customers(Asn::new(10)), vec![Asn::new(20)]);
        assert_eq!(t.providers(Asn::new(30)), vec![Asn::new(20)]);
        assert!(t.peers(Asn::new(10)).is_empty());
    }

    #[test]
    fn validate_accepts_tiny() {
        let t = tiny();
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn validate_catches_stub_with_customer() {
        let mut t = tiny();
        t.links.push(Link {
            a: Asn::new(30),
            b: Asn::new(10),
            rel: Rel::ProviderCustomer,
        });
        t.rebuild_adjacency();
        assert!(t.validate().iter().any(|p| p.contains("stub")));
    }

    #[test]
    fn validate_catches_unknown_link_endpoint() {
        let mut t = tiny();
        t.links.push(Link {
            a: Asn::new(10),
            b: Asn::new(99),
            rel: Rel::PeerPeer,
        });
        t.rebuild_adjacency();
        assert!(t.validate().iter().any(|p| p.contains("unknown AS")));
    }

    #[test]
    fn siblings_come_from_org() {
        let mut t = tiny();
        t.orgs[1].members.push(Asn::new(30));
        t.ases.get_mut(&Asn::new(30)).unwrap().org = 1;
        assert_eq!(t.siblings(Asn::new(20)), vec![Asn::new(30)]);
        assert_eq!(t.siblings(Asn::new(30)), vec![Asn::new(20)]);
        assert!(t.siblings(Asn::new(10)).is_empty());
    }

    #[test]
    fn serde_roundtrip_rebuilds_adjacency() {
        let t = tiny();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Topology = serde_json::from_str(&json).unwrap();
        back.rebuild_adjacency();
        assert_eq!(back, t);
        assert_eq!(
            back.relationship(Asn::new(10), Asn::new(20)),
            Some(NeighborKind::Customer)
        );
    }

    #[test]
    fn asns_sorted_is_deterministic() {
        let t = tiny();
        assert_eq!(
            t.asns_sorted(),
            vec![Asn::new(10), Asn::new(20), Asn::new(30), Asn::new(40)]
        );
        assert_eq!(t.asns_of_tier(Tier::Stub), vec![Asn::new(30)]);
    }
}
