//! Graphviz (DOT) export of the AS graph, for documentation and debugging.
//!
//! Tier shapes the node style; provider→customer links are directed edges,
//! peerings are undirected (rendered `dir=none`), and route-server
//! membership is dashed. Big worlds are unreadable as a whole — use
//! [`to_dot_filtered`] to render one AS's neighborhood.

use std::collections::HashSet;
use std::fmt::Write as _;

use bgp_types::Asn;

use crate::graph::{Rel, Tier, Topology};

fn node_attrs(tier: Tier) -> &'static str {
    match tier {
        Tier::Tier1 => "shape=doublecircle,style=filled,fillcolor=gold",
        Tier::LargeTransit => "shape=circle,style=filled,fillcolor=orange",
        Tier::MidTransit => "shape=circle,style=filled,fillcolor=khaki",
        Tier::Stub => "shape=circle",
        Tier::IxpRouteServer => "shape=diamond,style=filled,fillcolor=lightblue",
    }
}

fn edge_attrs(rel: Rel) -> &'static str {
    match rel {
        Rel::ProviderCustomer => "", // provider -> customer arrow
        Rel::PeerPeer => "dir=none,color=gray40",
        Rel::RouteServerMember => "dir=none,style=dashed,color=steelblue",
    }
}

/// Render the whole topology as a DOT digraph.
pub fn to_dot(topo: &Topology) -> String {
    let everyone: HashSet<Asn> = topo.ases.keys().copied().collect();
    render(topo, &everyone)
}

/// Render only `center` and its direct neighbors.
pub fn to_dot_filtered(topo: &Topology, center: Asn) -> String {
    let mut keep: HashSet<Asn> = HashSet::new();
    keep.insert(center);
    for (nb, _) in topo.neighbors(center) {
        keep.insert(*nb);
    }
    render(topo, &keep)
}

fn render(topo: &Topology, keep: &HashSet<Asn>) -> String {
    let mut out = String::from("digraph internet {\n  rankdir=TB;\n  node [fontsize=10];\n");
    for asn in topo.asns_sorted() {
        if !keep.contains(&asn) {
            continue;
        }
        let node = &topo.ases[&asn];
        let _ = writeln!(
            out,
            "  \"AS{asn}\" [{attrs},label=\"AS{asn}\\n{tier:?}\"];",
            attrs = node_attrs(node.tier),
            tier = node.tier,
        );
    }
    let mut links = topo.links.clone();
    links.sort_by_key(|l| (l.a, l.b));
    for link in links {
        if !keep.contains(&link.a) || !keep.contains(&link.b) {
            continue;
        }
        let attrs = edge_attrs(link.rel);
        if attrs.is_empty() {
            let _ = writeln!(out, "  \"AS{}\" -> \"AS{}\";", link.a, link.b);
        } else {
            let _ = writeln!(out, "  \"AS{}\" -> \"AS{}\" [{attrs}];", link.a, link.b);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, TopologyConfig};

    fn small() -> Topology {
        generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 4,
            mid_transit_count: 5,
            stub_count: 10,
            ixp_count: 1,
            ..TopologyConfig::default()
        })
    }

    #[test]
    fn full_export_mentions_every_as_and_link() {
        let topo = small();
        let dot = to_dot(&topo);
        assert!(dot.starts_with("digraph internet {"));
        assert!(dot.ends_with("}\n"));
        for asn in topo.asns_sorted() {
            assert!(dot.contains(&format!("\"AS{asn}\"")), "AS{asn} missing");
        }
        // Every link appears exactly once as an edge line.
        let edges = dot.lines().filter(|l| l.contains(" -> ")).count();
        assert_eq!(edges, topo.links.len());
    }

    #[test]
    fn filtered_export_is_a_neighborhood() {
        let topo = small();
        let center = topo.asns_of_tier(Tier::Tier1)[0];
        let dot = to_dot_filtered(&topo, center);
        assert!(dot.contains(&format!("\"AS{center}\"")));
        // Smaller than the full render, and only neighborhood edges.
        assert!(dot.len() < to_dot(&topo).len());
        for line in dot.lines().filter(|l| l.contains(" -> ")) {
            assert!(
                line.contains(&format!("\"AS{center}\""))
                    || topo
                        .neighbors(center)
                        .iter()
                        .any(|(nb, _)| line.contains(&format!("\"AS{nb}\""))),
                "edge outside neighborhood: {line}"
            );
        }
    }

    #[test]
    fn styles_distinguish_relationships() {
        let topo = small();
        let dot = to_dot(&topo);
        assert!(
            dot.contains("dir=none,color=gray40"),
            "no peering edges rendered"
        );
        assert!(
            dot.contains("style=dashed"),
            "no route-server edges rendered"
        );
        assert!(dot.contains("doublecircle"), "no tier-1 styling");
    }

    #[test]
    fn deterministic_output() {
        let topo = small();
        assert_eq!(to_dot(&topo), to_dot(&topo));
    }
}
