//! Origination planning: which communities each origin attaches, and each
//! prefix's ROV status.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use bgp_policy::{PolicySet, RovStatus};
use bgp_topology::Topology;
use bgp_types::{Asn, Community, Intent, LargeCommunity, Prefix};

use crate::config::SimConfig;

/// Everything decided at route origination time, fixed for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct OriginationPlan {
    /// `(prefix, origin AS)` pairs, sorted by prefix for determinism.
    pub origins: Vec<(Prefix, Asn)>,
    /// Communities the origin attaches to every announcement of the prefix
    /// (broadcast signaling): action values chosen from its providers'
    /// dictionaries, plus the occasional echoed informational value
    /// (misconfiguration).
    pub communities: HashMap<Prefix, Vec<Community>>,
    /// Session-scoped signaling: communities attached only on the
    /// announcement of `prefix` toward one specific provider. These never
    /// appear off-path.
    pub targeted: HashMap<(Prefix, Asn), Vec<Community>>,
    /// Large communities (RFC 8092) attached at origination: 32-bit-ASN
    /// origins' informational self-tags, and large-form mirrors of
    /// broadcast action signals.
    pub large: HashMap<Prefix, Vec<LargeCommunity>>,
    /// Ground-truth intent of every large community this plan can emit
    /// (the evaluation oracle for the large-community extension).
    pub large_truth: HashMap<LargeCommunity, Intent>,
    /// ROV outcome per prefix (what on-path validators will tag).
    pub rov: HashMap<Prefix, RovStatus>,
}

impl OriginationPlan {
    /// Build the plan for a world. Deterministic in `cfg.seed`.
    pub fn build(topo: &Topology, policies: &PolicySet, cfg: &SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut plan = OriginationPlan::default();

        for asn in topo.asns_sorted() {
            let node = &topo.ases[&asn];
            if node.prefixes.is_empty() {
                continue;
            }
            let home_region = topo.geography.region_of(node.home);
            let providers = {
                let mut p = topo.providers(asn);
                p.sort_unstable();
                p
            };
            let multihomed = providers.len() >= 2;
            let signal_prob = if multihomed {
                cfg.action_signal_prob
            } else {
                cfg.singlehomed_signal_prob
            };

            for &prefix in &node.prefixes {
                let mut communities: Vec<Community> = Vec::new();
                let mut large: Vec<LargeCommunity> = Vec::new();

                // 32-bit-ASN operators cannot own regular communities; they
                // self-tag with informational large communities instead
                // (function 1 = origin city, 2 = origin region).
                if !asn.is_16bit() && rng.random_bool(cfg.large_self_tag_prob) {
                    let city = LargeCommunity::new(asn.value(), 1, node.home as u32);
                    let region = LargeCommunity::new(asn.value(), 2, home_region as u32);
                    for lc in [city, region] {
                        large.push(lc);
                        plan.large_truth.insert(lc, Intent::Information);
                    }
                }

                // Action communities: per provider that offers them.
                for &pr in &providers {
                    let Some(policy) = policies.get(pr) else {
                        continue;
                    };
                    let actions = policy.action_betas();
                    if actions.is_empty() || !rng.random_bool(signal_prob) {
                        continue;
                    }
                    let targeted = rng.random_bool(cfg.targeted_signal_prob);
                    let n = rng.random_range(1..=cfg.max_action_betas.max(1));
                    let mut chosen: Vec<Community> = Vec::new();
                    for _ in 0..n {
                        // Customers engineering their home region prefer
                        // geo-targeted values scoped to it.
                        let geo = policy.geo_action_betas(home_region);
                        let pool = if !geo.is_empty() && rng.random_bool(cfg.geo_action_bias) {
                            geo
                        } else {
                            actions
                        };
                        // Popularity skew: most customers use the provider's
                        // first (well-known) values.
                        let beta = if rng.random_bool(cfg.popular_bias) {
                            let head = pool.len().min(4);
                            pool[rng.random_range(0..head)]
                        } else {
                            match pool.choose(&mut rng) {
                                Some(&b) => b,
                                None => continue,
                            }
                        };
                        if let Some(c) = policy.community(beta) {
                            if !chosen.contains(&c) {
                                chosen.push(c);
                            }
                        }
                    }
                    if targeted {
                        let slot = plan.targeted.entry((prefix, pr)).or_default();
                        for c in chosen {
                            if !slot.contains(&c) {
                                slot.push(c);
                            }
                        }
                    } else {
                        for c in chosen {
                            if !communities.contains(&c) {
                                communities.push(c);
                            }
                            // Providers increasingly accept the large form
                            // of the same value alongside the regular one.
                            if rng.random_bool(cfg.large_action_mirror_prob) {
                                let lc = LargeCommunity::new(pr.value(), c.value as u32, 0);
                                if !large.contains(&lc) {
                                    large.push(lc);
                                }
                                plan.large_truth.insert(lc, Intent::Action);
                            }
                        }
                    }
                }

                // Misconfiguration echo: an informational value of a random
                // provider leaks onto the origin's own announcements.
                if !providers.is_empty() && rng.random_bool(cfg.misconfig_echo_prob) {
                    let pr = providers[rng.random_range(0..providers.len())];
                    if let Some(policy) = policies.get(pr) {
                        if let Some(&beta) = policy.info_betas().choose(&mut rng) {
                            if let Some(c) = policy.community(beta) {
                                if !communities.contains(&c) {
                                    communities.push(c);
                                }
                            }
                        }
                    }
                }

                // Private-ASN community residue (excluded by the method's
                // RFC 6996 rule, but present in real feeds).
                if rng.random_bool(cfg.private_community_prob) {
                    let private_asn = rng.random_range(64512..=65534u32) as u16;
                    communities.push(Community::new(private_asn, rng.random_range(0..=999)));
                }

                // ROV status.
                let roll: f64 = rng.random();
                let rov = if roll < cfg.rov_invalid_prob {
                    RovStatus::Invalid
                } else if roll < cfg.rov_invalid_prob + cfg.rov_notfound_prob {
                    RovStatus::NotFound
                } else {
                    RovStatus::Valid
                };

                plan.origins.push((prefix, asn));
                plan.communities.insert(prefix, communities);
                if !large.is_empty() {
                    plan.large.insert(prefix, large);
                }
                plan.rov.insert(prefix, rov);
            }
        }
        plan.origins.sort_unstable_by_key(|(p, _)| *p);
        plan
    }

    /// Number of originated prefixes.
    pub fn prefix_count(&self) -> usize {
        self.origins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_policy::{generate_policies, PolicyConfig};
    use bgp_topology::{generate, TopologyConfig};
    use bgp_types::Intent;

    fn world() -> (Topology, PolicySet) {
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 12,
            stub_count: 80,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let policies = generate_policies(&topo, &PolicyConfig::default());
        (topo, policies)
    }

    #[test]
    fn covers_every_originated_prefix() {
        let (topo, policies) = world();
        let plan = OriginationPlan::build(&topo, &policies, &SimConfig::default());
        let expected: usize = topo.ases.values().map(|n| n.prefixes.len()).sum();
        assert_eq!(plan.prefix_count(), expected);
        assert_eq!(plan.communities.len(), expected);
        assert_eq!(plan.rov.len(), expected);
    }

    #[test]
    fn deterministic() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let a = OriginationPlan::build(&topo, &policies, &cfg);
        let b = OriginationPlan::build(&topo, &policies, &cfg);
        assert_eq!(a.origins, b.origins);
        assert_eq!(a.communities, b.communities);
        let c = OriginationPlan::build(
            &topo,
            &policies,
            &SimConfig {
                seed: 1,
                ..SimConfig::default()
            },
        );
        assert_ne!(a.communities, c.communities);
    }

    #[test]
    fn signaled_actions_belong_to_providers() {
        let (topo, policies) = world();
        let plan = OriginationPlan::build(&topo, &policies, &SimConfig::default());
        for (prefix, origin) in &plan.origins {
            let providers = topo.providers(*origin);
            for c in &plan.communities[prefix] {
                let owner = Asn::new(c.asn as u32);
                if owner.is_private() {
                    continue; // internal residue, not provider-scoped
                }
                assert!(
                    providers.contains(&owner),
                    "origin {origin} attached {c} but {owner} is not a provider"
                );
            }
        }
    }

    #[test]
    fn most_attached_communities_are_actions() {
        let (topo, policies) = world();
        let plan = OriginationPlan::build(&topo, &policies, &SimConfig::default());
        let mut action = 0usize;
        let mut info = 0usize;
        for comms in plan.communities.values().chain(plan.targeted.values()) {
            for c in comms {
                match policies.intent_of(*c) {
                    Some(Intent::Action) => action += 1,
                    Some(Intent::Information) => info += 1,
                    None => assert!(
                        Asn::new(c.asn as u32).is_private(),
                        "attached undefined non-private community {c}"
                    ),
                }
            }
        }
        assert!(action > 0, "no action communities signaled");
        assert!(info > 0, "no misconfiguration echo happened");
        assert!(
            action > info * 2,
            "echo noise ({info}) should be rare vs actions ({action})"
        );
    }

    #[test]
    fn multihomed_origins_signal_more() {
        let (topo, policies) = world();
        let plan = OriginationPlan::build(&topo, &policies, &SimConfig::default());
        let mut multi = (0usize, 0usize); // (prefixes, with-actions)
        let mut single = (0usize, 0usize);
        for (prefix, origin) in &plan.origins {
            let providers = topo.providers(*origin).len();
            if providers == 0 {
                continue;
            }
            let has_action = plan.communities[prefix]
                .iter()
                .any(|c| policies.intent_of(*c) == Some(Intent::Action));
            let slot = if providers >= 2 {
                &mut multi
            } else {
                &mut single
            };
            slot.0 += 1;
            if has_action {
                slot.1 += 1;
            }
        }
        let multi_rate = multi.1 as f64 / multi.0.max(1) as f64;
        let single_rate = single.1 as f64 / single.0.max(1) as f64;
        assert!(
            multi_rate > single_rate,
            "multihomed rate {multi_rate:.2} should exceed single-homed {single_rate:.2}"
        );
    }

    #[test]
    fn rov_distribution_roughly_matches_config() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let plan = OriginationPlan::build(&topo, &policies, &cfg);
        let total = plan.rov.len() as f64;
        let invalid = plan
            .rov
            .values()
            .filter(|r| **r == RovStatus::Invalid)
            .count() as f64
            / total;
        let valid = plan
            .rov
            .values()
            .filter(|r| **r == RovStatus::Valid)
            .count() as f64
            / total;
        assert!(invalid < cfg.rov_invalid_prob * 3.0 + 0.02);
        assert!(valid > 0.5);
    }
}
