//! Per-AS routing state.

use bgp_types::{AsPath, Asn, Community, LargeCommunity};

/// Where a route was learned, in Gao-Rexford preference order (higher wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrefClass {
    /// Learned from a provider (least preferred: costs money).
    Provider = 0,
    /// Learned through an IXP route server (multilateral peering).
    RsPeer = 1,
    /// Learned from a bilateral settlement-free peer.
    Peer = 2,
    /// Learned from a customer (most preferred: earns money).
    Customer = 3,
    /// Originated by this AS itself.
    Own = 4,
}

impl PrefClass {
    /// Default local preference routers assign per class.
    pub fn default_local_pref(self) -> u32 {
        match self {
            PrefClass::Own => 300,
            PrefClass::Customer => 200,
            PrefClass::Peer | PrefClass::RsPeer => 100,
            PrefClass::Provider => 50,
        }
    }

    /// Valley-free export: routes may go to peers/providers/route servers
    /// only when we originated them or learned them from a customer.
    pub fn exportable_beyond_customers(self) -> bool {
        matches!(self, PrefClass::Own | PrefClass::Customer)
    }
}

/// The best route an AS holds for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibRoute {
    /// AS path as received (this AS not included; origin last; empty for
    /// self-originated routes).
    pub path: AsPath,
    /// Communities on the route object (originator's action choices plus
    /// every on-path AS's informational tags).
    pub communities: Vec<Community>,
    /// Large communities (RFC 8092): self-tags of 32-bit-ASN origins and
    /// large-form action signals toward providers that accept them.
    pub large_communities: Vec<LargeCommunity>,
    /// How the route was learned.
    pub class: PrefClass,
    /// The neighbor it was learned from (`None` for own routes).
    pub from: Option<Asn>,
    /// Effective local preference (default per class, possibly overridden
    /// by an action community directed at this AS).
    pub local_pref: u32,
}

impl RibRoute {
    /// BGP decision process, deterministic: preference class, then local
    /// preference, then shortest AS path, then lowest neighbor ASN.
    ///
    /// Local preference is compared *within* a class only — classes rank
    /// first, which keeps the simulation inside the convergence-safe
    /// Gao-Rexford regime even when customers set extreme local-pref values
    /// via action communities (documented simplification).
    pub fn better_than(&self, other: &RibRoute) -> bool {
        let key = |r: &RibRoute| {
            (
                r.class,
                r.local_pref,
                std::cmp::Reverse(r.path.path_length()),
                std::cmp::Reverse(r.from.map(|a| a.value()).unwrap_or(0)),
            )
        };
        key(self) > key(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(class: PrefClass, len: usize, from: u32) -> RibRoute {
        RibRoute {
            path: AsPath::from_sequence((1..=len as u32).map(Asn::new)),
            communities: vec![],
            large_communities: vec![],
            class,
            from: Some(Asn::new(from)),
            local_pref: class.default_local_pref(),
        }
    }

    #[test]
    fn class_ordering() {
        assert!(PrefClass::Own > PrefClass::Customer);
        assert!(PrefClass::Customer > PrefClass::Peer);
        assert!(PrefClass::Peer > PrefClass::RsPeer);
        assert!(PrefClass::RsPeer > PrefClass::Provider);
    }

    #[test]
    fn customer_beats_shorter_peer() {
        let customer = route(PrefClass::Customer, 5, 9);
        let peer = route(PrefClass::Peer, 1, 8);
        assert!(customer.better_than(&peer));
        assert!(!peer.better_than(&customer));
    }

    #[test]
    fn local_pref_breaks_within_class() {
        let mut a = route(PrefClass::Customer, 2, 9);
        let b = route(PrefClass::Customer, 1, 8);
        assert!(b.better_than(&a)); // shorter wins at equal pref
        a.local_pref = 250;
        assert!(a.better_than(&b)); // higher pref wins despite longer path
    }

    #[test]
    fn shorter_path_wins_then_lower_asn() {
        let short = route(PrefClass::Peer, 2, 50);
        let long = route(PrefClass::Peer, 3, 10);
        assert!(short.better_than(&long));
        let a = route(PrefClass::Peer, 2, 10);
        let b = route(PrefClass::Peer, 2, 20);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
    }

    #[test]
    fn better_than_is_irreflexive() {
        let r = route(PrefClass::Peer, 2, 10);
        assert!(!r.better_than(&r.clone()));
    }

    #[test]
    fn export_rule() {
        assert!(PrefClass::Own.exportable_beyond_customers());
        assert!(PrefClass::Customer.exportable_beyond_customers());
        assert!(!PrefClass::Peer.exportable_beyond_customers());
        assert!(!PrefClass::RsPeer.exportable_beyond_customers());
        assert!(!PrefClass::Provider.exportable_beyond_customers());
    }
}
