//! Simulation parameters.

/// Knobs controlling community attachment, noise, and execution.
///
/// The defaults are calibrated so the synthetic data reproduces the *shape*
/// of the paper's figures (see EXPERIMENTS.md): informational clusters with
/// very high on-path:off-path ratios, action clusters with low ones, and
/// enough mixed clusters for the 160:1 threshold to matter.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for origination choices (which customers signal what).
    pub seed: u64,
    /// Probability a *multihomed* origin attaches action communities of a
    /// given provider to its announcements. Traffic engineering is mostly a
    /// multihomed-network activity — and multihoming is what makes the
    /// community visible off-path.
    pub action_signal_prob: f64,
    /// Same, for single-homed origins (rare: little to engineer).
    pub singlehomed_signal_prob: f64,
    /// Maximum distinct action values chosen per (origin, provider) pair.
    pub max_action_betas: usize,
    /// Probability a signaling customer scopes the action community to the
    /// session toward the target provider only (no copies on its other
    /// announcements). Only the remaining *broadcast* signalers create the
    /// off-path evidence of Fig 5 — "there is no guarantee that other ASes
    /// signaling action communities to the same provider AS would have the
    /// same behavior" (§5.1).
    pub targeted_signal_prob: f64,
    /// Probability an action choice is drawn from the provider's first few
    /// (popular) values instead of uniformly — usage of community values is
    /// heavily skewed in the wild, which concentrates off-path evidence in
    /// a cluster's popular members.
    pub popular_bias: f64,
    /// Probability an action choice prefers geo-targeted values scoped to
    /// the origin's home region (customers engineer the regions they are
    /// in — this is what makes traffic-engineering communities correlate
    /// with geography and fool isolation-based location inference,
    /// Table 1).
    pub geo_action_bias: f64,
    /// Probability an origin erroneously echoes one of its providers'
    /// *informational* values on its own announcements (observed in the
    /// wild; produces off-path informational sightings).
    pub misconfig_echo_prob: f64,
    /// Probability an origin leaks an internal private-ASN community
    /// (`64512–65534:x`) onto its announcements — common operational
    /// residue, and the population the method's private-ASN exclusion
    /// rule exists for.
    pub private_community_prob: f64,
    /// Probability a prefix is ROV-invalid.
    pub rov_invalid_prob: f64,
    /// Probability a prefix has no covering ROA.
    pub rov_notfound_prob: f64,
    /// Worker threads for parallel propagation; 0 = one per CPU.
    pub threads: usize,
    /// Unix time of the RIB snapshot (defaults to 2023-05-01T00:00Z, the
    /// start of the paper's measurement week).
    pub base_timestamp: u32,
    /// Fraction of prefixes whose primary provider link fails on each
    /// simulated churn day, exposing alternate paths.
    pub churn_fraction: f64,
    /// Probability a 32-bit-ASN origin self-tags its announcements with
    /// informational large communities (RFC 8092) — such operators cannot
    /// own regular communities at all.
    pub large_self_tag_prob: f64,
    /// Probability a broadcast regular action signal is accompanied by its
    /// large-community form (`provider:β:0`), as providers increasingly
    /// accept both.
    pub large_action_mirror_prob: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x51E5_2023,
            action_signal_prob: 0.70,
            singlehomed_signal_prob: 0.12,
            max_action_betas: 2,
            targeted_signal_prob: 0.60,
            popular_bias: 0.5,
            geo_action_bias: 0.60,
            misconfig_echo_prob: 0.12,
            private_community_prob: 0.02,
            rov_invalid_prob: 0.05,
            rov_notfound_prob: 0.25,
            threads: 0,
            base_timestamp: 1_682_899_200,
            churn_fraction: 0.15,
            large_self_tag_prob: 0.8,
            large_action_mirror_prob: 0.3,
        }
    }
}

impl SimConfig {
    /// Resolve the worker thread count.
    pub fn effective_threads(&self) -> usize {
        bgp_types::effective_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_probabilities() {
        let c = SimConfig::default();
        for p in [
            c.action_signal_prob,
            c.singlehomed_signal_prob,
            c.targeted_signal_prob,
            c.popular_bias,
            c.geo_action_bias,
            c.misconfig_echo_prob,
            c.private_community_prob,
            c.large_self_tag_prob,
            c.large_action_mirror_prob,
            c.rov_invalid_prob,
            c.rov_notfound_prob,
            c.churn_fraction,
        ] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(c.rov_invalid_prob + c.rov_notfound_prob < 1.0);
    }

    #[test]
    fn effective_threads_never_zero() {
        assert!(SimConfig::default().effective_threads() >= 1);
        assert_eq!(
            SimConfig {
                threads: 3,
                ..Default::default()
            }
            .effective_threads(),
            3
        );
    }
}
