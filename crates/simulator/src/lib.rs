//! BGP route propagation over the synthetic Internet.
//!
//! This crate turns a topology plus community dictionaries into the thing
//! the paper actually consumes: routes observed at vantage points, with
//! communities attached by the mechanisms that make the inference method
//! work —
//!
//! * **information communities** are attached by each AS *at import*
//!   (ingress city/country/region, neighbor relationship, ROV status,
//!   interface), so the tagging AS is always on the AS path of routes
//!   carrying them;
//! * **action communities** are attached by originating customers and
//!   travel on *every* announcement the customer makes, so multihoming puts
//!   them on paths that avoid the target AS (the Fig 5 off-path mechanism);
//! * the target AS **honors** action semantics: selective no-export,
//!   prepending, local-pref overrides, blackholing — so the simulated
//!   routing tables actually react to the communities;
//! * a small rate of **misconfiguration echo** (customers re-using a
//!   provider's informational values on their own announcements) produces
//!   the off-path informational noise that makes clusters "mixed" (Fig 6);
//! * **community scrubbers** strip everything they propagate (§5.1's ≈400
//!   ASes), and **IXP route servers** reflect routes without entering the
//!   AS path.
//!
//! Propagation follows the Gao-Rexford model: routes from customers are
//! preferred over peer routes over provider routes, valley-free export, and
//! deterministic tie-breaking; the per-prefix computation runs to a fixed
//! point and is embarrassingly parallel across prefixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod config;
pub mod origination;
pub mod propagate;
pub mod route;

pub use collect::{select_vantage_points, VantagePoint, VpConfig};
pub use config::SimConfig;
pub use origination::OriginationPlan;
pub use propagate::{link_key, Simulator};
pub use route::{PrefClass, RibRoute};
