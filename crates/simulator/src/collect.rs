//! Vantage points and collector output.
//!
//! Mirrors how RouteViews/RIS work: a set of peer ASes ("vantage points")
//! export routes to a collector. Transit networks give full feeds; some
//! peers only export their customer cone. The collector's RIB snapshot and
//! per-day update streams are the paper's §4 input data.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bgp_topology::{Tier, Topology};
use bgp_types::{Asn, Observation, Prefix};

use crate::propagate::{link_key, Simulator};
use crate::route::RibRoute;

/// A propagation job: one prefix with its failed-link set.
type Job = (Prefix, HashSet<(Asn, Asn)>);

/// One collector peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantagePoint {
    /// The peering AS.
    pub asn: Asn,
    /// Full table, or customer-cone-only (partial) feed.
    pub full_feed: bool,
}

/// Vantage point selection parameters.
#[derive(Debug, Clone)]
pub struct VpConfig {
    /// Seed for sampling.
    pub seed: u64,
    /// How many mid-transit ASes peer with the collector.
    pub mid_count: usize,
    /// How many stubs peer with the collector.
    pub stub_count: usize,
    /// Fraction of sampled (non-tier-1/large) vantage points that provide
    /// only a partial (own + customer routes) feed.
    pub partial_fraction: f64,
}

impl Default for VpConfig {
    fn default() -> Self {
        VpConfig {
            seed: 0xC011_EC70,
            mid_count: 60,
            stub_count: 80,
            partial_fraction: 0.2,
        }
    }
}

/// Choose the collector's peers: every tier-1 and large transit (full
/// feeds, like the big carriers that feed RouteViews), plus samples of
/// mid-transit and stub networks.
pub fn select_vantage_points(topo: &Topology, cfg: &VpConfig) -> Vec<VantagePoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut vps: Vec<VantagePoint> = Vec::new();
    for asn in topo
        .asns_of_tier(Tier::Tier1)
        .into_iter()
        .chain(topo.asns_of_tier(Tier::LargeTransit))
    {
        vps.push(VantagePoint {
            asn,
            full_feed: true,
        });
    }
    let sample = |pool: Vec<Asn>, count: usize, rng: &mut StdRng| -> Vec<VantagePoint> {
        let mut pool = pool;
        pool.shuffle(rng);
        pool.into_iter()
            .take(count)
            .map(|asn| VantagePoint {
                asn,
                full_feed: !rng.random_bool(cfg.partial_fraction),
            })
            .collect()
    };
    vps.extend(sample(
        topo.asns_of_tier(Tier::MidTransit),
        cfg.mid_count,
        &mut rng,
    ));
    vps.extend(sample(
        topo.asns_of_tier(Tier::Stub),
        cfg.stub_count,
        &mut rng,
    ));
    vps.sort_unstable_by_key(|v| v.asn);
    vps.dedup_by_key(|v| v.asn);
    vps
}

/// Extract what `vp` exports to the collector for one routed prefix.
fn observe(
    topo: &Topology,
    vp: &VantagePoint,
    prefix: Prefix,
    route: &RibRoute,
    time: u32,
) -> Option<Observation> {
    if !vp.full_feed && !route.class.exportable_beyond_customers() {
        return None;
    }
    let node = &topo.ases[&vp.asn];
    let (communities, large_communities) = if node.scrubs_communities {
        (Vec::new(), Vec::new())
    } else {
        (route.communities.clone(), route.large_communities.clone())
    };
    Some(Observation {
        vp: vp.asn,
        prefix,
        path: route.path.prepended(vp.asn, 1),
        communities,
        large_communities,
        time,
    })
}

impl Simulator<'_> {
    /// Compute the full RIB snapshot: propagate every prefix and record
    /// every vantage point's best route. Runs prefixes in parallel;
    /// output order is deterministic (by prefix, then vantage point).
    pub fn collect_rib(&self, vps: &[VantagePoint]) -> Vec<Observation> {
        let time = self.cfg.base_timestamp;
        let jobs: Vec<Job> = self
            .plan()
            .origins
            .iter()
            .map(|&(p, _)| (p, HashSet::new()))
            .collect();
        self.collect_jobs(&jobs, vps, time)
    }

    /// Simulate one churn day: a fraction of prefixes lose one randomly
    /// chosen origin-provider link, exposing alternate paths. `day` is
    /// 1-based; observations carry that day's timestamps.
    pub fn collect_churn_day(&self, vps: &[VantagePoint], day: u32) -> Vec<Observation> {
        let mut rng = StdRng::seed_from_u64(
            self.cfg.seed ^ 0xDA11_u64.wrapping_mul(day as u64 + 1).rotate_left(17),
        );
        let time = self.cfg.base_timestamp + day * 86_400;
        let mut jobs = Vec::new();
        for &(prefix, origin) in &self.plan().origins {
            if !rng.random_bool(self.cfg.churn_fraction) {
                continue;
            }
            let mut providers = self.topo.providers(origin);
            providers.sort_unstable();
            if providers.is_empty() {
                continue;
            }
            let failed = providers[rng.random_range(0..providers.len())];
            let mut excluded = HashSet::new();
            excluded.insert(link_key(origin, failed));
            jobs.push((prefix, excluded));
        }
        self.collect_jobs(&jobs, vps, time)
    }

    /// Run propagation jobs across worker threads; merge results in job
    /// order so output is deterministic regardless of scheduling.
    fn collect_jobs(&self, jobs: &[Job], vps: &[VantagePoint], time: u32) -> Vec<Observation> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let threads = self.cfg.effective_threads().min(jobs.len());
        let chunk_size = jobs.len().div_ceil(threads);
        let chunks: Vec<&[Job]> = jobs.chunks(chunk_size).collect();
        let results: Vec<Vec<Observation>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for (prefix, excluded) in chunk {
                            let ribs = self.propagate(*prefix, excluded);
                            for vp in vps {
                                if let Some(route) = ribs.get(&vp.asn) {
                                    if let Some(obs) = observe(self.topo, vp, *prefix, route, time)
                                    {
                                        out.push(obs);
                                    }
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use bgp_policy::{generate_policies, PolicyConfig, PolicySet};
    use bgp_topology::{generate, TopologyConfig};

    fn world() -> (Topology, PolicySet) {
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 12,
            stub_count: 60,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let policies = generate_policies(&topo, &PolicyConfig::default());
        (topo, policies)
    }

    #[test]
    fn vp_selection_is_deterministic_and_sorted() {
        let (topo, _) = world();
        let cfg = VpConfig {
            mid_count: 5,
            stub_count: 10,
            ..Default::default()
        };
        let a = select_vantage_points(&topo, &cfg);
        let b = select_vantage_points(&topo, &cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].asn < w[1].asn));
        // tier1 + large always included.
        assert!(a.len() >= 3 + 6 + 5 + 10 - 2);
    }

    #[test]
    fn tier1_and_large_are_full_feed() {
        let (topo, _) = world();
        let vps = select_vantage_points(&topo, &VpConfig::default());
        let big: HashSet<Asn> = topo
            .asns_of_tier(Tier::Tier1)
            .into_iter()
            .chain(topo.asns_of_tier(Tier::LargeTransit))
            .collect();
        for vp in vps.iter().filter(|v| big.contains(&v.asn)) {
            assert!(vp.full_feed);
        }
    }

    #[test]
    fn rib_collection_covers_prefixes_and_vps() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let vps = select_vantage_points(
            &topo,
            &VpConfig {
                mid_count: 5,
                stub_count: 5,
                ..Default::default()
            },
        );
        let obs = sim.collect_rib(&vps);
        assert!(!obs.is_empty());
        let prefixes: HashSet<Prefix> = obs.iter().map(|o| o.prefix).collect();
        assert!(prefixes.len() as f64 > sim.plan().prefix_count() as f64 * 0.9);
        // Every observation's path starts with its vantage point.
        for o in &obs {
            assert_eq!(o.path.head(), Some(o.vp));
        }
    }

    #[test]
    fn collection_is_deterministic_across_thread_counts() {
        let (topo, policies) = world();
        let cfg1 = SimConfig {
            threads: 1,
            ..SimConfig::default()
        };
        let cfg4 = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        let vps_cfg = VpConfig {
            mid_count: 4,
            stub_count: 4,
            ..Default::default()
        };
        let sim1 = Simulator::new(&topo, &policies, &cfg1);
        let sim4 = Simulator::new(&topo, &policies, &cfg4);
        let vps = select_vantage_points(&topo, &vps_cfg);
        assert_eq!(sim1.collect_rib(&vps), sim4.collect_rib(&vps));
    }

    #[test]
    fn churn_day_produces_new_tuples() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let vps = select_vantage_points(
            &topo,
            &VpConfig {
                mid_count: 5,
                stub_count: 5,
                ..Default::default()
            },
        );
        let base = sim.collect_rib(&vps);
        let day1 = sim.collect_churn_day(&vps, 1);
        assert!(!day1.is_empty());
        // Day timestamps advance.
        assert!(day1.iter().all(|o| o.time == cfg.base_timestamp + 86_400));
        // Churn must expose at least one path tuple the base RIB lacks.
        let base_tuples: HashSet<String> = base
            .iter()
            .map(|o| format!("{}|{:?}", o.path, o.communities))
            .collect();
        let new = day1
            .iter()
            .filter(|o| !base_tuples.contains(&format!("{}|{:?}", o.path, o.communities)))
            .count();
        assert!(new > 0, "churn exposed no new tuples");
    }

    #[test]
    fn churn_days_differ() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let vps = select_vantage_points(
            &topo,
            &VpConfig {
                mid_count: 3,
                stub_count: 3,
                ..Default::default()
            },
        );
        let d1 = sim.collect_churn_day(&vps, 1);
        let d2 = sim.collect_churn_day(&vps, 2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn partial_feeds_export_less() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let stub = topo.asns_of_tier(Tier::Stub)[0];
        let full = vec![VantagePoint {
            asn: stub,
            full_feed: true,
        }];
        let partial = vec![VantagePoint {
            asn: stub,
            full_feed: false,
        }];
        let n_full = sim.collect_rib(&full).len();
        let n_partial = sim.collect_rib(&partial).len();
        assert!(n_full > n_partial, "full {n_full} <= partial {n_partial}");
        assert!(n_partial >= 1, "stub exports at least its own prefixes");
    }
}
