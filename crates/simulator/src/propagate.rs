//! Per-prefix route propagation to a Gao-Rexford fixed point, with full
//! community semantics.

use std::collections::{HashMap, HashSet};

use bgp_policy::{PolicySet, Purpose, RelClass};
use bgp_topology::{CityId, NeighborKind, Topology};
use bgp_types::{Asn, Community, Prefix};

use crate::config::SimConfig;
use crate::origination::OriginationPlan;
use crate::route::{PrefClass, RibRoute};

/// An undirected link key, normalized so either endpoint order matches.
pub fn link_key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The propagation engine: borrows the world, owns the origination plan and
/// per-link caches, and computes routing outcomes per prefix.
#[derive(Debug)]
pub struct Simulator<'a> {
    /// The AS graph.
    pub topo: &'a Topology,
    /// Community dictionaries (ground truth + behaviour).
    pub policies: &'a PolicySet,
    /// Simulation knobs.
    pub cfg: &'a SimConfig,
    plan: OriginationPlan,
    origin_of: HashMap<Prefix, Asn>,
    /// `(receiver, sender)` → city where the receiver's ingress router sits.
    link_city: HashMap<(Asn, Asn), CityId>,
    sorted_asns: Vec<Asn>,
}

/// Result of evaluating one neighbor's export before building the route.
struct Candidate {
    class: PrefClass,
    local_pref: u32,
    path_len: usize,
    from: Asn,
    from_kind: NeighborKind,
    extra_prepend: u8,
}

impl Candidate {
    fn key(
        &self,
    ) -> (
        PrefClass,
        u32,
        std::cmp::Reverse<usize>,
        std::cmp::Reverse<u32>,
    ) {
        (
            self.class,
            self.local_pref,
            std::cmp::Reverse(self.path_len),
            std::cmp::Reverse(self.from.value()),
        )
    }
}

impl<'a> Simulator<'a> {
    /// Build a simulator: plans originations and precomputes per-link
    /// ingress cities. Deterministic in `cfg.seed`.
    pub fn new(topo: &'a Topology, policies: &'a PolicySet, cfg: &'a SimConfig) -> Self {
        let plan = OriginationPlan::build(topo, policies, cfg);
        let origin_of = plan.origins.iter().copied().collect();
        let mut link_city = HashMap::new();
        for link in &topo.links {
            for (me, other) in [(link.a, link.b), (link.b, link.a)] {
                let mine = &topo.ases[&me].presence;
                let theirs = &topo.ases[&other].presence;
                let city = mine
                    .iter()
                    .copied()
                    .filter(|c| theirs.contains(c))
                    .min()
                    .unwrap_or(topo.ases[&me].home);
                link_city.insert((me, other), city);
            }
        }
        Simulator {
            topo,
            policies,
            cfg,
            plan,
            origin_of,
            link_city,
            sorted_asns: topo.asns_sorted(),
        }
    }

    /// The origination plan in effect.
    pub fn plan(&self) -> &OriginationPlan {
        &self.plan
    }

    /// The origin of a prefix, if it is originated in this world.
    pub fn origin_of(&self, prefix: Prefix) -> Option<Asn> {
        self.origin_of.get(&prefix).copied()
    }

    /// Propagate one prefix to a fixed point and return each AS's best
    /// route. `excluded_links` (normalized with [`link_key`]) simulates link
    /// failures for churn experiments.
    pub fn propagate(
        &self,
        prefix: Prefix,
        excluded_links: &HashSet<(Asn, Asn)>,
    ) -> HashMap<Asn, RibRoute> {
        let Some(origin) = self.origin_of(prefix) else {
            return HashMap::new();
        };
        let mut ribs: HashMap<Asn, RibRoute> = HashMap::new();
        ribs.insert(
            origin,
            RibRoute {
                path: bgp_types::AsPath::empty(),
                communities: self
                    .plan
                    .communities
                    .get(&prefix)
                    .cloned()
                    .unwrap_or_default(),
                large_communities: self.plan.large.get(&prefix).cloned().unwrap_or_default(),
                class: PrefClass::Own,
                from: None,
                local_pref: PrefClass::Own.default_local_pref(),
            },
        );

        // Gauss-Seidel sweeps to a fixed point. Gao-Rexford preferences
        // (class-first) guarantee convergence; the cap is a safety net.
        const MAX_SWEEPS: usize = 64;
        for _sweep in 0..MAX_SWEEPS {
            let mut changed = false;
            for &x in &self.sorted_asns {
                if x == origin {
                    continue;
                }
                let best = self.best_candidate(x, prefix, &ribs, excluded_links);
                match best {
                    None => {
                        if ribs.remove(&x).is_some() {
                            changed = true;
                        }
                    }
                    Some(cand) => {
                        let route = self.build_route(x, prefix, &cand, &ribs);
                        if ribs.get(&x) != Some(&route) {
                            ribs.insert(x, route);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return ribs;
            }
        }
        debug_assert!(false, "propagation did not converge for {prefix}");
        ribs
    }

    /// Evaluate every neighbor's export toward `x` and pick the best.
    fn best_candidate(
        &self,
        x: Asn,
        prefix: Prefix,
        ribs: &HashMap<Asn, RibRoute>,
        excluded_links: &HashSet<(Asn, Asn)>,
    ) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        for &(nb, kind_from_x) in self.topo.neighbors(x) {
            if excluded_links.contains(&link_key(x, nb)) {
                continue;
            }
            let Some(r) = ribs.get(&nb) else { continue };
            let nb_is_rs = kind_from_x == NeighborKind::RouteServer;

            // Valley-free export at nb toward x.
            let kind_from_nb = invert(kind_from_x);
            if !export_allowed(nb_is_rs, r.class, kind_from_nb) {
                continue;
            }
            // Action-community effects at the exporter.
            let mut extra_prepend = 0u8;
            if !nb_is_rs {
                match self.export_effects(nb, x, &r.communities) {
                    ExportDecision::Suppress => continue,
                    ExportDecision::Allow { prepend } => extra_prepend = prepend,
                }
            }
            // Loop prevention: x must not already be in the path.
            if nb == x || r.path.contains(x) {
                continue;
            }
            let class = class_at_importer(kind_from_x);
            let mut local_pref = class.default_local_pref();
            if x.is_16bit() {
                let city = self.ingress_city(x, nb);
                let region = self.topo.geography.region_of(city);
                for c in &r.communities {
                    if c.asn as u32 != x.value() {
                        continue;
                    }
                    match self.policies.get(x).and_then(|p| p.purpose_of(c.value)) {
                        Some(Purpose::SetLocalPref(v)) => local_pref = *v,
                        Some(Purpose::SetLocalPrefInRegion { region: r2, value })
                            if *r2 == region =>
                        {
                            local_pref = *value
                        }
                        Some(Purpose::GracefulShutdown) => local_pref = 0,
                        _ => {}
                    }
                }
            }
            let path_len = r.path.path_length()
                + if nb_is_rs {
                    0
                } else {
                    1 + extra_prepend as usize
                };
            let cand = Candidate {
                class,
                local_pref,
                path_len,
                from: nb,
                from_kind: kind_from_x,
                extra_prepend,
            };
            if best.as_ref().map(|b| cand.key() > b.key()).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let _ = prefix;
        best
    }

    /// Materialize the winning candidate into a full route, applying
    /// scrubbing, prepending, and x's informational tagging.
    fn build_route(
        &self,
        x: Asn,
        prefix: Prefix,
        cand: &Candidate,
        ribs: &HashMap<Asn, RibRoute>,
    ) -> RibRoute {
        let r = &ribs[&cand.from];
        let from_node = &self.topo.ases[&cand.from];
        let nb_is_rs = cand.from_kind == NeighborKind::RouteServer;

        let path = if nb_is_rs {
            r.path.clone()
        } else {
            r.path.prepended(cand.from, 1 + cand.extra_prepend as usize)
        };
        let mut communities: Vec<Community> = if from_node.scrubs_communities {
            Vec::new()
        } else {
            r.communities.clone()
        };
        let large_communities = if from_node.scrubs_communities {
            Vec::new()
        } else {
            r.large_communities.clone()
        };

        // Session-scoped action communities: attached by the origin only on
        // its announcement toward this specific provider.
        if r.class == PrefClass::Own && !from_node.scrubs_communities {
            if let Some(extra) = self.plan.targeted.get(&(prefix, x)) {
                for c in extra {
                    if !communities.contains(c) {
                        communities.push(*c);
                    }
                }
            }
        }

        // x tags the route with its informational communities at import.
        if x.is_16bit() {
            if let Some(policy) = self.policies.get(x) {
                let city = self.ingress_city(x, cand.from);
                let salt = cand.from.value() as u64;
                let mut tags: Vec<u16> =
                    policy.ingress_location_betas(city, &self.topo.geography, salt);
                if let Some(b) = policy.relationship_beta(rel_class(cand.from_kind)) {
                    tags.push(b);
                }
                if let Some(rov) = self.plan.rov.get(&prefix) {
                    if let Some(b) = policy.rov_beta(*rov) {
                        tags.push(b);
                    }
                }
                // Interfaces vary per (neighbor, prefix): parallel links and
                // LAG members spread a neighbor's routes across interfaces.
                if let Some(b) = policy.interface_beta(salt ^ prefix_salt(prefix)) {
                    tags.push(b);
                }
                for beta in tags {
                    if let Some(c) = policy.community(beta) {
                        if !communities.contains(&c) {
                            communities.push(c);
                        }
                    }
                }
            }
        }

        RibRoute {
            path,
            communities,
            large_communities,
            class: cand.class,
            from: Some(cand.from),
            local_pref: cand.local_pref,
        }
    }

    /// Action-community processing when `exporter` announces toward `target`.
    fn export_effects(
        &self,
        exporter: Asn,
        target: Asn,
        communities: &[Community],
    ) -> ExportDecision {
        // RFC 1997 well-known values apply regardless of dictionaries.
        if communities.contains(&Community::NO_EXPORT)
            || communities.contains(&Community::NO_ADVERTISE)
        {
            return ExportDecision::Suppress;
        }
        let Some(policy) = (exporter.is_16bit())
            .then(|| self.policies.get(exporter))
            .flatten()
        else {
            return ExportDecision::Allow { prepend: 0 };
        };
        let target_region = self.topo.geography.region_of(self.topo.ases[&target].home);
        let mut prepend = 0u8;
        let mut announce_targets: Option<bool> = None; // Some(matched)
        for c in communities {
            if c.asn as u32 != exporter.value() {
                continue;
            }
            match policy.purpose_of(c.value) {
                Some(Purpose::SuppressToAs(t)) if *t == target => return ExportDecision::Suppress,
                Some(Purpose::SuppressInRegion(r)) if *r == target_region => {
                    return ExportDecision::Suppress
                }
                Some(Purpose::SuppressAll) | Some(Purpose::Blackhole) => {
                    return ExportDecision::Suppress
                }
                Some(Purpose::PrependToAs { asn, times, .. }) if *asn == target => {
                    prepend = prepend.saturating_add(*times)
                }
                Some(Purpose::PrependAll(times)) => prepend = prepend.saturating_add(*times),
                Some(Purpose::AnnounceToAs(t)) => {
                    let matched = announce_targets.unwrap_or(false) || *t == target;
                    announce_targets = Some(matched);
                }
                _ => {}
            }
        }
        if announce_targets == Some(false) {
            return ExportDecision::Suppress;
        }
        ExportDecision::Allow { prepend }
    }

    /// The city where `receiver`'s ingress router for the `sender` link sits.
    fn ingress_city(&self, receiver: Asn, sender: Asn) -> CityId {
        self.link_city
            .get(&(receiver, sender))
            .copied()
            .unwrap_or(self.topo.ases[&receiver].home)
    }
}

enum ExportDecision {
    Suppress,
    Allow { prepend: u8 },
}

/// A cheap deterministic hash of a prefix for salting per-prefix choices.
fn prefix_salt(prefix: Prefix) -> u64 {
    let mut h: u64 = prefix.len() as u64;
    match prefix.addr() {
        std::net::IpAddr::V4(a) => h ^= u32::from(a) as u64,
        std::net::IpAddr::V6(a) => h ^= u128::from(a) as u64 ^ (u128::from(a) >> 64) as u64,
    }
    h.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// How `nb` sees `x`, given how `x` sees `nb`.
fn invert(kind: NeighborKind) -> NeighborKind {
    match kind {
        NeighborKind::Provider => NeighborKind::Customer,
        NeighborKind::Customer => NeighborKind::Provider,
        NeighborKind::Peer => NeighborKind::Peer,
        NeighborKind::RouteServer => NeighborKind::RsMember,
        NeighborKind::RsMember => NeighborKind::RouteServer,
    }
}

/// Valley-free export from an AS holding a route of `class` toward a
/// neighbor it sees as `to_kind`. Route servers reflect everything.
fn export_allowed(exporter_is_rs: bool, class: PrefClass, to_kind: NeighborKind) -> bool {
    if exporter_is_rs {
        return true;
    }
    match to_kind {
        NeighborKind::Customer | NeighborKind::RsMember => true,
        NeighborKind::Provider | NeighborKind::Peer | NeighborKind::RouteServer => {
            class.exportable_beyond_customers()
        }
    }
}

/// Preference class at the importer, from how it sees the exporting
/// neighbor.
fn class_at_importer(kind_to_neighbor: NeighborKind) -> PrefClass {
    match kind_to_neighbor {
        NeighborKind::Customer => PrefClass::Customer,
        NeighborKind::Peer => PrefClass::Peer,
        NeighborKind::Provider => PrefClass::Provider,
        NeighborKind::RouteServer => PrefClass::RsPeer,
        // The route server itself treats member routes like peer routes.
        NeighborKind::RsMember => PrefClass::Peer,
    }
}

/// The relationship class recorded in informational tags.
fn rel_class(kind_to_neighbor: NeighborKind) -> RelClass {
    match kind_to_neighbor {
        NeighborKind::Customer => RelClass::Customer,
        NeighborKind::Provider => RelClass::Provider,
        NeighborKind::Peer | NeighborKind::RouteServer | NeighborKind::RsMember => RelClass::Peer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_policy::{generate_policies, PolicyConfig};
    use bgp_topology::{generate, Tier, TopologyConfig};

    fn world() -> (bgp_topology::Topology, PolicySet) {
        let topo = generate(&TopologyConfig {
            tier1_count: 3,
            large_transit_count: 6,
            mid_transit_count: 12,
            stub_count: 60,
            ixp_count: 1,
            ..TopologyConfig::default()
        });
        let policies = generate_policies(&topo, &PolicyConfig::default());
        (topo, policies)
    }

    #[test]
    fn every_as_reaches_most_prefixes() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let (prefix, origin) = sim.plan().origins[0];
        let ribs = sim.propagate(prefix, &HashSet::new());
        assert_eq!(ribs[&origin].class, PrefClass::Own);
        // Suppression can hide the route from a few ASes, but the bulk of
        // the Internet must have it.
        let reach = ribs.len() as f64 / topo.as_count() as f64;
        assert!(
            reach > 0.8,
            "only {:.0}% of ASes got the route",
            reach * 100.0
        );
    }

    #[test]
    fn paths_are_loop_free_and_end_at_origin() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        for &(prefix, origin) in sim.plan().origins.iter().take(30) {
            let ribs = sim.propagate(prefix, &HashSet::new());
            for (asn, route) in &ribs {
                assert!(!route.path.contains(*asn), "AS {asn} in its own path");
                assert!(!route.path.has_loop(), "loop in path {}", route.path);
                if *asn != origin {
                    assert_eq!(route.path.origin(), Some(origin));
                }
            }
        }
    }

    #[test]
    fn paths_are_valley_free() {
        // A path (observer first, origin last) read left to right is the
        // route's journey in reverse: first the provider→customer descents,
        // then at most one peer crossing, then the customer→provider
        // ascents back toward the origin. Equivalently: once a step is a
        // peer crossing or an ascent (w[0] sees w[1] as Customer), no later
        // step may be a descent (Provider) or another peer crossing.
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        for &(prefix, _) in sim.plan().origins.iter().take(30) {
            let ribs = sim.propagate(prefix, &HashSet::new());
            for route in ribs.values() {
                let asns = route.path.unique_asns();
                let mut ascending = false;
                for w in asns.windows(2) {
                    // w[0] learned the route from w[1].
                    match topo.relationship(w[0], w[1]) {
                        Some(NeighborKind::Provider) => {
                            assert!(!ascending, "valley in {}: {} -> {}", route.path, w[0], w[1]);
                        }
                        Some(NeighborKind::Peer)
                        | Some(NeighborKind::RouteServer)
                        | Some(NeighborKind::RsMember) => {
                            assert!(!ascending, "second lateral/peer step in {}", route.path);
                            ascending = true;
                        }
                        Some(NeighborKind::Customer) => {
                            ascending = true;
                        }
                        None => panic!("non-adjacent ASes {} {} in path", w[0], w[1]),
                    }
                }
            }
        }
    }

    #[test]
    fn route_server_asn_never_appears_in_paths() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let rses = topo.asns_of_tier(Tier::IxpRouteServer);
        for &(prefix, _) in sim.plan().origins.iter().take(50) {
            let ribs = sim.propagate(prefix, &HashSet::new());
            for route in ribs.values() {
                for rs in &rses {
                    assert!(
                        !route.path.contains(*rs),
                        "route server {rs} leaked into path {}",
                        route.path
                    );
                }
            }
        }
    }

    #[test]
    fn info_tags_imply_tagger_on_path_or_at_holder() {
        // For every route, a community α:β that α defines as informational
        // must have α on the path (or be held by α itself, not yet
        // prepended) — unless it was part of the origination (echo noise)
        // or α is an IXP route server, which tags member routes without
        // entering the path (exactly why the paper excludes IXP communities
        // from classification).
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let rses: HashSet<Asn> = topo
            .asns_of_tier(Tier::IxpRouteServer)
            .into_iter()
            .collect();
        for &(prefix, _) in sim.plan().origins.iter().take(40) {
            let origination = &sim.plan().communities[&prefix];
            let ribs = sim.propagate(prefix, &HashSet::new());
            for (holder, route) in &ribs {
                for c in &route.communities {
                    if origination.contains(c) {
                        continue;
                    }
                    let tagger = Asn::new(c.asn as u32);
                    if rses.contains(&tagger) {
                        continue;
                    }
                    if policies.intent_of(*c) == Some(bgp_types::Intent::Information) {
                        assert!(
                            route.path.contains(tagger) || tagger == *holder,
                            "info {c} on route at {holder} without {tagger} on path {}",
                            route.path
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scrubbers_strip_communities_downstream() {
        let (mut topo, _) = world();
        // Make one large transit AS a scrubber, then check that routes it
        // propagates carry no communities.
        let scrubber = topo.asns_of_tier(Tier::LargeTransit)[0];
        topo.ases.get_mut(&scrubber).unwrap().scrubs_communities = true;
        let policies = generate_policies(&topo, &PolicyConfig::default());
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let mut checked = 0;
        for &(prefix, _) in sim.plan().origins.iter().take(80) {
            let ribs = sim.propagate(prefix, &HashSet::new());
            for route in ribs.values() {
                if route.from == Some(scrubber) {
                    checked += 1;
                    // Only the importer's own tags may be present.
                    for c in &route.communities {
                        assert_ne!(
                            c.asn as u32,
                            scrubber.value(),
                            "scrubber's own community survived"
                        );
                    }
                }
            }
        }
        assert!(checked > 0, "scrubber never on any best path");
    }

    #[test]
    fn suppress_to_as_hides_route() {
        // Hand-build: origin o customer of p1 and p2; p1 defines
        // SuppressToAs(t); t is a peer of p1 and of p2. Signaling the
        // community must remove the p1 path from t but keep p2's.
        use bgp_topology::{AsNode, Geography, Link, Organization, Rel};
        use std::collections::BTreeMap;

        let geography = Geography::build(1, 2);
        let mk = |asn: u32, tier: Tier| AsNode {
            asn: Asn::new(asn),
            tier,
            home: 0,
            presence: vec![0],
            org: 0,
            scrubs_communities: false,
            prefixes: vec![],
        };
        let mut ases = HashMap::new();
        let (o, p1, p2, t) = (Asn::new(100), Asn::new(10), Asn::new(20), Asn::new(30));
        let mut origin_node = mk(100, Tier::Stub);
        origin_node.prefixes = vec!["10.0.0.0/24".parse().unwrap()];
        ases.insert(o, origin_node);
        ases.insert(p1, mk(10, Tier::LargeTransit));
        ases.insert(p2, mk(20, Tier::LargeTransit));
        ases.insert(t, mk(30, Tier::LargeTransit));
        let links = vec![
            Link {
                a: p1,
                b: o,
                rel: Rel::ProviderCustomer,
            },
            Link {
                a: p2,
                b: o,
                rel: Rel::ProviderCustomer,
            },
            Link {
                a: p1,
                b: t,
                rel: Rel::PeerPeer,
            },
            Link {
                a: p2,
                b: t,
                rel: Rel::PeerPeer,
            },
        ];
        let orgs = vec![Organization {
            name: "all".into(),
            members: vec![o, p1, p2, t],
        }];
        let mut topo = bgp_topology::Topology::new(ases, links, orgs, geography);
        for node in topo.ases.values_mut() {
            node.org = 0;
        }
        let mut defs = BTreeMap::new();
        defs.insert(2569u16, Purpose::SuppressToAs(t));
        let mut policies = PolicySet::default();
        policies
            .policies
            .insert(p1, bgp_policy::AsPolicy::new(p1, defs));

        // Force the origin to broadcast-signal 1 action beta of p1.
        let cfg = SimConfig {
            action_signal_prob: 1.0,
            singlehomed_signal_prob: 1.0,
            targeted_signal_prob: 0.0,
            max_action_betas: 1,
            misconfig_echo_prob: 0.0,
            private_community_prob: 0.0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(&topo, &policies, &cfg);
        let prefix: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(
            sim.plan().communities[&prefix],
            vec![Community::new(10, 2569)]
        );
        let ribs = sim.propagate(prefix, &HashSet::new());
        // t still has the route (via p2), but not through p1.
        let at_t = &ribs[&t];
        assert_eq!(
            at_t.from,
            Some(p2),
            "t must learn via p2, got {:?}",
            at_t.from
        );
        // p1 itself has the route; its export to t was suppressed.
        assert!(ribs.contains_key(&p1));
        // And the community is off-path at t: 10 not in path.
        assert!(!at_t.path.contains(p1));
        assert!(at_t.communities.contains(&Community::new(10, 2569)));
    }

    #[test]
    fn propagation_is_deterministic() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        let (prefix, _) = sim.plan().origins[5];
        let a = sim.propagate(prefix, &HashSet::new());
        let b = sim.propagate(prefix, &HashSet::new());
        assert_eq!(a, b);
    }

    #[test]
    fn excluded_link_reroutes() {
        let (topo, policies) = world();
        let cfg = SimConfig::default();
        let sim = Simulator::new(&topo, &policies, &cfg);
        // Find a multihomed origin.
        let (prefix, origin) = *sim
            .plan()
            .origins
            .iter()
            .find(|(_, o)| topo.providers(*o).len() >= 2)
            .expect("a multihomed origin exists");
        let providers = {
            let mut p = topo.providers(origin);
            p.sort_unstable();
            p
        };
        let base = sim.propagate(prefix, &HashSet::new());
        let mut excluded = HashSet::new();
        excluded.insert(link_key(origin, providers[0]));
        let failed = sim.propagate(prefix, &excluded);
        // The failed provider no longer learns directly from origin.
        if let Some(r) = failed.get(&providers[0]) {
            assert_ne!(r.from, Some(origin));
        }
        // Origin keeps its own route.
        assert_eq!(failed[&origin].class, PrefClass::Own);
        assert_ne!(base, failed, "failure should change some routes");
    }
}
