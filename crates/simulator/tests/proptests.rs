//! Property-based tests: routing invariants hold across arbitrary worlds.

use std::collections::HashSet;

use proptest::prelude::*;

use bgp_policy::{generate_policies, PolicyConfig};
use bgp_sim::{SimConfig, Simulator};
use bgp_topology::{generate, Tier, TopologyConfig};

fn arb_world_cfg() -> impl Strategy<Value = (TopologyConfig, PolicyConfig, SimConfig)> {
    (
        any::<u64>(),
        3usize..5,
        4usize..8,
        6usize..12,
        20usize..50,
        0usize..3,
    )
        .prop_map(|(seed, t1, large, mid, stub, ixp)| {
            (
                TopologyConfig {
                    seed,
                    tier1_count: t1,
                    large_transit_count: large,
                    mid_transit_count: mid,
                    stub_count: stub,
                    ixp_count: ixp,
                    ..TopologyConfig::default()
                },
                PolicyConfig {
                    seed: seed ^ 1,
                    ..PolicyConfig::default()
                },
                SimConfig {
                    seed: seed ^ 2,
                    threads: 1,
                    ..SimConfig::default()
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_worlds_validate((topo_cfg, _, _) in arb_world_cfg()) {
        let topo = generate(&topo_cfg);
        prop_assert!(topo.validate().is_empty(), "{:?}", topo.validate());
    }

    #[test]
    fn propagation_invariants_hold((topo_cfg, policy_cfg, sim_cfg) in arb_world_cfg()) {
        let topo = generate(&topo_cfg);
        let policies = generate_policies(&topo, &policy_cfg);
        let sim = Simulator::new(&topo, &policies, &sim_cfg);
        let rses: Vec<_> = topo.asns_of_tier(Tier::IxpRouteServer);
        // Sample a handful of prefixes per world to keep runtime bounded.
        for &(prefix, origin) in sim.plan().origins.iter().step_by(7).take(8) {
            let ribs = sim.propagate(prefix, &HashSet::new());
            prop_assert_eq!(ribs[&origin].path.path_length(), 0);
            for (holder, route) in &ribs {
                // Loop freedom and origin correctness.
                prop_assert!(!route.path.has_loop(), "loop in {}", route.path);
                prop_assert!(!route.path.contains(*holder));
                if holder != &origin {
                    prop_assert_eq!(route.path.origin(), Some(origin));
                }
                // Route servers never enter paths.
                for rs in &rses {
                    prop_assert!(!route.path.contains(*rs));
                }
            }
        }
    }

    #[test]
    fn link_failure_only_loses_or_reroutes((topo_cfg, policy_cfg, sim_cfg) in arb_world_cfg()) {
        let topo = generate(&topo_cfg);
        let policies = generate_policies(&topo, &policy_cfg);
        let sim = Simulator::new(&topo, &policies, &sim_cfg);
        let Some(&(prefix, origin)) = sim.plan().origins.first() else { return Ok(()) };
        let providers = topo.providers(origin);
        let Some(&p0) = providers.first() else { return Ok(()) };
        let mut excluded = HashSet::new();
        excluded.insert(bgp_sim::link_key(origin, p0));
        let failed = sim.propagate(prefix, &excluded);
        // No route may traverse the failed link (adjacent pair in a path).
        for route in failed.values() {
            let asns = route.path.unique_asns();
            for w in asns.windows(2) {
                let pair = bgp_sim::link_key(w[0], w[1]);
                prop_assert!(!excluded.contains(&pair), "failed link used in {}", route.path);
            }
        }
    }
}
