//! Crash-safe incremental runs: content-based statistics accumulation and
//! an atomic checkpoint manifest.
//!
//! Long supervised runs over hundreds of archives must survive a crash —
//! OOM kill, power loss, a poisoned worker — without redoing days of
//! ingestion. The pieces here make that possible:
//!
//! * [`StatsAccumulator`] folds observations file-by-file into
//!   *content-based* fingerprint sets whose union is exact and commutative,
//!   so per-file partial results merge into the same [`PathStats`] a
//!   single-shot reduction would produce (see "Why fingerprints" below).
//! * [`StatsSnapshot`] is the accumulator's serializable form: vectors of
//!   deterministically-ordered per-snapshot segments (fixed shard-major
//!   ingest order), so the serialized bytes are identical at any thread
//!   count for a given ingest sequence, and each per-file snapshot costs
//!   only the file's new elements.
//! * [`Checkpoint`] records which input files completed (with a
//!   byte-length + FNV-1a fingerprint each, via [`fingerprint_file`]), the
//!   ingest accounting so far, and the snapshot. [`Checkpoint::save_atomic`]
//!   writes temp-file-then-rename so a crash mid-write leaves the previous
//!   checkpoint intact, never a torn one.
//!
//! # Why fingerprints
//!
//! [`PathStats`] merging by summing counts is only exact when every
//! occurrence of an AS path lands in the same shard (the invariant of the
//! hash-sharded parallel reduction). Per-*file* partials violate it: the
//! same path appears in many files, and summing would double-count unique
//! paths. Sets of path/tuple fingerprints union exactly instead — a path
//! seen in ten files is one fingerprint — at the cost of a 64-bit hash
//! collision being (silently, astronomically rarely) able to collapse two
//! distinct paths.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bgp_mrt::IngestReport;
use bgp_relationships::SiblingMap;
use bgp_types::fx::{fx_hash_one, FxHashMap, FxHashSet};
use bgp_types::par::{effective_threads, par_map_indexed};
use bgp_types::store::ObservationStore;
use bgp_types::{AsPath, Asn, Community, Observation};
use serde::{Deserialize, Serialize};

use crate::stats::{OnPathIndex, PathCounts, PathStats};

/// Version stamp inside every checkpoint file; bump on layout changes so a
/// resume against an incompatible manifest refuses instead of misreading.
/// Schema 2 added the mandatory payload `checksum`.
pub const CHECKPOINT_SCHEMA: u32 = 2;

/// Content fingerprint of one AS path.
pub fn path_fingerprint(path: &AsPath) -> u64 {
    fx_hash_one(path)
}

/// Content fingerprint of one `(AS path, communities)` tuple, built from
/// the path's [`path_fingerprint`] so the path bytes are hashed only once
/// per observation.
pub fn tuple_fingerprint(path_fp: u64, communities: &[Community]) -> u64 {
    fx_hash_one(&(path_fp, communities))
}

/// Incrementally built path statistics, mergeable across files.
///
/// Feed it observations in any grouping and any order ([`ingest`] per file,
/// [`merge`] across partial accumulators); [`to_stats`] yields the same
/// [`PathStats`] as a one-shot [`PathStats::from_observations`] over the
/// concatenated input.
///
/// [`ingest`]: StatsAccumulator::ingest
/// [`merge`]: StatsAccumulator::merge
/// [`to_stats`]: StatsAccumulator::to_stats
#[derive(Debug, Clone, Default)]
pub struct StatsAccumulator {
    /// Fingerprints of every unique AS path seen.
    paths: FxHashSet<u64>,
    /// Fingerprints of every unique `(path, communities)` tuple.
    tuples: FxHashSet<u64>,
    /// Every ASN appearing in any path.
    seen_asns: FxHashSet<Asn>,
    /// Per community: fingerprints of the unique paths it rode with its
    /// owner (or a sibling) on-path, plus their undrained snapshot delta.
    on: FxHashMap<Community, CommunitySet>,
    /// Per community: fingerprints of the unique paths it rode off-path,
    /// plus their undrained snapshot delta.
    off: FxHashMap<Community, CommunitySet>,
    /// The serialized form as of the last [`snapshot`](Self::snapshot)
    /// call, extended in place from the deltas below. Re-materializing the
    /// full state on every per-file checkpoint would be O(everything
    /// accumulated so far) per file — that is what would blow the <3%
    /// overhead budget — so each snapshot only appends the newly-inserted
    /// elements as one deterministically-ordered segment.
    cache: StatsSnapshot,
    /// Position of each community's entry in `cache.communities`, so a
    /// snapshot drains deltas into their slots without searching.
    community_slots: FxHashMap<Community, u32>,
    /// Path fingerprints inserted since the last snapshot.
    paths_delta: Vec<u64>,
    /// Tuple fingerprints inserted since the last snapshot.
    tuples_delta: Vec<u64>,
    /// ASNs first seen since the last snapshot.
    asns_delta: Vec<u32>,
}

/// One community's accumulated fingerprint set together with the
/// insertion-ordered tail not yet drained into the snapshot cache — kept in
/// one map value so the hot attribution path pays a single lookup.
#[derive(Debug, Clone, Default)]
struct CommunitySet {
    set: FxHashSet<u64>,
    delta: Vec<u64>,
}

/// Logical equality: the accumulated sets, ignoring snapshot-cache state
/// (two equal accumulators may have taken snapshots at different times).
impl PartialEq for StatsAccumulator {
    fn eq(&self, other: &Self) -> bool {
        fn sides_eq(
            a: &FxHashMap<Community, CommunitySet>,
            b: &FxHashMap<Community, CommunitySet>,
        ) -> bool {
            a.len() == b.len()
                && a.iter()
                    .all(|(c, s)| b.get(c).is_some_and(|t| s.set == t.set))
        }
        self.paths == other.paths
            && self.tuples == other.tuples
            && self.seen_asns == other.seen_asns
            && sides_eq(&self.on, &other.on)
            && sides_eq(&self.off, &other.off)
    }
}

/// The sequential fold over one shard's `(path fingerprint, observation)`
/// pairs (the fingerprint is computed once, at partition time).
fn accumulate_shard(shard: &[(u64, &Observation)], siblings: &SiblingMap) -> StatsAccumulator {
    let mut acc = StatsAccumulator::default();
    for &(pfp, obs) in shard {
        acc.fold(pfp, obs, siblings);
    }
    acc
}

/// [`accumulate_shard`] over store rows: `(fingerprint, path ID, cset ID)`.
fn accumulate_shard_store(
    shard: &[(u64, u32, u32)],
    store: &ObservationStore,
    index: &OnPathIndex,
) -> StatsAccumulator {
    let mut acc = StatsAccumulator::default();
    for &(pfp, path_id, cset_id) in shard {
        acc.fold_store_row(pfp, path_id, cset_id, store, index);
    }
    acc
}

/// Number of fixed ingest shards. A constant — never the worker count — so
/// the shard-major order in which new fingerprints reach the snapshot
/// deltas is identical at any thread count. 64 keeps every core on a
/// many-core host busy while the shards stay coarse enough to amortize
/// per-shard accumulator setup.
pub const INGEST_SHARDS: usize = 64;

impl StatsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one file's observations in, spreading the work over `threads`
    /// workers (`0` = one per CPU). The result — including snapshot bytes —
    /// is identical at any thread count: observations are sharded by path
    /// fingerprint into [`INGEST_SHARDS`] fixed shards and folded in shard
    /// order. Single-threaded, each shard folds straight into `self` (no
    /// temporaries, no merge); multi-threaded, per-shard accumulators are
    /// merged in shard order by their insertion-ordered deltas — first
    /// occurrence filtered against `self` lands elements in the same order
    /// either way, so neither the accumulated sets nor the delta order the
    /// snapshot serializes depend on how many workers ran.
    pub fn ingest(&mut self, observations: &[Observation], siblings: &SiblingMap, threads: usize) {
        if observations.is_empty() {
            return;
        }
        let threads = effective_threads(threads);
        let mut shards: Vec<Vec<(u64, &Observation)>> =
            (0..INGEST_SHARDS).map(|_| Vec::new()).collect();
        for obs in observations {
            let pfp = path_fingerprint(&obs.path);
            shards[(pfp as usize) % INGEST_SHARDS].push((pfp, obs));
        }
        if threads <= 1 {
            for shard in &shards {
                for &(pfp, obs) in shard {
                    self.fold(pfp, obs, siblings);
                }
            }
        } else {
            for part in par_map_indexed(INGEST_SHARDS, threads, |i| {
                accumulate_shard(&shards[i], siblings)
            }) {
                self.merge(part);
            }
        }
    }

    /// Fold observations one record at a time, in delivered order — the
    /// streaming path. Unlike [`ingest`](Self::ingest) there is no
    /// sharding pass and no per-call allocation: each record folds
    /// straight into the accumulated sets as it arrives, so a daemon can
    /// call this per decoded record (or per small batch) without setting
    /// up [`INGEST_SHARDS`] vectors each time.
    ///
    /// The accumulated *sets* are identical to a batch [`ingest`] over the
    /// same observations (set union is order-independent); the snapshot
    /// *delta order* is the delivered order rather than shard-major order.
    /// That is self-consistent across checkpoint/resume — a resumed daemon
    /// re-folding from its cursor appends first-seen elements in the same
    /// delivered order — but means streaming snapshot bytes are not
    /// byte-comparable to batch snapshot bytes. Batch-parity checks
    /// compare derived stats and labels, which depend only on the sets.
    pub fn ingest_ordered(&mut self, observations: &[Observation], siblings: &SiblingMap) {
        for obs in observations {
            let pfp = path_fingerprint(&obs.path);
            self.fold(pfp, obs, siblings);
        }
    }

    /// [`ingest`](Self::ingest) out of a columnar [`ObservationStore`] —
    /// the path used when MRT decoding folded straight into a store. Path
    /// fingerprints come from the store's interner (computed once per
    /// *unique* path instead of once per observation); sharding, fold
    /// order, accumulated sets, and snapshot bytes are all identical to
    /// ingesting the equivalent observation slice.
    pub fn ingest_store(
        &mut self,
        store: &ObservationStore,
        siblings: &SiblingMap,
        threads: usize,
    ) {
        if store.is_empty() {
            return;
        }
        let threads = effective_threads(threads);
        let index = OnPathIndex::build(store, siblings);
        let mut shards: Vec<Vec<(u64, u32, u32)>> =
            (0..INGEST_SHARDS).map(|_| Vec::new()).collect();
        for (path_id, cset_id) in store.tuples() {
            let pfp = store.path_fingerprint(path_id);
            shards[(pfp as usize) % INGEST_SHARDS].push((pfp, path_id, cset_id));
        }
        if threads <= 1 {
            for shard in &shards {
                for &(pfp, path_id, cset_id) in shard {
                    self.fold_store_row(pfp, path_id, cset_id, store, &index);
                }
            }
        } else {
            for part in par_map_indexed(INGEST_SHARDS, threads, |i| {
                accumulate_shard_store(&shards[i], store, &index)
            }) {
                self.merge(part);
            }
        }
    }

    /// Fold one observation into the accumulated sets, pushing every
    /// first-seen element onto the matching snapshot delta.
    fn fold(&mut self, pfp: u64, obs: &Observation, siblings: &SiblingMap) {
        self.fold_parts(pfp, &obs.path, &obs.communities, siblings);
    }

    /// The fold itself, over the parts an observation contributes. The
    /// columnar path ([`ingest_store`](Self::ingest_store)) runs the
    /// byte-identical [`fold_store_row`](Self::fold_store_row) instead;
    /// any change to the order of delta pushes here must be mirrored there.
    fn fold_parts(
        &mut self,
        pfp: u64,
        path: &AsPath,
        communities: &[Community],
        siblings: &SiblingMap,
    ) {
        if self.paths.insert(pfp) {
            self.paths_delta.push(pfp);
            for hop in path.iter() {
                if self.seen_asns.insert(hop) {
                    self.asns_delta.push(hop.value());
                }
            }
        }
        let tfp = tuple_fingerprint(pfp, communities);
        if !self.tuples.insert(tfp) {
            return; // duplicate tuple: nothing new to attribute
        }
        self.tuples_delta.push(tfp);
        for &c in communities {
            // On-path iff the owner (or a sibling) appears in the path — a
            // pure function of (community, path), so unioning per-file sets
            // can never disagree about which side a fingerprint goes to.
            let on = siblings.is_on_path(Asn::new(c.asn as u32), path);
            let side = if on { &mut self.on } else { &mut self.off };
            let entry = side.entry(c).or_default();
            if entry.set.insert(pfp) {
                entry.delta.push(pfp);
            }
        }
    }

    /// [`fold_parts`](Self::fold_parts) over an interned store row. Same
    /// operations in the same order — hops walked in path order, then one
    /// on/off attribution per community in list order — with the on-path
    /// test served by the precomputed [`OnPathIndex`] (a pure function of
    /// (community, path) either way), so accumulated sets, delta order,
    /// and hence snapshot bytes match the slice fold exactly.
    fn fold_store_row(
        &mut self,
        pfp: u64,
        path_id: u32,
        cset_id: u32,
        store: &ObservationStore,
        index: &OnPathIndex,
    ) {
        if self.paths.insert(pfp) {
            self.paths_delta.push(pfp);
            for &hop in store.path_hops(path_id) {
                if self.seen_asns.insert(Asn::new(hop)) {
                    self.asns_delta.push(hop);
                }
            }
        }
        let communities = store.cset(cset_id);
        let tfp = tuple_fingerprint(pfp, communities);
        if !self.tuples.insert(tfp) {
            return; // duplicate tuple: nothing new to attribute
        }
        self.tuples_delta.push(tfp);
        for (&c, &slot) in communities.iter().zip(store.cset_slots(cset_id)) {
            let on = index.on_path(store, path_id, slot);
            let side = if on { &mut self.on } else { &mut self.off };
            let entry = side.entry(c).or_default();
            if entry.set.insert(pfp) {
                entry.delta.push(pfp);
            }
        }
    }

    /// Union another accumulator in. Set union is commutative and
    /// idempotent per element, so merge order never changes the resulting
    /// *sets*; elements are visited in `other`'s insertion order (its
    /// snapshot cache, then its live deltas) so the delta order pushed onto
    /// `self` matches what a direct [`fold`](Self::fold) of the same
    /// observations would have produced.
    pub fn merge(&mut self, other: StatsAccumulator) {
        for &p in other.cache.paths.iter().chain(&other.paths_delta) {
            if self.paths.insert(p) {
                self.paths_delta.push(p);
            }
        }
        for &t in other.cache.tuples.iter().chain(&other.tuples_delta) {
            if self.tuples.insert(t) {
                self.tuples_delta.push(t);
            }
        }
        for &a in other.cache.seen_asns.iter().chain(&other.asns_delta) {
            if self.seen_asns.insert(Asn::new(a)) {
                self.asns_delta.push(a);
            }
        }
        // Per-community fingerprints: cache segments first (older), then
        // the live deltas, so within-community order stays chronological.
        for c in &other.cache.communities {
            let key = Community::new(c.asn, c.value);
            if !c.on.is_empty() {
                let mine = self.on.entry(key).or_default();
                for &f in &c.on {
                    if mine.set.insert(f) {
                        mine.delta.push(f);
                    }
                }
            }
            if !c.off.is_empty() {
                let mine = self.off.entry(key).or_default();
                for &f in &c.off {
                    if mine.set.insert(f) {
                        mine.delta.push(f);
                    }
                }
            }
        }
        for (c, s) in other.on {
            let mine = self.on.entry(c).or_default();
            for f in s.delta {
                if mine.set.insert(f) {
                    mine.delta.push(f);
                }
            }
        }
        for (c, s) in other.off {
            let mine = self.off.entry(c).or_default();
            for f in s.delta {
                if mine.set.insert(f) {
                    mine.delta.push(f);
                }
            }
        }
    }

    /// Collapse to the [`PathStats`] the classifier consumes.
    pub fn to_stats(&self) -> PathStats {
        let mut per_community: FxHashMap<Community, PathCounts> = FxHashMap::default();
        for (&c, s) in &self.on {
            per_community.entry(c).or_default().on = s.set.len() as u32;
        }
        for (&c, s) in &self.off {
            per_community.entry(c).or_default().off = s.set.len() as u32;
        }
        PathStats {
            per_community,
            seen_asns: self.seen_asns.clone(),
            unique_tuples: self.tuples.len(),
            unique_paths: self.paths.len(),
        }
    }

    /// The serializable form. Deterministic for a given ingest sequence:
    /// every vector is a concatenation of per-snapshot segments, each in
    /// the fixed shard-major order [`ingest`](Self::ingest) guarantees, so
    /// the bytes are identical at any thread count — and a resumed run,
    /// which replays the same files in the same order with the same
    /// snapshot cadence, reproduces them exactly. (Two accumulators
    /// holding equal *sets* but fed in different groupings or snapshotted
    /// at different points serialize differently;
    /// [`to_stats`](Self::to_stats) is identical either way.)
    ///
    /// Cost is O(elements inserted since the last call) — pure appends, no
    /// re-sort of everything accumulated — the property that keeps
    /// per-file checkpointing within its overhead budget. The returned
    /// borrow is valid until the next `ingest`/`merge`; clone it to
    /// persist.
    pub fn snapshot(&mut self) -> &StatsSnapshot {
        self.cache.paths.append(&mut self.paths_delta);
        self.cache.tuples.append(&mut self.tuples_delta);
        self.cache.seen_asns.append(&mut self.asns_delta);
        // Sort the touched communities so slot assignment for first-time
        // communities never depends on map iteration order: new entries are
        // appended `(asn, value)`-sorted within each snapshot's batch.
        let mut touched: Vec<Community> = self
            .on
            .iter()
            .chain(self.off.iter())
            .filter(|(_, s)| !s.delta.is_empty())
            .map(|(&c, _)| c)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for c in touched {
            let i = *self.community_slots.entry(c).or_insert_with(|| {
                self.cache.communities.push(SnapshotCommunity {
                    asn: c.asn,
                    value: c.value,
                    on: Vec::new(),
                    off: Vec::new(),
                });
                (self.cache.communities.len() - 1) as u32
            }) as usize;
            let slot = &mut self.cache.communities[i];
            if let Some(s) = self.on.get_mut(&c) {
                slot.on.append(&mut s.delta);
            }
            if let Some(s) = self.off.get_mut(&c) {
                slot.off.append(&mut s.delta);
            }
        }
        &self.cache
    }

    /// Rebuild from a snapshot (the resume path).
    pub fn from_snapshot(snapshot: &StatsSnapshot) -> Self {
        let mut acc = StatsAccumulator {
            paths: snapshot.paths.iter().copied().collect(),
            tuples: snapshot.tuples.iter().copied().collect(),
            seen_asns: snapshot.seen_asns.iter().map(|&a| Asn::new(a)).collect(),
            cache: snapshot.clone(),
            ..StatsAccumulator::default()
        };
        for (i, c) in snapshot.communities.iter().enumerate() {
            let key = Community::new(c.asn, c.value);
            acc.community_slots.insert(key, i as u32);
            if !c.on.is_empty() {
                acc.on.insert(
                    key,
                    CommunitySet {
                        set: c.on.iter().copied().collect(),
                        delta: Vec::new(),
                    },
                );
            }
            if !c.off.is_empty() {
                acc.off.insert(
                    key,
                    CommunitySet {
                        set: c.off.iter().copied().collect(),
                        delta: Vec::new(),
                    },
                );
            }
        }
        acc
    }
}

/// One community's fingerprint sets in a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotCommunity {
    /// The owner ASN (`α`).
    pub asn: u16,
    /// The community value (`β`).
    pub value: u16,
    /// Unique on-path fingerprints, in deterministic per-snapshot segments.
    pub on: Vec<u64>,
    /// Unique off-path fingerprints, in deterministic per-snapshot segments.
    pub off: Vec<u64>,
}

/// Serialized [`StatsAccumulator`]: content-based and independent of
/// interner state or thread count. Vectors hold unique elements as a
/// concatenation of deterministically-ordered segments, one per [`StatsAccumulator::snapshot`]
/// call — see there for the exact determinism contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StatsSnapshot {
    /// Unique-path fingerprints, in deterministic per-snapshot segments.
    pub paths: Vec<u64>,
    /// Unique-tuple fingerprints, in deterministic per-snapshot segments.
    pub tuples: Vec<u64>,
    /// ASNs seen in any path, in deterministic per-snapshot segments.
    pub seen_asns: Vec<u32>,
    /// Per-community fingerprint sets, ordered by first snapshot
    /// appearance (`(asn, value)`-sorted within each snapshot's batch of
    /// new communities — a deterministic order for a given ingest
    /// sequence, like everything else here).
    pub communities: Vec<SnapshotCommunity>,
}

/// Byte length + FNV-1a 64 hash of a file's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileFingerprint {
    /// File length in bytes.
    pub bytes: u64,
    /// FNV-1a 64 over the contents.
    pub hash: u64,
}

/// FNV-1a 64 offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into a running FNV-1a 64 `hash`.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint a file by streaming its contents (FNV-1a 64).
pub fn fingerprint_file(path: &Path) -> io::Result<FileFingerprint> {
    let mut file = File::open(path)?;
    let mut buf = [0u8; 64 * 1024];
    let mut hash: u64 = FNV_OFFSET;
    let mut bytes: u64 = 0;
    loop {
        let n = match file.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        bytes += n as u64;
        hash = fnv1a(hash, &buf[..n]);
    }
    Ok(FileFingerprint { bytes, hash })
}

/// One input file recorded as fully ingested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedFile {
    /// The file path as given on the command line.
    pub path: String,
    /// Its [`FileFingerprint`] at ingest time.
    pub fingerprint: FileFingerprint,
}

/// Why loading a checkpoint (or shard artifact) was refused. Corruption is
/// always a clean typed error — never a panic, never silently-partial
/// state folded into a run.
#[derive(Debug)]
pub enum CheckpointLoadError {
    /// The file could not be read at all (missing, permissions, I/O).
    Io {
        /// The manifest path.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The bytes on disk are not a well-formed manifest: truncated file,
    /// invalid JSON, or a payload checksum mismatch (bit rot, torn write).
    Corrupt {
        /// The manifest path.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A well-formed manifest written by an incompatible layout version.
    SchemaMismatch {
        /// The manifest path.
        path: PathBuf,
        /// The schema recorded in the file.
        found: u32,
        /// The schema this build reads and writes.
        expected: u32,
    },
}

impl CheckpointLoadError {
    /// Whether the file existed but its *contents* were rejected
    /// (corruption or schema) — the cases a caller should surface as a
    /// refused checkpoint rather than a generic I/O failure.
    pub fn is_invalid_data(&self) -> bool {
        !matches!(self, CheckpointLoadError::Io { .. })
    }

    /// Whether the underlying failure is that the file does not exist.
    pub fn is_not_found(&self) -> bool {
        matches!(self, CheckpointLoadError::Io { source, .. }
                 if source.kind() == io::ErrorKind::NotFound)
    }
}

impl fmt::Display for CheckpointLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointLoadError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CheckpointLoadError::Corrupt { path, detail } => {
                write!(
                    f,
                    "{}: corrupt or truncated checkpoint ({detail})",
                    path.display()
                )
            }
            CheckpointLoadError::SchemaMismatch {
                path,
                found,
                expected,
            } => {
                write!(
                    f,
                    "{}: checkpoint schema {found} (this build writes {expected})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointLoadError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CheckpointLoadError> for io::Error {
    fn from(e: CheckpointLoadError) -> io::Error {
        match e {
            CheckpointLoadError::Io { source, .. } => source,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// The crash-safe run manifest: which files are done, the accounting so
/// far, and the statistics snapshot to resume from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// FNV-1a 64 over the manifest serialized with this field zeroed —
    /// recomputed on load so a truncated or bit-flipped manifest is
    /// rejected instead of resuming from silently-wrong state.
    #[serde(default)]
    pub checksum: u64,
    /// Files fully ingested, in completion (= input) order. Files that
    /// failed (open error, abort, worker panic) are *not* recorded, so a
    /// resumed run retries them.
    pub files: Vec<CompletedFile>,
    /// Merged ingest accounting over the completed files.
    pub report: IngestReport,
    /// The statistics accumulated over the completed files.
    pub snapshot: StatsSnapshot,
}

impl Default for Checkpoint {
    fn default() -> Self {
        Checkpoint {
            schema: CHECKPOINT_SCHEMA,
            checksum: 0,
            files: Vec::new(),
            report: IngestReport::default(),
            snapshot: StatsSnapshot::default(),
        }
    }
}

impl Checkpoint {
    /// A fresh, empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `path` is already recorded, and with which fingerprint.
    pub fn completed(&self, path: &str) -> Option<&FileFingerprint> {
        self.files
            .iter()
            .find(|f| f.path == path)
            .map(|f| &f.fingerprint)
    }

    /// FNV-1a 64 over this manifest serialized with `checksum` zeroed —
    /// the integrity seal [`save_atomic`](Self::save_atomic) embeds and
    /// [`load`](Self::load) verifies. Canonical (compact) serialization of
    /// the in-memory value, so whitespace never participates.
    pub fn payload_checksum(&self) -> u64 {
        let mut plain = self.clone();
        plain.checksum = 0;
        let json = serde_json::to_string(&plain).expect("in-memory checkpoint always serializes");
        fnv1a(FNV_OFFSET, json.as_bytes())
    }

    /// Write the manifest atomically: seal the payload checksum, serialize
    /// to `<path>.tmp` in the same directory, fsync, then rename over
    /// `path`. A crash at any point leaves either the previous checkpoint
    /// or the new one — never a torn file.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        let mut sealed = self.clone();
        sealed.checksum = sealed.payload_checksum();
        let json = serde_json::to_string_pretty(&sealed)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "checkpoint".to_string())
        ));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load and validate a manifest: parse, check the schema, then verify
    /// the embedded payload checksum. Truncation (invalid JSON) and bit
    /// flips that alter any recorded state are rejected with a typed
    /// [`CheckpointLoadError`] — never a panic, never partial state.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointLoadError> {
        let raw = std::fs::read_to_string(path).map_err(|source| CheckpointLoadError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let cp: Checkpoint =
            serde_json::from_str(&raw).map_err(|e| CheckpointLoadError::Corrupt {
                path: path.to_path_buf(),
                detail: e.to_string(),
            })?;
        if cp.schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointLoadError::SchemaMismatch {
                path: path.to_path_buf(),
                found: cp.schema,
                expected: CHECKPOINT_SCHEMA,
            });
        }
        let expected = cp.payload_checksum();
        if cp.checksum != expected {
            return Err(CheckpointLoadError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "payload checksum {:#018x} recorded, {expected:#018x} computed",
                    cp.checksum
                ),
            });
        }
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(vp: u32, path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: Asn::new(vp),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    /// A workload with cross-file path overlap, duplicates, and multiple
    /// owners — the cases where count-based merging would double-count.
    fn workload() -> Vec<Observation> {
        let mut all = Vec::new();
        for i in 0..30u32 {
            all.push(obs(
                65000 + (i % 4),
                &format!("{} 1299 {}", 65000 + (i % 4), 64496 + (i % 5)),
                &[(1299, (i % 7) as u16), (3356, (i % 3) as u16)],
            ));
            all.push(obs(
                65100 + (i % 2),
                &format!("{} 64496", 65100 + (i % 2)),
                &[(1299, (i % 7) as u16)],
            ));
        }
        all
    }

    #[test]
    fn accumulator_matches_one_shot_stats() {
        let all = workload();
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64999)]]);
        let direct = PathStats::from_observations(&all, &siblings);
        // Ingest in three uneven "files"; paths recur across the splits.
        let mut acc = StatsAccumulator::new();
        acc.ingest(&all[..7], &siblings, 1);
        acc.ingest(&all[7..40], &siblings, 1);
        acc.ingest(&all[40..], &siblings, 1);
        assert_eq!(acc.to_stats(), direct);
    }

    #[test]
    fn ingest_is_thread_count_invariant() {
        let all = workload();
        let siblings = SiblingMap::default();
        let mut sequential = StatsAccumulator::new();
        sequential.ingest(&all, &siblings, 1);
        for threads in [2, 3, 8] {
            let mut acc = StatsAccumulator::new();
            acc.ingest(&all, &siblings, threads);
            assert_eq!(acc, sequential, "threads = {threads}");
            assert_eq!(acc.snapshot(), sequential.snapshot());
        }
    }

    #[test]
    fn ingest_store_matches_ingest_bit_for_bit() {
        // The columnar fold must be indistinguishable from the slice fold:
        // same sets, same delta order, same snapshot bytes — at any thread
        // count, and across the same "file" boundaries.
        let all = workload();
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64999)]]);
        let mut via_slices = StatsAccumulator::new();
        via_slices.ingest(&all[..11], &siblings, 1);
        via_slices.ingest(&all[11..], &siblings, 1);
        for threads in [1, 2, 8] {
            let mut via_store = StatsAccumulator::new();
            via_store.ingest_store(
                &ObservationStore::from_observations(&all[..11]),
                &siblings,
                threads,
            );
            via_store.ingest_store(
                &ObservationStore::from_observations(&all[11..]),
                &siblings,
                threads,
            );
            assert_eq!(via_store, via_slices, "threads = {threads}");
            assert_eq!(via_store.to_stats(), via_slices.to_stats());
            assert_eq!(
                via_store.snapshot(),
                via_slices.snapshot(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let all = workload();
        let siblings = SiblingMap::default();
        let parts: Vec<StatsAccumulator> = all
            .chunks(13)
            .map(|chunk| {
                let mut acc = StatsAccumulator::new();
                acc.ingest(chunk, &siblings, 1);
                acc
            })
            .collect();
        let mut forward = StatsAccumulator::new();
        for p in parts.clone() {
            forward.merge(p);
        }
        let mut backward = StatsAccumulator::new();
        for p in parts.into_iter().rev() {
            backward.merge(p);
        }
        // Logical content is merge-order independent; snapshot *bytes* are
        // only promised for identical ingest sequences, so compare the sets
        // and the derived statistics, not the serialized segments.
        assert_eq!(forward, backward);
        assert_eq!(forward.to_stats(), backward.to_stats());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let all = workload();
        let siblings = SiblingMap::default();
        let mut acc = StatsAccumulator::new();
        acc.ingest(&all, &siblings, 2);
        let snap = acc.snapshot().clone();
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap, "u64 fingerprints survive JSON exactly");
        let mut rebuilt = StatsAccumulator::from_snapshot(&back);
        assert_eq!(rebuilt.to_stats(), acc.to_stats());
        assert_eq!(rebuilt.snapshot(), &snap);
    }

    #[test]
    fn interleaved_snapshots_reproduce_on_resume() {
        // The segment-append path: a run that snapshots after every "file"
        // and an interrupted run resumed from a mid-run snapshot must end in
        // byte-identical serialized state — the contract `--resume` rests
        // on — even at different thread counts.
        let all = workload();
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64999)]]);
        let mut full = StatsAccumulator::new();
        let mut mid = StatsSnapshot::default();
        for (i, chunk) in all.chunks(9).enumerate() {
            full.ingest(chunk, &siblings, 2);
            let snap = full.snapshot();
            if i == 2 {
                mid = snap.clone(); // the crash point
            }
        }
        let mut resumed = StatsAccumulator::from_snapshot(&mid);
        for chunk in all.chunks(9).skip(3) {
            resumed.ingest(chunk, &siblings, 8);
            let _ = resumed.snapshot();
        }
        assert_eq!(resumed.snapshot(), full.snapshot());
        assert_eq!(
            serde_json::to_string(resumed.snapshot()).unwrap(),
            serde_json::to_string(full.snapshot()).unwrap()
        );
        // The classifier input is grouping- and cadence-independent.
        let mut one_shot = StatsAccumulator::new();
        one_shot.ingest(&all, &siblings, 1);
        assert_eq!(resumed.to_stats(), one_shot.to_stats());
    }

    #[test]
    fn checkpoint_saves_atomically_and_reloads() {
        let dir = std::env::temp_dir().join("bgp-intent-ckpt-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let mut acc = StatsAccumulator::new();
        acc.ingest(&workload(), &SiblingMap::default(), 1);
        let mut cp = Checkpoint::new();
        cp.files.push(CompletedFile {
            path: "a.mrt".into(),
            fingerprint: FileFingerprint {
                bytes: 10,
                hash: 99,
            },
        });
        cp.report.records_read = 60;
        cp.snapshot = acc.snapshot().clone();
        cp.save_atomic(&path).unwrap();
        // No temp file left behind.
        assert!(!path.with_file_name("run.ckpt.tmp").exists());
        let back = Checkpoint::load(&path).unwrap();
        // The written manifest carries the sealed checksum; everything
        // else round-trips exactly.
        assert_eq!(back.checksum, cp.payload_checksum());
        assert_eq!(back.files, cp.files);
        assert_eq!(back.report, cp.report);
        assert_eq!(back.snapshot, cp.snapshot);
        assert_eq!(
            back.completed("a.mrt"),
            Some(&FileFingerprint {
                bytes: 10,
                hash: 99
            })
        );
        assert_eq!(back.completed("b.mrt"), None);

        // Overwriting is just as safe.
        cp.files.clear();
        cp.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().files, cp.files);
    }

    #[test]
    fn checkpoint_schema_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("bgp-intent-ckpt-schema");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut cp = Checkpoint::new();
        cp.schema = CHECKPOINT_SCHEMA + 1;
        cp.save_atomic(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointLoadError::SchemaMismatch { found, expected, .. }
                    if found == CHECKPOINT_SCHEMA + 1 && expected == CHECKPOINT_SCHEMA
            ),
            "{err}"
        );
        assert!(err.is_invalid_data());
        assert!(err.to_string().contains("schema"));
    }

    /// A realistic sealed manifest on disk, for corruption tests.
    fn saved_checkpoint(dir_name: &str) -> (std::path::PathBuf, Checkpoint) {
        let dir = std::env::temp_dir().join(dir_name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut acc = StatsAccumulator::new();
        acc.ingest(&workload(), &SiblingMap::default(), 1);
        let mut cp = Checkpoint::new();
        cp.files.push(CompletedFile {
            path: "updates.00.mrt".into(),
            fingerprint: FileFingerprint {
                bytes: 4096,
                hash: 0xdead_beef,
            },
        });
        cp.report.records_read = 120;
        cp.report.bytes_ok = 4096;
        cp.report.bytes_read = 4096;
        cp.snapshot = acc.snapshot().clone();
        cp.save_atomic(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        (path, loaded)
    }

    #[test]
    fn truncated_checkpoint_is_rejected_not_panicked() {
        let (path, _) = saved_checkpoint("bgp-intent-ckpt-truncate");
        let full = std::fs::read(&path).unwrap();
        // Every truncation point — empty file, one byte, mid-JSON, the
        // closing brace gone — must yield a clean typed error. (The file
        // ends "}\n", so the last cut that actually damages it is len-2.)
        for cut in [0, 1, full.len() / 4, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert!(
                matches!(err, CheckpointLoadError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
            assert!(err.is_invalid_data(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flipped_checkpoint_never_yields_wrong_state() {
        let (path, original) = saved_checkpoint("bgp-intent-ckpt-bitflip");
        let full = std::fs::read(&path).unwrap();
        let mut caught = 0usize;
        // Flip one bit at a spread of positions. Each damaged file must
        // either be rejected (parse error, schema, or checksum mismatch)
        // or — when the flip only touched insignificant whitespace —
        // reload to exactly the original state. Silent partial state is
        // the one forbidden outcome.
        for pos in (0..full.len()).step_by(7) {
            let mut damaged = full.clone();
            damaged[pos] ^= 0x10;
            std::fs::write(&path, &damaged).unwrap();
            match Checkpoint::load(&path) {
                Err(e) => {
                    assert!(e.is_invalid_data(), "flip at {pos}: {e}");
                    caught += 1;
                }
                Ok(cp) => assert_eq!(cp, original, "flip at {pos} must not alter loaded state"),
            }
        }
        assert!(caught > 0, "at least some flips must corrupt the payload");
    }

    #[test]
    fn checksum_seal_survives_reload_and_detects_field_tampering() {
        let (path, loaded) = saved_checkpoint("bgp-intent-ckpt-tamper");
        assert_eq!(loaded.checksum, loaded.payload_checksum());
        // Rewrite one recorded value without resealing: JSON still parses,
        // schema still matches — only the checksum catches it.
        let raw = std::fs::read_to_string(&path).unwrap();
        let tampered = raw.replace("\"records_read\": 120", "\"records_read\": 121");
        assert_ne!(tampered, raw, "tamper target must exist in the manifest");
        std::fs::write(&path, tampered).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointLoadError::Corrupt { ref detail, .. } if detail.contains("checksum")),
            "{err}"
        );
    }

    #[test]
    fn missing_checkpoint_is_an_io_not_found_error() {
        let path = std::env::temp_dir().join("bgp-intent-ckpt-missing/none.ckpt");
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.is_not_found(), "{err}");
        assert!(!err.is_invalid_data());
    }

    #[test]
    fn file_fingerprints_track_content() {
        let dir = std::env::temp_dir().join("bgp-intent-ckpt-fp");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        std::fs::write(&path, b"hello mrt").unwrap();
        let a = fingerprint_file(&path).unwrap();
        assert_eq!(a.bytes, 9);
        assert_eq!(a, fingerprint_file(&path).unwrap(), "stable across reads");
        // Same length, different content: the hash catches it.
        std::fs::write(&path, b"hello mrT").unwrap();
        let b = fingerprint_file(&path).unwrap();
        assert_eq!(b.bytes, a.bytes);
        assert_ne!(b.hash, a.hash);
    }
}
