//! Minimum-gap clustering of `β` values — step (i) of Fig 8.
//!
//! §5.2: *"our method identifies sequences of community values where the
//! gap between any pair of adjacent β values is not more than a defined gap
//! value."* A gap parameter of 0 puts every value in its own cluster
//! (the "no clustering" baseline of Fig 9).

/// One cluster of observed `β` values belonging to a single AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The owning ASN (`α`).
    pub asn: u16,
    /// Member values, ascending.
    pub betas: Vec<u16>,
}

impl Cluster {
    /// The numeric span `[first, last]` of the cluster.
    pub fn span(&self) -> (u16, u16) {
        (
            self.betas[0],
            *self.betas.last().expect("clusters are non-empty"),
        )
    }
}

/// Split one AS's sorted, deduplicated `β` values into clusters where
/// adjacent members differ by at most `min_gap`.
pub fn gap_clusters(asn: u16, sorted_betas: &[u16], min_gap: u16) -> Vec<Cluster> {
    let mut clusters = Vec::new();
    let mut current: Vec<u16> = Vec::new();
    for &beta in sorted_betas {
        match current.last() {
            Some(&prev) if beta.saturating_sub(prev) <= min_gap => current.push(beta),
            Some(_) => {
                clusters.push(Cluster {
                    asn,
                    betas: std::mem::take(&mut current),
                });
                current.push(beta);
            }
            None => current.push(beta),
        }
    }
    if !current.is_empty() {
        clusters.push(Cluster {
            asn,
            betas: current,
        });
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_gaps() {
        let betas = [50, 150, 430, 431, 666, 2561, 2562, 2569];
        let clusters = gap_clusters(1299, &betas, 140);
        let groups: Vec<Vec<u16>> = clusters.iter().map(|c| c.betas.clone()).collect();
        assert_eq!(
            groups,
            vec![
                vec![50, 150],          // gap 100 <= 140
                vec![430, 431],         // gap to 150 is 280 > 140
                vec![666],              // gap 235 > 140
                vec![2561, 2562, 2569], // gap 1895 > 140; internal gaps <= 7
            ]
        );
    }

    #[test]
    fn gap_zero_isolates_everything() {
        let betas = [1, 2, 3, 10];
        let clusters = gap_clusters(7, &betas, 0);
        assert_eq!(clusters.len(), 4);
        for c in &clusters {
            assert_eq!(c.betas.len(), 1);
        }
    }

    #[test]
    fn gap_max_merges_everything() {
        let betas = [0, 30000, 65535];
        let clusters = gap_clusters(7, &betas, u16::MAX);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].span(), (0, 65535));
    }

    #[test]
    fn boundary_gap_is_inclusive() {
        // "not more than a defined gap value": exactly min_gap stays merged.
        let clusters = gap_clusters(7, &[100, 240], 140);
        assert_eq!(clusters.len(), 1);
        let clusters = gap_clusters(7, &[100, 241], 140);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(gap_clusters(7, &[], 140).is_empty());
        let clusters = gap_clusters(7, &[9], 140);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].span(), (9, 9));
    }

    #[test]
    fn members_cover_input_in_order() {
        let betas: Vec<u16> = (0..500).map(|i| i * 73 % 9001).collect::<Vec<_>>();
        let mut sorted = betas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let clusters = gap_clusters(7, &sorted, 50);
        let flattened: Vec<u16> = clusters
            .iter()
            .flat_map(|c| c.betas.iter().copied())
            .collect();
        assert_eq!(flattened, sorted);
    }
}
