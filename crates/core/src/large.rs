//! Large-community (RFC 8092) intent inference — the natural generalization
//! the paper defers ("we focus on regular communities owing to their
//! prevalence", §4; 11,524 of its 100,506 observed communities were large).
//!
//! The method transfers directly: the owner is the 32-bit global
//! administrator, the on-path test is unchanged, and clustering runs over
//! the **first** operator-defined part (`β` of `α:β:γ`), which by RFC 8092
//! convention carries the function while `γ` carries the parameter — so
//! same-function values share a cluster exactly like contiguous regular
//! ranges do.

use bgp_relationships::SiblingMap;
use bgp_types::fx::{FxHashMap, FxHashSet};
use bgp_types::{AsPath, Asn, Intent, LargeCommunity, Observation};

use crate::classify::{Exclusion, InferenceConfig};
use crate::stats::PathCounts;

/// The output of the method over large communities.
#[derive(Debug, Clone, Default)]
pub struct LargeInference {
    /// Label per classified large community.
    pub labels: FxHashMap<LargeCommunity, Intent>,
    /// Large communities the method refused to classify.
    pub excluded: FxHashMap<LargeCommunity, Exclusion>,
}

impl LargeInference {
    /// `(action, information)` counts.
    pub fn intent_counts(&self) -> (usize, usize) {
        let action = self
            .labels
            .values()
            .filter(|i| **i == Intent::Action)
            .count();
        (action, self.labels.len() - action)
    }
}

/// Per-community path statistics for large communities.
pub fn large_path_stats(
    observations: &[Observation],
    siblings: &SiblingMap,
) -> (FxHashMap<LargeCommunity, PathCounts>, FxHashSet<Asn>) {
    let mut path_ids: FxHashMap<&AsPath, u32> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, LargeCommunity)> = FxHashSet::default();
    let mut counts: FxHashMap<LargeCommunity, PathCounts> = FxHashMap::default();
    let mut seen_asns = FxHashSet::default();
    for obs in observations {
        let is_new = !path_ids.contains_key(&obs.path);
        let next_id = path_ids.len() as u32;
        let id = *path_ids.entry(&obs.path).or_insert(next_id);
        if is_new {
            seen_asns.extend(obs.path.iter());
        }
        for &lc in &obs.large_communities {
            if !seen.insert((id, lc)) {
                continue;
            }
            let owner = Asn::new(lc.global);
            let slot = counts.entry(lc).or_default();
            if siblings.is_on_path(owner, &obs.path) {
                slot.on += 1;
            } else {
                slot.off += 1;
            }
        }
    }
    (counts, seen_asns)
}

/// Classify observed large communities with the regular-community rules,
/// clustering per owner over the function field (`β`).
pub fn classify_large(
    observations: &[Observation],
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
) -> LargeInference {
    let (counts, seen_asns) = large_path_stats(observations, siblings);

    // Group by owner, then cluster over β (u32 gap rule).
    let mut by_owner: FxHashMap<u32, Vec<LargeCommunity>> = FxHashMap::default();
    for lc in counts.keys() {
        by_owner.entry(lc.global).or_default().push(*lc);
    }
    let mut owners: Vec<u32> = by_owner.keys().copied().collect();
    owners.sort_unstable();

    let mut out = LargeInference::default();
    for owner_raw in owners {
        let owner = Asn::new(owner_raw);
        let members = &by_owner[&owner_raw];
        let exclusion = if !cfg.apply_exclusions {
            None
        } else if owner.is_private() {
            Some(Exclusion::PrivateAsn)
        } else if owner.is_reserved() {
            Some(Exclusion::ReservedAsn)
        } else {
            let family: &[Asn] = if cfg.use_siblings {
                siblings.expand_ref(&owner)
            } else {
                std::slice::from_ref(&owner)
            };
            if family.iter().any(|a| seen_asns.contains(a)) {
                None
            } else {
                Some(Exclusion::NeverOnPath)
            }
        };
        if let Some(reason) = exclusion {
            for &lc in members {
                out.excluded.insert(lc, reason);
            }
            continue;
        }

        // Cluster over distinct β values with the same min-gap rule.
        let mut betas: Vec<u32> = members.iter().map(|lc| lc.local1).collect();
        betas.sort_unstable();
        betas.dedup();
        let mut clusters: Vec<Vec<u32>> = Vec::new();
        for beta in betas {
            match clusters.last_mut() {
                Some(cluster)
                    if beta - *cluster.last().expect("non-empty") <= cfg.min_gap as u32 =>
                {
                    cluster.push(beta)
                }
                _ => clusters.push(vec![beta]),
            }
        }
        for cluster in clusters {
            let cluster_members: Vec<LargeCommunity> = members
                .iter()
                .copied()
                .filter(|lc| cluster.contains(&lc.local1))
                .collect();
            let mut on_total = 0u64;
            let mut off_total = 0u64;
            let mut ratio_sum = 0.0;
            for lc in &cluster_members {
                let c = counts[lc];
                on_total += c.on as u64;
                off_total += c.off as u64;
                ratio_sum += c.ratio();
            }
            let ratio = ratio_sum / cluster_members.len() as f64;
            let label = if off_total == 0 {
                Intent::Information
            } else if on_total == 0 {
                Intent::Action
            } else if ratio >= cfg.ratio_threshold {
                Intent::Information
            } else {
                Intent::Action
            };
            for lc in cluster_members {
                out.labels.insert(lc, label);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(path: &str, large: &[(u32, u32, u32)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: Vec::new(),
            large_communities: large
                .iter()
                .map(|&(g, a, b)| LargeCommunity::new(g, a, b))
                .collect(),
            time: 0,
        }
    }

    #[test]
    fn self_tags_are_information() {
        // 32-bit origin 400000 self-tags; always on-path.
        let observations: Vec<Observation> = (0..5)
            .map(|i| obs(&format!("{} 1299 400000", 10 + i), &[(400_000, 1, 7)]))
            .collect();
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
        );
        assert_eq!(
            inf.labels[&LargeCommunity::new(400_000, 1, 7)],
            Intent::Information
        );
    }

    #[test]
    fn off_path_signals_are_action() {
        let observations = vec![
            obs("10 400001", &[(1299, 2561, 0)]),
            obs("11 400001", &[(1299, 2561, 0)]),
            obs("12 1299 400001", &[(1299, 2561, 0)]),
        ];
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
        );
        assert_eq!(
            inf.labels[&LargeCommunity::new(1299, 2561, 0)],
            Intent::Action
        );
    }

    #[test]
    fn clustering_over_function_field() {
        // 2561 is never off-path on its own, but shares a β cluster with
        // 2562, which is: both label action.
        let observations = vec![
            obs("10 1299 400001", &[(1299, 2561, 0)]),
            obs("11 400001", &[(1299, 2562, 0)]),
            obs("12 400002", &[(1299, 2562, 0)]),
            obs("13 1299 400002", &[(1299, 2562, 0)]),
        ];
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
        );
        assert_eq!(
            inf.labels[&LargeCommunity::new(1299, 2561, 0)],
            Intent::Action
        );
        // Without clustering it would have been information.
        let isolated = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig {
                min_gap: 0,
                ..InferenceConfig::default()
            },
        );
        assert_eq!(
            isolated.labels[&LargeCommunity::new(1299, 2561, 0)],
            Intent::Information
        );
    }

    #[test]
    fn private_32bit_owner_excluded() {
        let observations = vec![obs("10 4200000000 9", &[(4_200_000_000, 1, 1)])];
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
        );
        assert_eq!(
            inf.excluded[&LargeCommunity::new(4_200_000_000, 1, 1)],
            Exclusion::PrivateAsn
        );
    }

    #[test]
    fn never_on_path_owner_excluded() {
        let observations = vec![obs("10 9 8", &[(400_005, 1, 1)])];
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
        );
        assert_eq!(
            inf.excluded[&LargeCommunity::new(400_005, 1, 1)],
            Exclusion::NeverOnPath
        );
    }

    #[test]
    fn gamma_variants_share_their_function_cluster() {
        // Same β, different γ: always one cluster regardless of gap.
        let observations = vec![
            obs("10 1299 400001", &[(1299, 20, 1), (1299, 20, 2)]),
            obs("11 400001", &[(1299, 20, 2)]),
        ];
        let inf = classify_large(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig {
                min_gap: 0,
                ..InferenceConfig::default()
            },
        );
        assert_eq!(
            inf.labels[&LargeCommunity::new(1299, 20, 1)],
            inf.labels[&LargeCommunity::new(1299, 20, 2)]
        );
    }
}
