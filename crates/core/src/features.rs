//! The customer:peer feature (Fig 7) — demonstrated and rejected.
//!
//! §5.1: when a route carries `α:β` and `α` is on the path, the AS
//! *after* `α` (toward the origin) is usually an inferred customer for
//! action communities. The paper shows the feature maxes out at ~80%
//! accuracy, which is why the method uses on:off ratios instead.

use bgp_relationships::{InferredRelationships, RelView};
use bgp_types::fx::{FxHashMap, FxHashSet};
use bgp_types::{AsPath, Asn, Community, Intent, Observation};

/// Customer/peer evidence for one cluster of communities.
#[derive(Debug, Clone, Default)]
pub struct RelCounts {
    /// Unique paths where the AS after `α` is an inferred customer.
    pub customers: u32,
    /// Unique paths where the AS after `α` is an inferred peer.
    pub peers: u32,
    /// Unique paths where it is an inferred provider or unknown.
    pub other: u32,
}

impl RelCounts {
    /// Customer:peer ratio; a zero peer count falls back to the customer
    /// count (same convention as [`PathCounts::ratio`](crate::stats::PathCounts::ratio)).
    pub fn ratio(&self) -> f64 {
        if self.peers == 0 {
            self.customers as f64
        } else {
            self.customers as f64 / self.peers as f64
        }
    }
}

/// Compute per-community customer/peer counts over unique paths where the
/// owner is on-path.
pub fn relationship_counts(
    observations: &[Observation],
    relationships: &InferredRelationships,
) -> FxHashMap<Community, RelCounts> {
    // Dedupe (path, community) pairs over unique paths.
    let mut path_ids: FxHashMap<&AsPath, u32> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, Community)> = FxHashSet::default();
    let mut counts: FxHashMap<Community, RelCounts> = FxHashMap::default();
    for obs in observations {
        let next_id = path_ids.len() as u32;
        let id = *path_ids.entry(&obs.path).or_insert(next_id);
        for &c in &obs.communities {
            if !seen.insert((id, c)) {
                continue;
            }
            let owner = Asn::new(c.asn as u32);
            if !obs.path.contains(owner) {
                continue;
            }
            let slot = counts.entry(c).or_default();
            match obs
                .path
                .next_toward_origin(owner)
                .and_then(|next| relationships.view(owner, next))
            {
                Some(RelView::Customer) => slot.customers += 1,
                Some(RelView::Peer) => slot.peers += 1,
                _ => slot.other += 1,
            }
        }
    }
    counts
}

/// Aggregate per-community counts over a cluster of member communities.
pub fn cluster_rel_counts(
    per_community: &FxHashMap<Community, RelCounts>,
    members: &[Community],
) -> RelCounts {
    let mut total = RelCounts::default();
    for c in members {
        if let Some(rc) = per_community.get(c) {
            total.customers += rc.customers;
            total.peers += rc.peers;
            total.other += rc.other;
        }
    }
    total
}

/// `(ratio, truth)` pairs for clusters, ready for the Fig 7 CDF and the
/// optimal-threshold search.
pub fn cluster_ratio_series(
    clusters: &[(Vec<Community>, Intent)],
    per_community: &FxHashMap<Community, RelCounts>,
) -> Vec<(f64, Intent)> {
    clusters
        .iter()
        .filter_map(|(members, truth)| {
            let rc = cluster_rel_counts(per_community, members);
            if rc.customers + rc.peers == 0 {
                None
            } else {
                Some((rc.ratio(), *truth))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_relationships::{infer_relationships, InferConfig};

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    fn rels() -> InferredRelationships {
        // Build a small world: 1 is a big transit; 10,11 its customers;
        // 2 a comparable transit peering with 1.
        let mut paths: Vec<AsPath> = Vec::new();
        for s in 30..40u32 {
            paths.push(format!("{s} 1 10").parse().unwrap());
            paths.push(format!("{s} 1 11").parse().unwrap());
            paths.push(format!("{s} 2 1 10").parse().unwrap());
            paths.push(format!("{s} 1 2 20").parse().unwrap());
            paths.push(format!("{s} 2 21").parse().unwrap());
        }
        infer_relationships(paths.iter(), &InferConfig::default())
    }

    #[test]
    fn counts_split_by_relationship() {
        let relationships = rels();
        // Sanity: 1 sees 10 as customer, 2 as peer.
        assert_eq!(
            relationships.view(Asn::new(1), Asn::new(10)),
            Some(RelView::Customer)
        );
        assert_eq!(
            relationships.view(Asn::new(1), Asn::new(2)),
            Some(RelView::Peer)
        );

        let observations = vec![
            obs("30 1 10", &[(1, 100)]),   // next after 1 is customer 10
            obs("31 1 11", &[(1, 100)]),   // customer 11
            obs("30 1 2 20", &[(1, 100)]), // peer 2
            obs("30 99 98", &[(1, 100)]),  // off-path: ignored
        ];
        let counts = relationship_counts(&observations, &relationships);
        let rc = &counts[&Community::new(1, 100)];
        assert_eq!(rc.customers, 2);
        assert_eq!(rc.peers, 1);
        assert_eq!(rc.other, 0);
        assert_eq!(rc.ratio(), 2.0);
    }

    #[test]
    fn owner_at_origin_counts_as_other() {
        let relationships = rels();
        let observations = vec![obs("30 2 1", &[(1, 100)])];
        let counts = relationship_counts(&observations, &relationships);
        assert_eq!(counts[&Community::new(1, 100)].other, 1);
    }

    #[test]
    fn unique_paths_deduplicate() {
        let relationships = rels();
        let observations = vec![obs("30 1 10", &[(1, 100)]), obs("30 1 10", &[(1, 100)])];
        let counts = relationship_counts(&observations, &relationships);
        assert_eq!(counts[&Community::new(1, 100)].customers, 1);
    }

    #[test]
    fn cluster_aggregation_and_series() {
        let relationships = rels();
        let observations = vec![
            obs("30 1 10", &[(1, 100), (1, 101)]),
            obs("30 1 2 20", &[(1, 200)]),
        ];
        let per_community = relationship_counts(&observations, &relationships);
        let clusters = vec![
            (
                vec![Community::new(1, 100), Community::new(1, 101)],
                Intent::Action,
            ),
            (vec![Community::new(1, 200)], Intent::Information),
            (vec![Community::new(1, 999)], Intent::Action), // no evidence
        ];
        let series = cluster_ratio_series(&clusters, &per_community);
        assert_eq!(series.len(), 2); // evidence-free cluster dropped
        assert_eq!(series[0], (2.0, Intent::Action));
        assert_eq!(series[1], (0.0, Intent::Information));
    }

    #[test]
    fn ratio_fallback_without_peers() {
        let rc = RelCounts {
            customers: 7,
            peers: 0,
            other: 3,
        };
        assert_eq!(rc.ratio(), 7.0);
    }
}
