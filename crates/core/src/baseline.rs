//! Ground-truth regex clusters — the §5.1 baseline behind Fig 6.
//!
//! Instead of gap-clustering, group observed communities by the dictionary
//! patterns that cover them, then examine each cluster's on:off ratio. The
//! paper: 332 clusters over 6,259 communities; 937 communities in on-path
//! clusters, 66 in off-path clusters, 5,256 in 183 mixed clusters.

use bgp_dictionary::GroundTruthDictionary;
use bgp_types::{Community, Intent};

use crate::stats::PathStats;

/// How a baseline cluster's evidence splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// Every member was only ever seen on-path.
    OnPathOnly,
    /// Every member was only ever seen off-path.
    OffPathOnly,
    /// Both on-path and off-path sightings exist (the Fig 6 population).
    Mixed,
}

/// One regex-defined cluster with its path evidence.
#[derive(Debug, Clone)]
pub struct BaselineCluster {
    /// The pattern's textual form (e.g. `1299:[257]\d\d[1-39]`).
    pub pattern: String,
    /// Ground-truth intent of the pattern.
    pub truth: Intent,
    /// Observed member communities.
    pub members: Vec<Community>,
    /// Mean per-community on:off ratio.
    pub ratio: f64,
    /// Total on-path unique-path count.
    pub on_total: u64,
    /// Total off-path unique-path count.
    pub off_total: u64,
}

impl BaselineCluster {
    /// Classify the evidence split.
    pub fn kind(&self) -> ClusterKind {
        match (self.on_total, self.off_total) {
            (_, 0) => ClusterKind::OnPathOnly,
            (0, _) => ClusterKind::OffPathOnly,
            _ => ClusterKind::Mixed,
        }
    }
}

/// Build baseline clusters: one per dictionary pattern with at least one
/// observed member.
pub fn baseline_clusters(dict: &GroundTruthDictionary, stats: &PathStats) -> Vec<BaselineCluster> {
    let mut clusters = Vec::new();
    for entry in &dict.entries {
        let mut members: Vec<Community> = stats
            .per_community
            .keys()
            .filter(|c| entry.pattern.matches(**c))
            .copied()
            .collect();
        if members.is_empty() {
            continue;
        }
        members.sort_unstable();
        let mut on_total = 0u64;
        let mut off_total = 0u64;
        let mut ratio_sum = 0.0;
        for &c in &members {
            let counts = stats.counts(c).unwrap_or_default();
            on_total += counts.on as u64;
            off_total += counts.off as u64;
            ratio_sum += counts.ratio();
        }
        clusters.push(BaselineCluster {
            pattern: entry.pattern.to_string(),
            truth: entry.intent,
            ratio: ratio_sum / members.len() as f64,
            members,
            on_total,
            off_total,
        });
    }
    clusters
}

/// Find the threshold maximizing classification accuracy over
/// `(ratio, truth)` pairs, where ratios at or above the threshold are
/// labeled `above_label`. Returns `(best_threshold, best_accuracy)`.
///
/// Used for the "optimal ratio of 160:1 yields 98%" (Fig 6) and the
/// "optimal ratio of 5:1 yields 80%" (Fig 7) observations.
pub fn best_threshold(items: &[(f64, Intent)], above_label: Intent) -> (f64, f64) {
    if items.is_empty() {
        return (0.0, 0.0);
    }
    let mut candidates: Vec<f64> = items.iter().map(|(r, _)| *r).collect();
    candidates.push(0.0);
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    let mut best = (0.0, 0.0);
    for &t in &candidates {
        let correct = items
            .iter()
            .filter(|(r, truth)| {
                let label = if *r >= t {
                    above_label
                } else {
                    above_label.opposite()
                };
                label == *truth
            })
            .count();
        let acc = correct as f64 / items.len() as f64;
        if acc > best.1 {
            best = (t, acc);
        }
    }
    best
}

/// Like [`best_threshold`], but maximizing *balanced* accuracy (the mean
/// of per-class accuracies). Immune to the majority-class degeneracy that
/// plain accuracy suffers when one intent dominates the cluster population.
pub fn best_threshold_balanced(items: &[(f64, Intent)], above_label: Intent) -> (f64, f64) {
    if items.is_empty() {
        return (0.0, 0.0);
    }
    let mut candidates: Vec<f64> = items.iter().map(|(r, _)| *r).collect();
    candidates.push(0.0);
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    let n_above = items
        .iter()
        .filter(|(_, t)| *t == above_label)
        .count()
        .max(1) as f64;
    let n_below = (items.len() - n_above as usize).max(1) as f64;
    let mut best = (0.0, 0.0);
    for &t in &candidates {
        let mut correct_above = 0usize;
        let mut correct_below = 0usize;
        for (r, truth) in items {
            if *truth == above_label && *r >= t {
                correct_above += 1;
            } else if *truth != above_label && *r < t {
                correct_below += 1;
            }
        }
        let balanced = (correct_above as f64 / n_above + correct_below as f64 / n_below) / 2.0;
        if balanced > best.1 {
            best = (t, balanced);
        }
    }
    best
}

/// Accuracy at a fixed threshold over `(ratio, truth)` pairs.
pub fn threshold_accuracy(items: &[(f64, Intent)], threshold: f64, above_label: Intent) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    let correct = items
        .iter()
        .filter(|(r, truth)| {
            let label = if *r >= threshold {
                above_label
            } else {
                above_label.opposite()
            };
            label == *truth
        })
        .count();
    correct as f64 / items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_dictionary::DictionaryEntry;
    use bgp_relationships::SiblingMap;
    use bgp_types::Observation;

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    fn dict(entries: &[(&str, Intent)]) -> GroundTruthDictionary {
        GroundTruthDictionary {
            entries: entries
                .iter()
                .map(|(p, i)| DictionaryEntry {
                    pattern: p.parse().unwrap(),
                    intent: *i,
                })
                .collect(),
        }
    }

    #[test]
    fn clusters_partition_by_pattern() {
        let d = dict(&[
            (r"1299:256[1-39]", Intent::Action),
            (r"1299:2000[01]", Intent::Information),
            (r"1299:9999", Intent::Action), // never observed
        ]);
        let observations = vec![
            obs("10 1299 64496", &[(1299, 2561), (1299, 20000)]),
            obs("11 64496", &[(1299, 2561)]),
            obs("12 1299 64497", &[(1299, 20001)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let clusters = baseline_clusters(&d, &stats);
        assert_eq!(clusters.len(), 2); // unobserved pattern skipped
        let action = clusters.iter().find(|c| c.truth == Intent::Action).unwrap();
        assert_eq!(action.members, vec![Community::new(1299, 2561)]);
        assert_eq!(action.kind(), ClusterKind::Mixed);
        let info = clusters
            .iter()
            .find(|c| c.truth == Intent::Information)
            .unwrap();
        assert_eq!(info.members.len(), 2);
        assert_eq!(info.kind(), ClusterKind::OnPathOnly);
    }

    #[test]
    fn kind_classification() {
        let mk = |on, off| BaselineCluster {
            pattern: "1:1".into(),
            truth: Intent::Action,
            members: vec![],
            ratio: 0.0,
            on_total: on,
            off_total: off,
        };
        assert_eq!(mk(5, 0).kind(), ClusterKind::OnPathOnly);
        assert_eq!(mk(0, 5).kind(), ClusterKind::OffPathOnly);
        assert_eq!(mk(5, 5).kind(), ClusterKind::Mixed);
    }

    #[test]
    fn best_threshold_separates_cleanly() {
        let items = vec![
            (500.0, Intent::Information),
            (300.0, Intent::Information),
            (2.0, Intent::Action),
            (0.5, Intent::Action),
        ];
        let (t, acc) = best_threshold(&items, Intent::Information);
        assert_eq!(acc, 1.0);
        assert!(t > 2.0 && t <= 300.0, "threshold {t}");
    }

    #[test]
    fn best_threshold_with_overlap() {
        let items = vec![
            (500.0, Intent::Information),
            (100.0, Intent::Information),
            (120.0, Intent::Action), // inversion
            (2.0, Intent::Action),
        ];
        let (_, acc) = best_threshold(&items, Intent::Information);
        assert_eq!(acc, 0.75);
    }

    #[test]
    fn fixed_threshold_accuracy() {
        let items = vec![
            (500.0, Intent::Information),
            (100.0, Intent::Information),
            (2.0, Intent::Action),
        ];
        assert_eq!(
            threshold_accuracy(&items, 160.0, Intent::Information),
            2.0 / 3.0
        );
        assert_eq!(threshold_accuracy(&items, 50.0, Intent::Information), 1.0);
        assert_eq!(threshold_accuracy(&[], 160.0, Intent::Information), 0.0);
    }

    #[test]
    fn inverted_direction_for_customer_peer_feature() {
        // Fig 7: info clusters have LOW customer:peer ratios ⇒ above_label
        // is Action.
        let items = vec![
            (20.0, Intent::Action),
            (8.0, Intent::Action),
            (3.0, Intent::Information),
            (1.0, Intent::Information),
        ];
        let (t, acc) = best_threshold(&items, Intent::Action);
        assert_eq!(acc, 1.0);
        assert!(t > 3.0 && t <= 8.0);
    }

    #[test]
    fn degenerate_ratios_do_not_panic_the_threshold_search() {
        // Regression: `partial_cmp(..).expect(..)` panicked the moment a
        // caller fed a NaN ratio (0/0 from an empty degenerate cluster) or
        // an infinity. `total_cmp` orders them deterministically instead —
        // NaN sorts last and `r >= NaN` is false for every item, so the
        // search degrades gracefully and still finds the finite optimum.
        let items = vec![
            (f64::NAN, Intent::Information),
            (f64::INFINITY, Intent::Information),
            (500.0, Intent::Information),
            (2.0, Intent::Action),
            (f64::NAN, Intent::Action),
        ];
        let (t, acc) = best_threshold(&items, Intent::Information);
        assert!(t.is_finite());
        assert!(t > 2.0 && t <= 500.0);
        // 500 and +inf classified info, 2.0 action; the two NaNs always
        // compare false against the threshold and land on the action side.
        assert_eq!(acc, 4.0 / 5.0);
        let (tb, accb) = best_threshold_balanced(&items, Intent::Information);
        assert!(tb.is_finite());
        assert!(accb > 0.0);
    }
}
