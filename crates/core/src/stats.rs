//! Per-community path statistics — step 0 of the method.
//!
//! §5.1: *"We calculated the on-path:off-path ratio of a community by
//! counting the number of unique AS paths the community appeared on-path
//! and off-path, respectively."* The on-path test includes siblings (§5.2:
//! "the ASN (or a sibling thereof)").
//!
//! The reduction runs over a columnar [`ObservationStore`]: paths,
//! community sets, and individual communities are dense `u32` IDs, tuple
//! dedup is a sort over packed `u64` keys, per-community accumulation
//! indexes a flat slot array (a per-slot last-path marker dedups pairs in
//! path-major order, so there is no second sort and no hashing in the
//! loop), sibling orgs are dense org-IDs precomputed per unique path, and
//! the on-path test is a binary search in a sorted interned slice.
//! The parallel variant shards by interned path ID — every occurrence of
//! a path carries the same ID, so each unique path lands in exactly one
//! shard and per-shard counts merge by summation, bit-identical to the
//! sequential reduction at any thread count. The `Observation`-slice
//! entry points survive as thin wrappers that build a store first.

use bgp_relationships::SiblingMap;
use bgp_types::fx::{FxHashMap, FxHashSet};
use bgp_types::par::{effective_threads, par_map_indexed};
use bgp_types::store::ObservationStore;
use bgp_types::{Asn, Community, Observation};

/// Unique-path counts for one community.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathCounts {
    /// Unique AS paths containing the owner (or a sibling).
    pub on: u32,
    /// Unique AS paths not containing the owner or any sibling.
    pub off: u32,
}

impl PathCounts {
    /// The per-community on:off ratio used inside mixed clusters.
    ///
    /// `off == 0` has no finite ratio; the on-count itself is used as a
    /// conservative proxy (equivalent to assuming one unseen off-path
    /// sighting), which keeps never-off-path communities strongly on the
    /// informational side without infinities.
    pub fn ratio(&self) -> f64 {
        if self.off == 0 {
            self.on as f64
        } else {
            self.on as f64 / self.off as f64
        }
    }
}

/// Aggregated path statistics over a set of observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathStats {
    /// Per-community unique-path counts.
    pub per_community: FxHashMap<Community, PathCounts>,
    /// Every ASN appearing in any unique AS path (for the never-on-path
    /// exclusion rule).
    pub seen_asns: FxHashSet<Asn>,
    /// Number of unique `(AS path, communities)` tuples (the §4 unit:
    /// "≈174M tuples" in the paper).
    pub unique_tuples: usize,
    /// Number of unique AS paths.
    pub unique_paths: usize,
}

/// The owner of one community slot, resolved once before the reduction to
/// its full sibling family: either the bare ASN value (owners the sibling
/// map doesn't know, or sole members of their org — `expand(α) = [α]`) or
/// a `family_pool` range holding every sibling's ASN value. The on-path
/// test is then a binary search of each family member in the path's sorted
/// unique-member slice — the reference reduction's
/// `expand(α).iter().any(|a| members.contains(a))` verbatim, minus the
/// hashing. Resolution happens per community *slot* (hundreds), never per
/// path or per tuple.
#[derive(Clone, Copy)]
enum SlotOwner {
    Plain(u32),
    Family { lo: u32, hi: u32 },
}

/// Precomputed on-path test over one store: per-community-slot owner
/// family resolution. Built once, then every `(community slot, path ID)`
/// test is a handful of binary searches over dense values — no hashing,
/// no sibling-family walk. Shared with the checkpoint accumulator's
/// store-ingestion path, where the same test runs per (tuple × community).
pub(crate) struct OnPathIndex {
    resolved: Vec<SlotOwner>,
    /// ASN values of multi-member owner families, ranged by `SlotOwner::Family`.
    family_pool: Vec<u32>,
}

impl OnPathIndex {
    pub(crate) fn build(store: &ObservationStore, siblings: &SiblingMap) -> Self {
        let mut family_pool = Vec::new();
        let resolved = (0..store.community_count() as u32)
            .map(|slot| {
                let owner = Asn::new(store.community(slot).asn as u32);
                let family = siblings.expand_ref(&owner);
                if family.len() <= 1 {
                    SlotOwner::Plain(owner.value())
                } else {
                    let lo = family_pool.len() as u32;
                    family_pool.extend(family.iter().map(|a| a.value()));
                    SlotOwner::Family {
                        lo,
                        hi: family_pool.len() as u32,
                    }
                }
            })
            .collect();
        OnPathIndex {
            resolved,
            family_pool,
        }
    }

    /// Whether the owner of community slot `slot` (or one of its siblings)
    /// appears on path `path_id`.
    pub(crate) fn on_path(&self, store: &ObservationStore, path_id: u32, slot: u32) -> bool {
        let members = store.path_members(path_id);
        match self.resolved[slot as usize] {
            SlotOwner::Plain(asn) => members.binary_search(&asn).is_ok(),
            SlotOwner::Family { lo, hi } => self.family_pool[lo as usize..hi as usize]
                .iter()
                .any(|asn| members.binary_search(asn).is_ok()),
        }
    }
}

/// One shard of the reduction: all tuples whose interned path ID is
/// `shard` modulo `shard_count` (`shard_count == 1` is the full input).
///
/// Exact under merging-by-sum because sharding by path ID partitions
/// *unique paths*: every occurrence of a path carries the same dense ID,
/// so a community's unique on/off paths in this shard are disjoint from
/// every other shard's.
fn shard_stats(
    store: &ObservationStore,
    index: &OnPathIndex,
    shard: u32,
    shard_count: u32,
) -> (Vec<PathCounts>, usize, usize) {
    // Dedup tuples: pack (path ID, cset ID) into one u64 and sort. The
    // sort is path-major, so unique paths fall out as key runs.
    let mut tuples: Vec<u64> = if shard_count == 1 {
        store
            .tuples()
            .map(|(p, c)| (u64::from(p) << 32) | u64::from(c))
            .collect()
    } else {
        store
            .tuples()
            .filter(|&(p, _)| p % shard_count == shard)
            .map(|(p, c)| (u64::from(p) << 32) | u64::from(c))
            .collect()
    };
    tuples.sort_unstable();
    tuples.dedup();
    let unique_tuples = tuples.len();

    // Count unique (community, path) pairs straight off the sorted run:
    // within one path's run of csets a community's slot can repeat, and
    // the `last_path` marker collapses those repeats; once the run moves
    // to the next path the old path never comes back (path-major order),
    // so one marker word per slot is a full dedup — no pair sort at all.
    // One on-path test (a binary search over a handful of entries) per
    // surviving pair.
    let slot_count = index.resolved.len();
    let mut counts = vec![PathCounts::default(); slot_count];
    let mut last_path = vec![u64::MAX; slot_count];
    let mut unique_paths = 0usize;
    let mut prev_path = u64::MAX;
    for &key in &tuples {
        let path = key >> 32;
        if path != prev_path {
            unique_paths += 1;
            prev_path = path;
        }
        let pid = path as u32;
        for &slot in store.cset_slots(key as u32) {
            let s = slot as usize;
            if last_path[s] == path {
                continue;
            }
            last_path[s] = path;
            if index.on_path(store, pid, slot) {
                counts[s].on += 1;
            } else {
                counts[s].off += 1;
            }
        }
    }

    (counts, unique_tuples, unique_paths)
}

impl PathStats {
    /// Reduce a columnar store to statistics, sequentially.
    pub fn from_store(store: &ObservationStore, siblings: &SiblingMap) -> Self {
        Self::from_store_threaded(store, siblings, 1)
    }

    /// [`PathStats::from_store`] across worker threads (`0` = one per
    /// CPU). The input is sharded by interned path ID — no rehashing of
    /// full paths — and each shard reduced independently; partial counts
    /// merge by summation. Bit-identical to the sequential reduction at
    /// any thread count.
    pub fn from_store_threaded(
        store: &ObservationStore,
        siblings: &SiblingMap,
        threads: usize,
    ) -> Self {
        let threads = effective_threads(threads);
        let index = OnPathIndex::build(store, siblings);
        let shard_count = if threads <= 1 || store.len() < 2 {
            1
        } else {
            threads as u32
        };
        let parts: Vec<_> = if shard_count == 1 {
            vec![shard_stats(store, &index, 0, 1)]
        } else {
            par_map_indexed(shard_count as usize, threads, |i| {
                shard_stats(store, &index, i as u32, shard_count)
            })
        };

        let mut stats = PathStats::default();
        // Shards partition communities *per path*, not communities: the
        // same slot can collect counts in several shards, so sum, then
        // materialize only slots that occurred in at least one tuple.
        let mut totals = vec![PathCounts::default(); index.resolved.len()];
        for (counts, unique_tuples, unique_paths) in parts {
            for (total, part) in totals.iter_mut().zip(&counts) {
                total.on += part.on;
                total.off += part.off;
            }
            stats.unique_tuples += unique_tuples;
            stats.unique_paths += unique_paths;
        }
        for (slot, &counts) in totals.iter().enumerate() {
            if counts.on + counts.off > 0 {
                stats
                    .per_community
                    .insert(store.community(slot as u32), counts);
            }
        }
        // Every interned path has at least one observation, so the union
        // of interned member slices is exactly the old per-observation
        // scan. Sort-dedup the flat member pool first: hashing only the
        // distinct survivors is far cheaper than hashing every entry.
        let mut vals: Vec<u32> = store.member_values().to_vec();
        vals.sort_unstable();
        vals.dedup();
        stats.seen_asns.reserve(vals.len());
        stats.seen_asns.extend(vals.iter().map(|&a| Asn::new(a)));
        stats
    }

    /// Reduce observations to statistics. Duplicate `(path, communities)`
    /// tuples collapse; a community's on/off counts are over unique paths.
    ///
    /// Thin wrapper: interns into an [`ObservationStore`] and runs the
    /// columnar kernel.
    pub fn from_observations(observations: &[Observation], siblings: &SiblingMap) -> Self {
        let store = ObservationStore::from_observations(observations);
        Self::from_store(&store, siblings)
    }

    /// [`PathStats::from_observations`] across worker threads (`0` = one
    /// per CPU). Thin wrapper over [`from_store_threaded`](Self::from_store_threaded).
    pub fn from_observations_threaded(
        observations: &[Observation],
        siblings: &SiblingMap,
        threads: usize,
    ) -> Self {
        let store = ObservationStore::from_observations(observations);
        Self::from_store_threaded(&store, siblings, threads)
    }

    /// Observed communities grouped by owner ASN, each group's `β` values
    /// sorted ascending. Deterministic order (by ASN).
    pub fn by_owner(&self) -> Vec<(u16, Vec<u16>)> {
        let mut map: FxHashMap<u16, Vec<u16>> = FxHashMap::default();
        for c in self.per_community.keys() {
            map.entry(c.asn).or_default().push(c.value);
        }
        let mut out: Vec<(u16, Vec<u16>)> = map.into_iter().collect();
        for (_, betas) in &mut out {
            betas.sort_unstable();
            betas.dedup();
        }
        out.sort_unstable_by_key(|(asn, _)| *asn);
        out
    }

    /// Total distinct communities observed.
    pub fn community_count(&self) -> usize {
        self.per_community.len()
    }

    /// The counts for one community, if observed.
    pub fn counts(&self, c: Community) -> Option<PathCounts> {
        self.per_community.get(&c).copied()
    }
}

/// The original hash-set reduction, retained verbatim as the reference
/// oracle for the columnar kernel (see `crates/core/tests/proptests.rs`).
/// Not part of the public API surface proper — test/diagnostic use only.
#[doc(hidden)]
pub fn reference_stats(observations: &[Observation], siblings: &SiblingMap) -> PathStats {
    use bgp_types::AsPath;
    use std::collections::hash_map::Entry;

    let mut path_ids: FxHashMap<&AsPath, u32> = FxHashMap::default();
    let mut tuples: FxHashSet<(u32, &[Community])> = FxHashSet::default();
    for obs in observations {
        let next = path_ids.len() as u32;
        let id = match path_ids.entry(&obs.path) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => *v.insert(next),
        };
        tuples.insert((id, obs.communities.as_slice()));
    }

    let mut members: Vec<FxHashSet<Asn>> = vec![FxHashSet::default(); path_ids.len()];
    let mut seen_asns = FxHashSet::default();
    for (path, &id) in &path_ids {
        let set: FxHashSet<Asn> = path.iter().collect();
        seen_asns.extend(set.iter().copied());
        members[id as usize] = set;
    }

    let mut on_paths: FxHashMap<Community, FxHashSet<u32>> = FxHashMap::default();
    let mut off_paths: FxHashMap<Community, FxHashSet<u32>> = FxHashMap::default();
    for &(path_id, communities) in &tuples {
        for &c in communities {
            let owner = Asn::new(c.asn as u32);
            let family = siblings.expand(owner);
            let on = family.iter().any(|a| members[path_id as usize].contains(a));
            if on {
                on_paths.entry(c).or_default().insert(path_id);
            } else {
                off_paths.entry(c).or_default().insert(path_id);
            }
        }
    }

    let mut per_community: FxHashMap<Community, PathCounts> = FxHashMap::default();
    for (c, set) in on_paths {
        per_community.entry(c).or_default().on = set.len() as u32;
    }
    for (c, set) in off_paths {
        per_community.entry(c).or_default().off = set.len() as u32;
    }

    PathStats {
        per_community,
        seen_asns,
        unique_tuples: tuples.len(),
        unique_paths: path_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(vp: u32, path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: Asn::new(vp),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    #[test]
    fn fig5_counting() {
        // The three collector paths of Fig 5. Community 1299:2569 rides
        // routes via 65432 (off-path) and via 7018|1299 (on-path);
        // 1299:35130 is always on-path.
        let observations = vec![
            obs(65541, "65541 3356 1299 64496", &[(1299, 35130)]),
            obs(65432, "65432 64496", &[(1299, 2569)]),
            obs(
                65269,
                "65269 7018 1299 64496",
                &[(1299, 2569), (1299, 35130)],
            ),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let action = stats.counts(Community::new(1299, 2569)).unwrap();
        assert_eq!((action.on, action.off), (1, 1));
        let info = stats.counts(Community::new(1299, 35130)).unwrap();
        assert_eq!((info.on, info.off), (2, 0));
        assert_eq!(stats.unique_paths, 3);
        assert_eq!(stats.unique_tuples, 3);
        assert!(stats.seen_asns.contains(&Asn::new(1299)));
        assert!(!stats.seen_asns.contains(&Asn::new(9999)));
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let observations = vec![
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let counts = stats.counts(Community::new(1299, 1)).unwrap();
        assert_eq!((counts.on, counts.off), (1, 0));
        assert_eq!(stats.unique_tuples, 1);
    }

    #[test]
    fn same_path_different_communities_counts_path_once() {
        let observations = vec![
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
            obs(65541, "65541 1299 64496", &[(1299, 1), (1299, 2)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        // Two distinct tuples, one unique path; 1299:1 on one unique path.
        assert_eq!(stats.unique_tuples, 2);
        assert_eq!(stats.unique_paths, 1);
        assert_eq!(stats.counts(Community::new(1299, 1)).unwrap().on, 1);
    }

    #[test]
    fn sibling_expansion_marks_on_path() {
        // 64500 is a sibling of 1299: a path containing 64500 counts as
        // on-path for 1299's communities.
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64500)]]);
        let observations = vec![obs(65541, "65541 64500 64496", &[(1299, 7)])];
        let with = PathStats::from_observations(&observations, &siblings);
        assert_eq!(with.counts(Community::new(1299, 7)).unwrap().on, 1);
        let without = PathStats::from_observations(&observations, &SiblingMap::default());
        assert_eq!(without.counts(Community::new(1299, 7)).unwrap().off, 1);
    }

    #[test]
    fn known_org_owner_off_its_own_paths_counts_off() {
        // An owner with a known org must still count off-path on paths
        // carrying *other* orgs only (exercises the org-ID branch both
        // ways).
        let siblings = SiblingMap::from_orgs(vec![
            vec![Asn::new(1299), Asn::new(64500)],
            vec![Asn::new(3356)],
        ]);
        let observations = vec![
            obs(1, "1 3356 64496", &[(1299, 7)]),
            obs(1, "1 64500 64496", &[(1299, 7)]),
        ];
        let stats = PathStats::from_observations(&observations, &siblings);
        let c = stats.counts(Community::new(1299, 7)).unwrap();
        assert_eq!((c.on, c.off), (1, 1));
    }

    #[test]
    fn ratio_semantics() {
        assert_eq!(PathCounts { on: 320, off: 2 }.ratio(), 160.0);
        assert_eq!(PathCounts { on: 57, off: 0 }.ratio(), 57.0);
        assert_eq!(PathCounts { on: 0, off: 9 }.ratio(), 0.0);
    }

    #[test]
    fn by_owner_groups_and_sorts() {
        let observations = vec![
            obs(1, "1 2 3", &[(200, 9), (100, 5), (100, 1)]),
            obs(1, "1 2 4", &[(100, 5)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let grouped = stats.by_owner();
        assert_eq!(grouped, vec![(100, vec![1, 5]), (200, vec![9])]);
    }

    #[test]
    fn duplicate_paths_do_not_burn_interned_ids() {
        // Regression: interleaved duplicates of the same path must reuse
        // the first ID so IDs stay dense in 0..unique_paths (the members
        // table is indexed by ID; a burned ID would leave a hole or panic).
        let observations = vec![
            obs(1, "1 1299 64496", &[(1299, 1)]),
            obs(1, "1 1299 64496", &[(1299, 2)]),
            obs(2, "2 64496", &[(1299, 3)]),
            obs(1, "1 1299 64496", &[(1299, 4)]),
            obs(2, "2 64496", &[(1299, 3)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        assert_eq!(stats.unique_paths, 2);
        assert_eq!(stats.unique_tuples, 4);
        // Each community rides exactly one unique path.
        for beta in 1..=4 {
            let c = stats.counts(Community::new(1299, beta)).unwrap();
            assert_eq!(c.on + c.off, 1, "1299:{beta} should sit on one path");
        }
    }

    #[test]
    fn threaded_stats_match_sequential_at_any_thread_count() {
        // A mixed workload: duplicates, shared paths, multiple owners.
        let mut observations = Vec::new();
        for i in 0..40u32 {
            observations.push(obs(
                65000 + (i % 5),
                &format!("{} 1299 {}", 65000 + (i % 5), 64496 + (i % 7)),
                &[(1299, (i % 11) as u16), (3356, (i % 3) as u16)],
            ));
            observations.push(obs(
                65100 + (i % 3),
                &format!("{} 64496", 65100 + (i % 3)),
                &[(1299, (i % 11) as u16)],
            ));
        }
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64500)]]);
        let sequential = PathStats::from_observations(&observations, &siblings);
        for threads in [1, 2, 3, 8] {
            let parallel = PathStats::from_observations_threaded(&observations, &siblings, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn kernel_matches_reference_reduction() {
        let mut observations = Vec::new();
        for i in 0..60u32 {
            observations.push(obs(
                65000 + (i % 4),
                &format!("{} 3356 1299 {}", 65000 + (i % 4), 64496 + (i % 9)),
                &[(1299, (i % 13) as u16), (65000, (i % 2) as u16)],
            ));
        }
        // Prepending + an AS_SET path for good measure.
        observations.push(obs(7, "7 1299 1299 64496", &[(1299, 3)]));
        observations.push(obs(7, "7 {1299,3356} 64496", &[(1299, 3)]));
        let siblings = SiblingMap::from_orgs(vec![
            vec![Asn::new(1299), Asn::new(64500)],
            vec![Asn::new(65000), Asn::new(65001)],
        ]);
        assert_eq!(
            PathStats::from_observations(&observations, &siblings),
            reference_stats(&observations, &siblings)
        );
    }

    #[test]
    fn prepending_does_not_double_count() {
        let observations = vec![
            obs(1, "1 1299 1299 1299 64496", &[(1299, 5)]),
            obs(1, "1 1299 64496", &[(1299, 5)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        // Two distinct paths (prepending makes them different strings).
        assert_eq!(stats.counts(Community::new(1299, 5)).unwrap().on, 2);
    }
}
