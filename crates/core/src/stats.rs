//! Per-community path statistics — step 0 of the method.
//!
//! §5.1: *"We calculated the on-path:off-path ratio of a community by
//! counting the number of unique AS paths the community appeared on-path
//! and off-path, respectively."* The on-path test includes siblings (§5.2:
//! "the ASN (or a sibling thereof)").

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use bgp_relationships::SiblingMap;
use bgp_types::fx::{fx_hash_one, FxHashMap, FxHashSet};
use bgp_types::par::{effective_threads, par_map_indexed};
use bgp_types::{AsPath, Asn, Community, Observation};

/// Unique-path counts for one community.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathCounts {
    /// Unique AS paths containing the owner (or a sibling).
    pub on: u32,
    /// Unique AS paths not containing the owner or any sibling.
    pub off: u32,
}

impl PathCounts {
    /// The per-community on:off ratio used inside mixed clusters.
    ///
    /// `off == 0` has no finite ratio; the on-count itself is used as a
    /// conservative proxy (equivalent to assuming one unseen off-path
    /// sighting), which keeps never-off-path communities strongly on the
    /// informational side without infinities.
    pub fn ratio(&self) -> f64 {
        if self.off == 0 {
            self.on as f64
        } else {
            self.on as f64 / self.off as f64
        }
    }
}

/// Aggregated path statistics over a set of observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathStats {
    /// Per-community unique-path counts.
    pub per_community: FxHashMap<Community, PathCounts>,
    /// Every ASN appearing in any unique AS path (for the never-on-path
    /// exclusion rule).
    pub seen_asns: FxHashSet<Asn>,
    /// Number of unique `(AS path, communities)` tuples (the §4 unit:
    /// "≈174M tuples" in the paper).
    pub unique_tuples: usize,
    /// Number of unique AS paths.
    pub unique_paths: usize,
}

/// The sequential reduction, over one shard (or the whole input).
///
/// Correct for any subset of observations in which every occurrence of a
/// given AS path is present: interning, tuple dedup, and unique-path
/// counting are all keyed by path, so shards partitioned by path hash can
/// each run this independently and merge by summing.
fn stats_of(observations: &[&Observation], siblings: &SiblingMap) -> PathStats {
    // Intern paths and dedupe tuples. IDs are allocated only on first
    // sight (explicit `Entry` match): a duplicate path reuses its ID, so
    // IDs stay dense in `0..unique_paths` and index `members` directly.
    let mut path_ids: FxHashMap<&AsPath, u32> = FxHashMap::default();
    let mut tuples: FxHashSet<(u32, &[Community])> = FxHashSet::default();
    for obs in observations {
        let next = path_ids.len() as u32;
        let id = match path_ids.entry(&obs.path) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => *v.insert(next),
        };
        tuples.insert((id, obs.communities.as_slice()));
    }

    // Membership sets per path, with sibling expansion applied on the
    // community side (cheaper: expand the owner when testing).
    let mut members: Vec<FxHashSet<Asn>> = vec![FxHashSet::default(); path_ids.len()];
    let mut seen_asns = FxHashSet::default();
    for (path, &id) in &path_ids {
        let set: FxHashSet<Asn> = path.iter().collect();
        seen_asns.extend(set.iter().copied());
        members[id as usize] = set;
    }

    // Unique paths per community, split on/off.
    let mut on_paths: FxHashMap<Community, FxHashSet<u32>> = FxHashMap::default();
    let mut off_paths: FxHashMap<Community, FxHashSet<u32>> = FxHashMap::default();
    for &(path_id, communities) in &tuples {
        for &c in communities {
            let owner = Asn::new(c.asn as u32);
            let family = siblings.expand(owner);
            let on = family.iter().any(|a| members[path_id as usize].contains(a));
            if on {
                on_paths.entry(c).or_default().insert(path_id);
            } else {
                off_paths.entry(c).or_default().insert(path_id);
            }
        }
    }

    let mut per_community: FxHashMap<Community, PathCounts> = FxHashMap::default();
    for (c, set) in on_paths {
        per_community.entry(c).or_default().on = set.len() as u32;
    }
    for (c, set) in off_paths {
        per_community.entry(c).or_default().off = set.len() as u32;
    }

    PathStats {
        per_community,
        seen_asns,
        unique_tuples: tuples.len(),
        unique_paths: path_ids.len(),
    }
}

impl PathStats {
    /// Reduce observations to statistics. Duplicate `(path, communities)`
    /// tuples collapse; a community's on/off counts are over unique paths.
    pub fn from_observations(observations: &[Observation], siblings: &SiblingMap) -> Self {
        let refs: Vec<&Observation> = observations.iter().collect();
        stats_of(&refs, siblings)
    }

    /// [`PathStats::from_observations`] across worker threads (`0` = one per
    /// CPU). Observations are sharded by AS-path hash, each shard reduced
    /// independently, and the shard results summed — every occurrence of a
    /// path lands in one shard, so on/off unique-path counts, tuple dedup,
    /// and path counts are exact. The result is identical to the sequential
    /// reduction at any thread count.
    pub fn from_observations_threaded(
        observations: &[Observation],
        siblings: &SiblingMap,
        threads: usize,
    ) -> Self {
        let threads = effective_threads(threads);
        if threads <= 1 || observations.len() < 2 {
            return Self::from_observations(observations, siblings);
        }
        let shard_count = threads;
        let mut shards: Vec<Vec<&Observation>> = (0..shard_count).map(|_| Vec::new()).collect();
        for obs in observations {
            shards[(fx_hash_one(&obs.path) as usize) % shard_count].push(obs);
        }
        let parts = par_map_indexed(shard_count, threads, |i| stats_of(&shards[i], siblings));

        let mut merged = PathStats::default();
        for part in parts {
            for (c, counts) in part.per_community {
                let slot = merged.per_community.entry(c).or_default();
                slot.on += counts.on;
                slot.off += counts.off;
            }
            merged.seen_asns.extend(part.seen_asns);
            merged.unique_tuples += part.unique_tuples;
            merged.unique_paths += part.unique_paths;
        }
        merged
    }

    /// Observed communities grouped by owner ASN, each group's `β` values
    /// sorted ascending. Deterministic order (by ASN).
    pub fn by_owner(&self) -> Vec<(u16, Vec<u16>)> {
        let mut map: HashMap<u16, Vec<u16>> = HashMap::new();
        for c in self.per_community.keys() {
            map.entry(c.asn).or_default().push(c.value);
        }
        let mut out: Vec<(u16, Vec<u16>)> = map.into_iter().collect();
        for (_, betas) in &mut out {
            betas.sort_unstable();
            betas.dedup();
        }
        out.sort_unstable_by_key(|(asn, _)| *asn);
        out
    }

    /// Total distinct communities observed.
    pub fn community_count(&self) -> usize {
        self.per_community.len()
    }

    /// The counts for one community, if observed.
    pub fn counts(&self, c: Community) -> Option<PathCounts> {
        self.per_community.get(&c).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(vp: u32, path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: Asn::new(vp),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    #[test]
    fn fig5_counting() {
        // The three collector paths of Fig 5. Community 1299:2569 rides
        // routes via 65432 (off-path) and via 7018|1299 (on-path);
        // 1299:35130 is always on-path.
        let observations = vec![
            obs(65541, "65541 3356 1299 64496", &[(1299, 35130)]),
            obs(65432, "65432 64496", &[(1299, 2569)]),
            obs(
                65269,
                "65269 7018 1299 64496",
                &[(1299, 2569), (1299, 35130)],
            ),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let action = stats.counts(Community::new(1299, 2569)).unwrap();
        assert_eq!((action.on, action.off), (1, 1));
        let info = stats.counts(Community::new(1299, 35130)).unwrap();
        assert_eq!((info.on, info.off), (2, 0));
        assert_eq!(stats.unique_paths, 3);
        assert_eq!(stats.unique_tuples, 3);
        assert!(stats.seen_asns.contains(&Asn::new(1299)));
        assert!(!stats.seen_asns.contains(&Asn::new(9999)));
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let observations = vec![
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let counts = stats.counts(Community::new(1299, 1)).unwrap();
        assert_eq!((counts.on, counts.off), (1, 0));
        assert_eq!(stats.unique_tuples, 1);
    }

    #[test]
    fn same_path_different_communities_counts_path_once() {
        let observations = vec![
            obs(65541, "65541 1299 64496", &[(1299, 1)]),
            obs(65541, "65541 1299 64496", &[(1299, 1), (1299, 2)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        // Two distinct tuples, one unique path; 1299:1 on one unique path.
        assert_eq!(stats.unique_tuples, 2);
        assert_eq!(stats.unique_paths, 1);
        assert_eq!(stats.counts(Community::new(1299, 1)).unwrap().on, 1);
    }

    #[test]
    fn sibling_expansion_marks_on_path() {
        // 64500 is a sibling of 1299: a path containing 64500 counts as
        // on-path for 1299's communities.
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64500)]]);
        let observations = vec![obs(65541, "65541 64500 64496", &[(1299, 7)])];
        let with = PathStats::from_observations(&observations, &siblings);
        assert_eq!(with.counts(Community::new(1299, 7)).unwrap().on, 1);
        let without = PathStats::from_observations(&observations, &SiblingMap::default());
        assert_eq!(without.counts(Community::new(1299, 7)).unwrap().off, 1);
    }

    #[test]
    fn ratio_semantics() {
        assert_eq!(PathCounts { on: 320, off: 2 }.ratio(), 160.0);
        assert_eq!(PathCounts { on: 57, off: 0 }.ratio(), 57.0);
        assert_eq!(PathCounts { on: 0, off: 9 }.ratio(), 0.0);
    }

    #[test]
    fn by_owner_groups_and_sorts() {
        let observations = vec![
            obs(1, "1 2 3", &[(200, 9), (100, 5), (100, 1)]),
            obs(1, "1 2 4", &[(100, 5)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        let grouped = stats.by_owner();
        assert_eq!(grouped, vec![(100, vec![1, 5]), (200, vec![9])]);
    }

    #[test]
    fn duplicate_paths_do_not_burn_interned_ids() {
        // Regression: interleaved duplicates of the same path must reuse
        // the first ID so IDs stay dense in 0..unique_paths (the members
        // table is indexed by ID; a burned ID would leave a hole or panic).
        let observations = vec![
            obs(1, "1 1299 64496", &[(1299, 1)]),
            obs(1, "1 1299 64496", &[(1299, 2)]),
            obs(2, "2 64496", &[(1299, 3)]),
            obs(1, "1 1299 64496", &[(1299, 4)]),
            obs(2, "2 64496", &[(1299, 3)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        assert_eq!(stats.unique_paths, 2);
        assert_eq!(stats.unique_tuples, 4);
        // Each community rides exactly one unique path.
        for beta in 1..=4 {
            let c = stats.counts(Community::new(1299, beta)).unwrap();
            assert_eq!(c.on + c.off, 1, "1299:{beta} should sit on one path");
        }
    }

    #[test]
    fn threaded_stats_match_sequential_at_any_thread_count() {
        // A mixed workload: duplicates, shared paths, multiple owners.
        let mut observations = Vec::new();
        for i in 0..40u32 {
            observations.push(obs(
                65000 + (i % 5),
                &format!("{} 1299 {}", 65000 + (i % 5), 64496 + (i % 7)),
                &[(1299, (i % 11) as u16), (3356, (i % 3) as u16)],
            ));
            observations.push(obs(
                65100 + (i % 3),
                &format!("{} 64496", 65100 + (i % 3)),
                &[(1299, (i % 11) as u16)],
            ));
        }
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(1299), Asn::new(64500)]]);
        let sequential = PathStats::from_observations(&observations, &siblings);
        for threads in [1, 2, 3, 8] {
            let parallel = PathStats::from_observations_threaded(&observations, &siblings, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn prepending_does_not_double_count() {
        let observations = vec![
            obs(1, "1 1299 1299 1299 64496", &[(1299, 5)]),
            obs(1, "1 1299 64496", &[(1299, 5)]),
        ];
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        // Two distinct paths (prepending makes them different strings).
        assert_eq!(stats.counts(Community::new(1299, 5)).unwrap().on, 2);
    }
}
