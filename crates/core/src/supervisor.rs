//! Shard-per-process execution: partition archives across worker
//! subprocesses and supervise them to a merged, bit-identical result.
//!
//! At paper scale (≈174M path/community tuples over multi-day archive
//! sets) worker failure is the common case, not the exception: a worker
//! OOMs, a filesystem stalls, a decode bug panics, a node reboots. The
//! supervisor here treats every one of those as a *retryable shard*, not a
//! lost run:
//!
//! * [`plan_shards`] deals the input files round-robin into N shards. The
//!   partition never affects the merged result — per-shard
//!   [`StatsSnapshot`](crate::checkpoint::StatsSnapshot) artifacts hold
//!   content-based fingerprint *sets* whose union is exact and commutative
//!   (see [`crate::checkpoint`]), so merging shards in shard order yields
//!   the same [`PathStats`](crate::stats::PathStats) as one process
//!   reading every file.
//! * [`supervise`] runs one subprocess per shard, watches a per-shard
//!   heartbeat file for progress, and classifies every failure
//!   ([`ShardFailureKind`]): nonzero exit, death by signal, a stall (no
//!   heartbeat progress within the deadline — the worker is killed), a
//!   missing/truncated/corrupt artifact, or a stale artifact that does not
//!   cover the shard's files. Failed attempts are re-run with the bounded
//!   deterministic backoff of [`bgp_mrt::retry::RetryPolicy`] until the
//!   attempt budget runs out.
//! * [`validate_artifact`] is the supervisor's trust boundary: an artifact
//!   only counts if it loads (checksum verified — see
//!   [`Checkpoint::load`]), lists exactly the shard's files in order, and
//!   every listed fingerprint still matches the bytes on disk. Anything
//!   else is a failed attempt, never silently-partial coverage.
//!
//! A shard whose budget is exhausted is reported as permanently failed;
//! the caller decides whether that sinks the run (`--allow-shard-failures`
//! in the CLI) and folds the exact coverage shortfall into the merged
//! [`IngestReport`](bgp_mrt::IngestReport).
//!
//! Pre-existing valid artifacts are *reused* without spawning a worker,
//! which is what makes a partially failed run resumable: re-running the
//! same command redoes only the shards that never produced a valid
//! artifact.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bgp_mrt::retry::RetryPolicy;

use crate::checkpoint::{fingerprint_file, Checkpoint, CheckpointLoadError};

/// One shard of the input: which files it covers and where its worker
/// writes the snapshot artifact and heartbeat.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Shard number, `0..shard_count` (dense — empty shards are dropped).
    pub index: usize,
    /// The input files this shard ingests, in global input order.
    pub files: Vec<String>,
    /// Where the worker must write its [`Checkpoint`] artifact.
    pub artifact: PathBuf,
    /// The heartbeat file the worker touches after every ingested file.
    pub heartbeat: PathBuf,
}

/// Deal `files` round-robin into at most `workers` shards (shard `i` gets
/// files `i`, `i+workers`, …), dropping empty shards. Round-robin keeps
/// shard byte-sizes balanced when archives are similar sizes, and the
/// partition is irrelevant to the merged result (set-union merging), so no
/// cleverer balancing is needed for correctness.
pub fn plan_shards(files: &[String], workers: usize, dir: &Path) -> Vec<ShardSpec> {
    let workers = workers.max(1);
    (0..workers.min(files.len()))
        .map(|i| ShardSpec {
            index: i,
            files: files.iter().skip(i).step_by(workers).cloned().collect(),
            artifact: dir.join(format!("shard-{i:03}.ckpt")),
            heartbeat: dir.join(format!("shard-{i:03}.hb")),
        })
        .collect()
}

/// Why one attempt at a shard failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFailureKind {
    /// The worker process could not be spawned at all.
    Spawn(String),
    /// The worker exited with a nonzero code (its own exit-code contract:
    /// 3 = ingestion aborted, 9 = injected crash, …).
    Exit(i32),
    /// The worker was killed by a signal (OOM killer, external SIGKILL).
    Signal(i32),
    /// The worker made no heartbeat progress within the stall deadline and
    /// was killed by the supervisor.
    Stall,
    /// The worker exited successfully but left no artifact behind.
    MissingArtifact,
    /// The artifact exists but is truncated, bit-flipped, or otherwise
    /// unreadable ([`Checkpoint::load`] rejected it).
    CorruptArtifact(String),
    /// The artifact is well-formed but does not cover this shard's files
    /// (wrong file list, or a recorded fingerprint no longer matches the
    /// bytes on disk).
    StaleArtifact(String),
    /// The run was shut down before this shard produced a valid artifact:
    /// the worker was asked to stop (SIGTERM, then SIGKILL after the
    /// grace period) or was never spawned. Not retried — the shard simply
    /// remains incomplete, resumable by the next run.
    Interrupted,
}

impl fmt::Display for ShardFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardFailureKind::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            ShardFailureKind::Exit(code) => write!(f, "worker exited with code {code}"),
            ShardFailureKind::Signal(sig) => write!(f, "worker killed by signal {sig}"),
            ShardFailureKind::Stall => write!(f, "worker stalled (no heartbeat progress)"),
            ShardFailureKind::MissingArtifact => {
                write!(f, "worker exited cleanly but wrote no artifact")
            }
            ShardFailureKind::CorruptArtifact(e) => write!(f, "corrupt artifact: {e}"),
            ShardFailureKind::StaleArtifact(e) => write!(f, "stale artifact: {e}"),
            ShardFailureKind::Interrupted => {
                write!(f, "run shut down before the shard completed")
            }
        }
    }
}

/// The final outcome of one shard after all attempts.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Which shard.
    pub index: usize,
    /// Worker attempts actually launched (0 when a pre-existing artifact
    /// was reused).
    pub attempts: u32,
    /// One entry per failed attempt, in order.
    pub failures: Vec<ShardFailureKind>,
    /// The validated artifact — `Some` exactly when the shard succeeded.
    pub artifact: Option<Checkpoint>,
    /// Whether the artifact predated this run (no worker was spawned).
    pub reused: bool,
}

impl ShardOutcome {
    /// Whether this shard ended with a validated artifact.
    pub fn succeeded(&self) -> bool {
        self.artifact.is_some()
    }

    /// Retries consumed: failed attempts that were followed by another.
    pub fn retries(&self) -> u64 {
        u64::from(self.attempts.saturating_sub(1))
    }
}

/// Supervision policy: how hard to retry a shard and when a silent worker
/// counts as stalled.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Attempt budget and deterministic inter-attempt backoff. Only
    /// `max_attempts` and the backoff schedule are used; the per-file
    /// deadline does not apply to shards (stalls are caught by
    /// `stall_deadline` instead).
    pub retry: RetryPolicy,
    /// A running worker whose heartbeat has not changed for this long is
    /// asked to stop and the attempt classified [`ShardFailureKind::Stall`].
    pub stall_deadline: Duration,
    /// How often to poll children and heartbeats.
    pub poll_interval: Duration,
    /// How long a worker gets between SIGTERM and SIGKILL when the
    /// supervisor stops it (stall, or a run-level shutdown). Long enough
    /// for a worker to finish its current file and flush an artifact.
    pub term_grace: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(50),
                max_delay: Duration::from_secs(2),
                per_file_deadline: None,
            },
            stall_deadline: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
            term_grace: Duration::from_secs(5),
        }
    }
}

/// Progress notifications from [`supervise`], for logging and tests.
#[derive(Debug)]
pub enum ShardEvent<'a> {
    /// A pre-existing valid artifact was adopted; no worker spawned.
    Reused {
        /// The shard whose artifact was adopted.
        shard: &'a ShardSpec,
    },
    /// A worker attempt launched.
    Started {
        /// The shard being attempted.
        shard: &'a ShardSpec,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// An attempt failed; another follows after `backoff`.
    Retrying {
        /// The shard being retried.
        shard: &'a ShardSpec,
        /// The attempt that just failed.
        attempt: u32,
        /// Why it failed.
        failure: &'a ShardFailureKind,
        /// Deterministic delay before the next attempt.
        backoff: Duration,
    },
    /// The shard produced a validated artifact.
    Succeeded {
        /// The shard that completed.
        shard: &'a ShardSpec,
        /// The attempt that succeeded.
        attempt: u32,
    },
    /// The attempt budget is exhausted; the shard is permanently failed.
    GaveUp {
        /// The shard that failed permanently.
        shard: &'a ShardSpec,
        /// Attempts consumed.
        attempts: u32,
        /// The final attempt's failure.
        failure: &'a ShardFailureKind,
    },
    /// A run-level shutdown stopped this shard before it completed.
    Interrupted {
        /// The shard that was interrupted.
        shard: &'a ShardSpec,
    },
}

/// Validate a shard artifact against its spec: it must load cleanly
/// (payload checksum verified), list exactly the shard's files in order,
/// and every recorded fingerprint must still match the input bytes on
/// disk. Returns the loaded [`Checkpoint`] or the failure classification.
pub fn validate_artifact(spec: &ShardSpec) -> Result<Checkpoint, ShardFailureKind> {
    let cp = Checkpoint::load(&spec.artifact).map_err(|e| match e {
        ref io @ CheckpointLoadError::Io { .. } if io.is_not_found() => {
            ShardFailureKind::MissingArtifact
        }
        other => ShardFailureKind::CorruptArtifact(other.to_string()),
    })?;
    let recorded: Vec<&str> = cp.files.iter().map(|f| f.path.as_str()).collect();
    let expected: Vec<&str> = spec.files.iter().map(String::as_str).collect();
    if recorded != expected {
        return Err(ShardFailureKind::StaleArtifact(format!(
            "covers {} file(s) {:?}, expected {} file(s) {:?}",
            recorded.len(),
            recorded,
            expected.len(),
            expected
        )));
    }
    for done in &cp.files {
        let now = fingerprint_file(Path::new(&done.path)).map_err(|e| {
            ShardFailureKind::StaleArtifact(format!("fingerprint {}: {e}", done.path))
        })?;
        if now != done.fingerprint {
            return Err(ShardFailureKind::StaleArtifact(format!(
                "{} changed since the artifact was written \
                 ({} bytes/hash {:#x} now vs {} bytes/hash {:#x} recorded)",
                done.path, now.bytes, now.hash, done.fingerprint.bytes, done.fingerprint.hash
            )));
        }
    }
    Ok(cp)
}

/// Per-shard supervision state machine.
enum State {
    /// Waiting to (re)spawn at `at`.
    Pending { attempt: u32, at: Instant },
    /// A worker is running.
    Running {
        attempt: u32,
        child: Child,
        heartbeat: Option<Vec<u8>>,
        progressed_at: Instant,
    },
    /// Terminal.
    Done,
}

/// Stop a worker gracefully: SIGTERM, a bounded grace wait so it can
/// finish the current file and flush its artifact, then SIGKILL. Returns
/// the exit status if the child was reaped.
///
/// The TERM is delivered via `kill(1)` — this crate forbids `unsafe`, so
/// no direct `libc::kill` — and falls through to the hard
/// [`Child::kill`] on non-unix platforms or if the grace period expires.
fn terminate_gracefully(
    child: &mut Child,
    grace: Duration,
    poll: Duration,
) -> Option<std::process::ExitStatus> {
    #[cfg(unix)]
    {
        let termed = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if termed {
            let deadline = Instant::now() + grace;
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => return Some(status),
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(poll.min(Duration::from_millis(25)))
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
    #[cfg(not(unix))]
    let _ = (grace, poll);
    let _ = child.kill();
    child.wait().ok()
}

/// Classify a finished worker's exit status.
fn classify_exit(status: std::process::ExitStatus) -> Result<(), ShardFailureKind> {
    if status.success() {
        return Ok(());
    }
    if let Some(code) = status.code() {
        return Err(ShardFailureKind::Exit(code));
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return Err(ShardFailureKind::Signal(sig));
        }
    }
    Err(ShardFailureKind::Exit(-1))
}

/// Run every shard to success or budget exhaustion.
///
/// `command` builds the worker invocation for `(spec, attempt)` — the
/// attempt number is passed so callers can make fault injection
/// first-attempt-only. Workers run concurrently (one process per shard);
/// the supervisor polls children and heartbeat files every
/// `poll_interval`, kills stalled workers, validates artifacts on clean
/// exit, and re-runs failed shards after the deterministic backoff
/// `cfg.retry.backoff(attempt)`. Outcomes are returned in shard order.
pub fn supervise(
    specs: &[ShardSpec],
    cfg: &SupervisorConfig,
    command: impl FnMut(&ShardSpec, u32) -> Command,
    on_event: impl FnMut(ShardEvent<'_>),
) -> Vec<ShardOutcome> {
    supervise_with_shutdown(specs, cfg, command, on_event, &AtomicBool::new(false))
}

/// [`supervise`] with a run-level shutdown flag (set by a SIGTERM/SIGINT
/// handler). When the flag goes high the supervisor stops spawning,
/// forwards SIGTERM to every running worker, waits up to
/// [`SupervisorConfig::term_grace`] for each to flush its artifact, and
/// SIGKILLs stragglers. A worker that exits cleanly with a valid artifact
/// inside the grace window still counts as succeeded; everything else is
/// classified [`ShardFailureKind::Interrupted`] and left resumable.
/// Heartbeat files are removed as shards settle either way — a stopped run
/// leaves artifacts (valid or absent), never stale heartbeats.
pub fn supervise_with_shutdown(
    specs: &[ShardSpec],
    cfg: &SupervisorConfig,
    mut command: impl FnMut(&ShardSpec, u32) -> Command,
    mut on_event: impl FnMut(ShardEvent<'_>),
    shutdown: &AtomicBool,
) -> Vec<ShardOutcome> {
    let mut outcomes: Vec<ShardOutcome> = specs
        .iter()
        .map(|s| ShardOutcome {
            index: s.index,
            attempts: 0,
            failures: Vec::new(),
            artifact: None,
            reused: false,
        })
        .collect();
    let mut states: Vec<State> = Vec::with_capacity(specs.len());

    // Adopt valid pre-existing artifacts (the resume path) before spawning
    // anything; stale or corrupt leftovers are simply overwritten by the
    // first attempt's atomic artifact write.
    for (spec, outcome) in specs.iter().zip(&mut outcomes) {
        match validate_artifact(spec) {
            Ok(cp) => {
                outcome.artifact = Some(cp);
                outcome.reused = true;
                let _ = std::fs::remove_file(&spec.heartbeat);
                on_event(ShardEvent::Reused { shard: spec });
                states.push(State::Done);
            }
            Err(_) => states.push(State::Pending {
                attempt: 1,
                at: Instant::now(),
            }),
        }
    }

    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Run-level shutdown: no new attempts. Stop every running
            // worker gracefully, adopt any artifact flushed during the
            // grace window, and clean heartbeats so nothing stale remains.
            for ((spec, state), outcome) in specs.iter().zip(&mut states).zip(&mut outcomes) {
                match std::mem::replace(state, State::Done) {
                    State::Done => {}
                    State::Pending { .. } => {
                        outcome.failures.push(ShardFailureKind::Interrupted);
                        on_event(ShardEvent::Interrupted { shard: spec });
                    }
                    State::Running {
                        attempt, mut child, ..
                    } => {
                        let result = match terminate_gracefully(
                            &mut child,
                            cfg.term_grace,
                            cfg.poll_interval,
                        ) {
                            Some(status) => {
                                classify_exit(status).and_then(|()| validate_artifact(spec))
                            }
                            None => Err(ShardFailureKind::Interrupted),
                        };
                        match result {
                            Ok(cp) => {
                                outcome.artifact = Some(cp);
                                on_event(ShardEvent::Succeeded {
                                    shard: spec,
                                    attempt,
                                });
                            }
                            Err(_) => {
                                outcome.failures.push(ShardFailureKind::Interrupted);
                                on_event(ShardEvent::Interrupted { shard: spec });
                            }
                        }
                    }
                }
                let _ = std::fs::remove_file(&spec.heartbeat);
            }
            return outcomes;
        }
        let mut all_done = true;
        for ((spec, state), outcome) in specs.iter().zip(&mut states).zip(&mut outcomes) {
            let now = Instant::now();
            // Each arm either installs the next state or leaves `Done`.
            let next: Option<State> = match state {
                State::Done => None,
                State::Pending { attempt, at } => {
                    if now < *at {
                        Some(State::Pending {
                            attempt: *attempt,
                            at: *at,
                        })
                    } else {
                        let attempt = *attempt;
                        outcome.attempts = attempt;
                        // A fresh attempt must never inherit the previous
                        // attempt's heartbeat mtime/content as "progress".
                        let _ = std::fs::remove_file(&spec.heartbeat);
                        on_event(ShardEvent::Started {
                            shard: spec,
                            attempt,
                        });
                        let mut cmd = command(spec, attempt);
                        cmd.stdin(Stdio::null());
                        match cmd.spawn() {
                            Ok(child) => Some(State::Running {
                                attempt,
                                child,
                                heartbeat: None,
                                progressed_at: now,
                            }),
                            Err(e) => Some(fail_attempt(
                                spec,
                                outcome,
                                attempt,
                                ShardFailureKind::Spawn(e.to_string()),
                                cfg,
                                &mut on_event,
                            )),
                        }
                    }
                }
                State::Running {
                    attempt,
                    child,
                    heartbeat,
                    progressed_at,
                } => {
                    let attempt = *attempt;
                    match child.try_wait() {
                        Err(e) => Some(fail_attempt(
                            spec,
                            outcome,
                            attempt,
                            ShardFailureKind::Spawn(format!("wait: {e}")),
                            cfg,
                            &mut on_event,
                        )),
                        Ok(Some(status)) => {
                            let result =
                                classify_exit(status).and_then(|()| validate_artifact(spec));
                            match result {
                                Ok(cp) => {
                                    outcome.artifact = Some(cp);
                                    let _ = std::fs::remove_file(&spec.heartbeat);
                                    on_event(ShardEvent::Succeeded {
                                        shard: spec,
                                        attempt,
                                    });
                                    Some(State::Done)
                                }
                                Err(kind) => Some(fail_attempt(
                                    spec,
                                    outcome,
                                    attempt,
                                    kind,
                                    cfg,
                                    &mut on_event,
                                )),
                            }
                        }
                        Ok(None) => {
                            // Still running: has the heartbeat moved?
                            let current = std::fs::read(&spec.heartbeat).ok();
                            if current.is_some() && current != *heartbeat {
                                *heartbeat = current;
                                *progressed_at = now;
                                None // keep running, state mutated in place
                            } else if now.duration_since(*progressed_at) > cfg.stall_deadline {
                                let _ =
                                    terminate_gracefully(child, cfg.term_grace, cfg.poll_interval);
                                Some(fail_attempt(
                                    spec,
                                    outcome,
                                    attempt,
                                    ShardFailureKind::Stall,
                                    cfg,
                                    &mut on_event,
                                ))
                            } else {
                                None
                            }
                        }
                    }
                }
            };
            if let Some(next) = next {
                *state = next;
            }
            if !matches!(state, State::Done) {
                all_done = false;
            }
        }
        if all_done {
            return outcomes;
        }
        std::thread::sleep(cfg.poll_interval);
    }
}

/// Record a failed attempt and decide the follow-up state: another attempt
/// after the deterministic backoff, or permanent failure once the budget
/// is spent.
fn fail_attempt(
    spec: &ShardSpec,
    outcome: &mut ShardOutcome,
    attempt: u32,
    failure: ShardFailureKind,
    cfg: &SupervisorConfig,
    on_event: &mut impl FnMut(ShardEvent<'_>),
) -> State {
    outcome.failures.push(failure);
    let failure = outcome.failures.last().expect("just pushed");
    if attempt < cfg.retry.max_attempts {
        let backoff = cfg.retry.backoff(attempt);
        on_event(ShardEvent::Retrying {
            shard: spec,
            attempt,
            failure,
            backoff,
        });
        State::Pending {
            attempt: attempt + 1,
            at: Instant::now() + backoff,
        }
    } else {
        let _ = std::fs::remove_file(&spec.heartbeat);
        on_event(ShardEvent::GaveUp {
            shard: spec,
            attempts: attempt,
            failure,
        });
        State::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CompletedFile, StatsAccumulator};
    use bgp_relationships::SiblingMap;
    use bgp_types::{Asn, Community, Observation};
    use std::fs;

    fn workdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bgp-supervisor-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_cfg(max_attempts: u32) -> SupervisorConfig {
        SupervisorConfig {
            retry: RetryPolicy {
                max_attempts,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
                per_file_deadline: None,
            },
            stall_deadline: Duration::from_millis(250),
            poll_interval: Duration::from_millis(5),
            term_grace: Duration::from_millis(600),
        }
    }

    /// A spec over real input files, plus a sealed artifact that validates
    /// against it (written by `write_valid_artifact`).
    fn spec_with_inputs(dir: &Path, index: usize, n_files: usize) -> ShardSpec {
        let files: Vec<String> = (0..n_files)
            .map(|i| {
                let p = dir.join(format!("in-{index}-{i}.mrt"));
                fs::write(&p, format!("payload {index} {i}")).unwrap();
                p.to_string_lossy().into_owned()
            })
            .collect();
        ShardSpec {
            index,
            files,
            artifact: dir.join(format!("shard-{index:03}.ckpt")),
            heartbeat: dir.join(format!("shard-{index:03}.hb")),
        }
    }

    fn write_valid_artifact(spec: &ShardSpec) {
        let mut cp = Checkpoint::new();
        for f in &spec.files {
            cp.files.push(CompletedFile {
                path: f.clone(),
                fingerprint: fingerprint_file(Path::new(f)).unwrap(),
            });
        }
        let mut acc = StatsAccumulator::new();
        acc.ingest(
            &[Observation {
                vp: Asn::new(64500),
                prefix: "10.0.0.0/24".parse().unwrap(),
                path: "64500 1299".parse().unwrap(),
                communities: vec![Community::new(1299, 7)],
                large_communities: Vec::new(),
                time: 0,
            }],
            &SiblingMap::default(),
            1,
        );
        cp.snapshot = acc.snapshot().clone();
        cp.save_atomic(&spec.artifact).unwrap();
    }

    fn sh(script: String) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn round_robin_plan_covers_every_file_once() {
        let files: Vec<String> = (0..7).map(|i| format!("f{i}.mrt")).collect();
        let dir = PathBuf::from("/tmp/shards");
        let plan = plan_shards(&files, 3, &dir);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].files, ["f0.mrt", "f3.mrt", "f6.mrt"]);
        assert_eq!(plan[1].files, ["f1.mrt", "f4.mrt"]);
        assert_eq!(plan[2].files, ["f2.mrt", "f5.mrt"]);
        // More workers than files: no empty shards.
        let plan = plan_shards(&files[..2], 8, &dir);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].files, ["f0.mrt"]);
        assert_eq!(plan[1].files, ["f1.mrt"]);
        // Degenerate worker counts are clamped, not panicked.
        assert_eq!(plan_shards(&files, 0, &dir).len(), 1);
        assert!(plan_shards(&[], 4, &dir).is_empty());
    }

    #[test]
    fn validation_rejects_missing_corrupt_and_stale_artifacts() {
        let dir = workdir("validate");
        let spec = spec_with_inputs(&dir, 0, 2);
        assert!(matches!(
            validate_artifact(&spec),
            Err(ShardFailureKind::MissingArtifact)
        ));

        fs::write(&spec.artifact, b"{ not json").unwrap();
        assert!(matches!(
            validate_artifact(&spec),
            Err(ShardFailureKind::CorruptArtifact(_))
        ));

        // Valid artifact, then truncate it: corrupt again.
        write_valid_artifact(&spec);
        assert!(validate_artifact(&spec).is_ok());
        let bytes = fs::read(&spec.artifact).unwrap();
        fs::write(&spec.artifact, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            validate_artifact(&spec),
            Err(ShardFailureKind::CorruptArtifact(_))
        ));

        // Valid artifact for the wrong file set: stale.
        write_valid_artifact(&spec);
        let mut wrong = spec.clone();
        wrong.files.pop();
        assert!(matches!(
            validate_artifact(&wrong),
            Err(ShardFailureKind::StaleArtifact(_))
        ));

        // Input rewritten after the artifact: fingerprint catches it.
        fs::write(&spec.files[0], b"different bytes").unwrap();
        assert!(matches!(
            validate_artifact(&spec),
            Err(ShardFailureKind::StaleArtifact(_))
        ));
    }

    #[test]
    fn reuses_pre_existing_valid_artifact_without_spawning() {
        let dir = workdir("reuse");
        let spec = spec_with_inputs(&dir, 0, 1);
        write_valid_artifact(&spec);
        let mut spawned = 0;
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(2),
            |_, _| {
                spawned += 1;
                sh("exit 0".into())
            },
            |_| {},
        );
        assert_eq!(spawned, 0, "valid artifact must be adopted, not re-run");
        assert!(outcomes[0].succeeded());
        assert!(outcomes[0].reused);
        assert_eq!(outcomes[0].attempts, 0);
    }

    #[test]
    fn nonzero_exit_is_classified_and_retried_to_success() {
        let dir = workdir("retry-exit");
        let spec = spec_with_inputs(&dir, 0, 1);
        let marker = dir.join("attempt2");
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(3),
            |spec, attempt| {
                if attempt < 3 {
                    sh("exit 7".into())
                } else {
                    // Final attempt "works": produce the artifact.
                    write_valid_artifact(spec);
                    fs::write(&marker, b"x").unwrap();
                    sh("exit 0".into())
                }
            },
            |_| {},
        );
        let o = &outcomes[0];
        assert!(o.succeeded());
        assert_eq!(o.attempts, 3);
        assert_eq!(o.retries(), 2);
        assert_eq!(
            o.failures,
            vec![ShardFailureKind::Exit(7), ShardFailureKind::Exit(7)]
        );
        assert!(!o.reused);
    }

    #[test]
    fn clean_exit_without_artifact_is_a_failure() {
        let dir = workdir("no-artifact");
        let spec = spec_with_inputs(&dir, 0, 1);
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(2),
            |_, _| sh("exit 0".into()),
            |_| {},
        );
        let o = &outcomes[0];
        assert!(!o.succeeded());
        assert_eq!(o.attempts, 2);
        assert!(o
            .failures
            .iter()
            .all(|f| *f == ShardFailureKind::MissingArtifact));
    }

    #[test]
    fn corrupt_artifact_is_a_failure_and_budget_exhaustion_gives_up() {
        let dir = workdir("corrupt-budget");
        let spec = spec_with_inputs(&dir, 0, 1);
        let mut gave_up = false;
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(2),
            |spec, _| sh(format!("echo garbage > {}", spec.artifact.display())),
            |e| {
                if matches!(e, ShardEvent::GaveUp { .. }) {
                    gave_up = true;
                }
            },
        );
        let o = &outcomes[0];
        assert!(!o.succeeded());
        assert_eq!(o.failures.len(), 2);
        assert!(matches!(
            o.failures[0],
            ShardFailureKind::CorruptArtifact(_)
        ));
        assert!(gave_up);
    }

    #[test]
    fn stalled_worker_is_killed_and_retried() {
        let dir = workdir("stall");
        let spec = spec_with_inputs(&dir, 0, 1);
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(2),
            |spec, attempt| {
                if attempt == 1 {
                    // Touch the heartbeat once, then hang far past the
                    // stall deadline without further progress.
                    sh(format!("echo 1 > {}; sleep 30", spec.heartbeat.display()))
                } else {
                    write_valid_artifact(spec);
                    sh("exit 0".into())
                }
            },
            |_| {},
        );
        let o = &outcomes[0];
        assert!(o.succeeded(), "{:?}", o.failures);
        assert_eq!(o.failures, vec![ShardFailureKind::Stall]);
        assert_eq!(o.attempts, 2);
    }

    #[test]
    fn heartbeat_progress_defers_the_stall_deadline() {
        let dir = workdir("heartbeat");
        let spec = spec_with_inputs(&dir, 0, 1);
        // Worker needs ~4 × stall_deadline of wall clock but heartbeats
        // throughout, then succeeds — it must NOT be killed.
        let outcomes = supervise(
            std::slice::from_ref(&spec),
            &quick_cfg(1),
            |spec, _| {
                write_valid_artifact(spec);
                sh(format!(
                    "for i in 1 2 3 4 5 6 7 8 9 10; do echo $i > {}; sleep 0.1; done; exit 0",
                    spec.heartbeat.display()
                ))
            },
            |_| {},
        );
        assert!(outcomes[0].succeeded(), "{:?}", outcomes[0].failures);
        assert!(outcomes[0].failures.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_waits_for_a_trapping_worker_to_flush_its_artifact() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = workdir("shutdown-flush");
        let spec = spec_with_inputs(&dir, 0, 1);
        // Stage a valid artifact next to the real path; the worker only
        // moves it into place from its TERM trap — so the shard can only
        // succeed if the supervisor forwards TERM and waits for the flush.
        write_valid_artifact(&spec);
        let staged = dir.join("staged.ckpt");
        fs::rename(&spec.artifact, &staged).unwrap();

        let shutdown = Arc::new(AtomicBool::new(false));
        let trigger = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            trigger.store(true, Ordering::SeqCst);
        });
        let mut interrupted = false;
        let outcomes = supervise_with_shutdown(
            std::slice::from_ref(&spec),
            &quick_cfg(1),
            |spec, _| {
                sh(format!(
                    "trap 'sleep 0.1; mv {staged} {artifact}; exit 0' TERM; \
                     echo hb > {heartbeat}; sleep 30 & wait $!",
                    staged = staged.display(),
                    artifact = spec.artifact.display(),
                    heartbeat = spec.heartbeat.display(),
                ))
            },
            |e| {
                if matches!(e, ShardEvent::Interrupted { .. }) {
                    interrupted = true;
                }
            },
            &shutdown,
        );
        t.join().unwrap();
        let o = &outcomes[0];
        assert!(o.succeeded(), "{:?}", o.failures);
        assert!(!interrupted, "flushed shard must count as succeeded");
        assert!(
            !spec.heartbeat.exists(),
            "shutdown must not leave stale heartbeats"
        );
        assert!(validate_artifact(&spec).is_ok());
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_interrupts_a_non_trapping_worker_and_cleans_heartbeats() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = workdir("shutdown-interrupt");
        let spec = spec_with_inputs(&dir, 0, 1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let trigger = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            trigger.store(true, Ordering::SeqCst);
        });
        let mut interrupted = false;
        let outcomes = supervise_with_shutdown(
            std::slice::from_ref(&spec),
            &quick_cfg(3),
            |spec, _| sh(format!("echo hb > {}; sleep 30", spec.heartbeat.display())),
            |e| {
                if matches!(e, ShardEvent::Interrupted { .. }) {
                    interrupted = true;
                }
            },
            &shutdown,
        );
        t.join().unwrap();
        let o = &outcomes[0];
        assert!(!o.succeeded());
        assert!(interrupted);
        assert_eq!(o.failures, vec![ShardFailureKind::Interrupted]);
        assert!(
            !spec.artifact.exists(),
            "interrupted shard must leave the artifact absent, not partial"
        );
        assert!(
            !spec.heartbeat.exists(),
            "shutdown must not leave stale heartbeats"
        );
    }

    #[test]
    fn shards_are_supervised_concurrently_and_reported_in_order() {
        let dir = workdir("concurrent");
        let specs: Vec<ShardSpec> = (0..3).map(|i| spec_with_inputs(&dir, i, 1)).collect();
        let started = Instant::now();
        // Workers sleep 300ms without heartbeating; keep the stall
        // deadline comfortably above that so only concurrency is tested.
        let mut cfg = quick_cfg(1);
        cfg.stall_deadline = Duration::from_secs(5);
        let outcomes = supervise(
            &specs,
            &cfg,
            |spec, _| {
                write_valid_artifact(spec);
                sh("sleep 0.3; exit 0".into())
            },
            |_| {},
        );
        // Three 300ms workers in parallel finish far sooner than 900ms.
        assert!(
            started.elapsed() < Duration::from_millis(800),
            "workers must run concurrently ({:?})",
            started.elapsed()
        );
        assert!(outcomes.iter().all(|o| o.succeeded()));
        assert_eq!(
            outcomes.iter().map(|o| o.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
