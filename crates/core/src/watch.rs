//! Streaming inference — the engine behind `bgpcomm watch`.
//!
//! A long-running daemon folds a continuous BGP update stream into rolling
//! [`PathStats`] over sliding time windows and reclassifies *only* the
//! owner ASes a window advance actually touched, surfacing label changes
//! ("flaps") as first-class metrics. The pieces:
//!
//! * [`WindowedClassifier`] — a ring of per-bucket [`StatsAccumulator`]s
//!   keyed by `observation.time / window_secs`, plus the current label map.
//!   Each advance merges the retained buckets into windowed stats, diffs
//!   them against the stats of the previous reclassification, and re-runs
//!   the classifier for dirty owners only. Late observations to evicted
//!   buckets are dropped and counted, never folded twice.
//! * [`WatchCheckpoint`] — atomic (temp + fsync + rename), checksummed
//!   manifest holding the stream cursor, the cumulative accumulator, every
//!   retained bucket, the label map, and the flap counters. Restoring it
//!   reproduces the daemon's exact state at the recorded cursor, so a
//!   resumed run counts the same flaps an uninterrupted one would.
//! * [`run_watch`] — the daemon loop: a [`StreamDecoder`] over a
//!   [`ResumingStream`] (bounded queue, backpressure, reconnect, stall
//!   detection), advance-before-fold window maintenance, checkpoint
//!   cadence in window advances, and a graceful-shutdown path that flushes
//!   a valid checkpoint before reporting.
//!
//! # Why the cumulative accumulator is the recovery substrate
//!
//! The per-bucket ring drives *windowed* classification; crash recovery
//! and batch parity ride on the *cumulative* [`StatsAccumulator`], whose
//! content-based set union is idempotent per element. A kill -9 between
//! checkpoints loses nothing but the cursor distance: the resumed run
//! re-requests the stream from the last checkpoint's cursor and re-folds
//! the re-delivered records, and every fingerprint that was already in a
//! set stays counted exactly once. At a quiescent point the cumulative
//! stats (and the labels classified from them) are therefore identical to
//! a batch run over the same delivered bytes — the invariant the streaming
//! CI job pins with `cmp`.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bgp_mrt::stream::{ResumingStream, StreamCounters, StreamSource, StreamTuning};
use bgp_mrt::{IngestReport, RecoverConfig, StreamDecoder};
use bgp_relationships::SiblingMap;
use bgp_types::fx::{FxHashMap, FxHashSet};
use bgp_types::obs::MetricsRegistry;
use bgp_types::{Asn, Community, Intent, Observation};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{fnv1a, CheckpointLoadError, StatsAccumulator, StatsSnapshot, FNV_OFFSET};
use crate::classify::{classify, classify_owner, Exclusion, Inference, InferenceConfig};
use crate::stats::{PathCounts, PathStats};

/// Version stamp inside every watch checkpoint; bump on layout changes so
/// a resume against an incompatible manifest refuses instead of
/// misreading.
pub const WATCH_CHECKPOINT_SCHEMA: u32 = 1;

/// Sliding-window geometry: bucket width in stream seconds and how many
/// buckets the window retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Bucket width: observations land in bucket `time / window_secs`.
    pub window_secs: u32,
    /// Retained buckets. The windowed statistics at any moment cover the
    /// newest `windows` buckets; older buckets are evicted on advance.
    pub windows: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_secs: 3600,
            windows: 24,
        }
    }
}

impl WindowConfig {
    /// The bucket index an observation timestamp falls in.
    fn bucket_of(&self, time: u32) -> u64 {
        u64::from(time) / u64::from(self.window_secs.max(1))
    }
}

/// Pack a community into the `u32` the checkpoint serializes (`asn` in the
/// high half, `value` in the low half — sortable by owner).
fn pack(c: Community) -> u32 {
    (u32::from(c.asn) << 16) | u32::from(c.value)
}

fn unpack(p: u32) -> Community {
    Community::new((p >> 16) as u16, p as u16)
}

/// Rolling windowed classification with incremental reclassify and flap
/// accounting.
///
/// Invariant maintained across [`observe`](Self::observe) /
/// [`reclassify`](Self::reclassify): the label and exclusion maps equal a
/// full [`classify`] over the windowed statistics *as of the last
/// reclassification* — the incremental dirty-owner pass is an
/// optimization, never an approximation (pinned by tests).
#[derive(Debug)]
pub struct WindowedClassifier {
    window: WindowConfig,
    cfg: InferenceConfig,
    /// Retained buckets, ascending by index. Sparse: only buckets that
    /// received at least one observation (plus the head) exist.
    buckets: VecDeque<(u64, StatsAccumulator)>,
    /// Windowed stats at the last reclassification — the diff base for
    /// dirty-owner detection.
    prev: PathStats,
    /// Current label per community, equal to `classify(prev)`'s labels.
    labels: FxHashMap<Community, Intent>,
    /// Current exclusions, equal to `classify(prev)`'s exclusions.
    excluded: FxHashMap<Community, Exclusion>,
    /// Communities currently holding a label or exclusion, per owner —
    /// the removal index for incremental reclassification.
    owner_communities: FxHashMap<u16, Vec<Community>>,
    flaps: u64,
    advances: u64,
    late_drops: u64,
    reclassified_owners: u64,
}

impl WindowedClassifier {
    /// An empty classifier.
    pub fn new(window: WindowConfig, cfg: InferenceConfig) -> Self {
        WindowedClassifier {
            window,
            cfg,
            buckets: VecDeque::new(),
            prev: PathStats::default(),
            labels: FxHashMap::default(),
            excluded: FxHashMap::default(),
            owner_communities: FxHashMap::default(),
            flaps: 0,
            advances: 0,
            late_drops: 0,
            reclassified_owners: 0,
        }
    }

    /// The window geometry.
    pub fn window(&self) -> WindowConfig {
        self.window
    }

    /// Current label per community (as of the last reclassification).
    pub fn labels(&self) -> &FxHashMap<Community, Intent> {
        &self.labels
    }

    /// Current exclusions (as of the last reclassification).
    pub fn excluded(&self) -> &FxHashMap<Community, Exclusion> {
        &self.excluded
    }

    /// Total label flips observed across all reclassifications: a flap is
    /// a community *labeled in both rounds* whose [`Intent`] changed.
    /// Appearing, disappearing, or moving to/from exclusion is churn, not
    /// a flap.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Window advances so far.
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Observations dropped because their bucket was already evicted.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Owner ASes re-run through the classifier across all
    /// reclassifications (the incremental work metric; a full pass each
    /// advance would count every owner every time).
    pub fn reclassified_owners(&self) -> u64 {
        self.reclassified_owners
    }

    /// Retained bucket count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The windowed statistics right now: the union of every retained
    /// bucket (including folds since the last reclassification).
    pub fn windowed_stats(&self) -> PathStats {
        let mut acc = StatsAccumulator::new();
        for (_, bucket) in &self.buckets {
            acc.merge(bucket.clone());
        }
        acc.to_stats()
    }

    /// Fold one observation. If it opens a newer bucket than the current
    /// head, the window advances first — evict expired buckets, reclassify
    /// dirty owners — and *then* the observation folds into the new head
    /// (advance-before-fold). Returns `true` when an advance (and thus a
    /// reclassification) happened, so the daemon can apply its checkpoint
    /// cadence.
    pub fn observe(&mut self, obs: &Observation, siblings: &SiblingMap) -> bool {
        let bucket = self.window.bucket_of(obs.time);
        let head = match self.buckets.back() {
            Some(&(head, _)) => head,
            None => {
                // First observation seeds the head bucket; nothing to
                // reclassify yet.
                self.buckets.push_back((bucket, StatsAccumulator::new()));
                self.fold_into(self.buckets.len() - 1, obs, siblings);
                return false;
            }
        };
        if bucket > head {
            self.advance_to(bucket, siblings);
            let last = self.buckets.len() - 1;
            self.fold_into(last, obs, siblings);
            return true;
        }
        // In-window: the head bucket or a late (but retained) one.
        let floor = (head + 1).saturating_sub(self.window.windows as u64);
        if bucket < floor {
            self.late_drops += 1;
            return false;
        }
        match self.buckets.binary_search_by_key(&bucket, |&(i, _)| i) {
            Ok(at) => self.fold_into(at, obs, siblings),
            Err(at) => {
                self.buckets.insert(at, (bucket, StatsAccumulator::new()));
                self.fold_into(at, obs, siblings);
            }
        }
        false
    }

    fn fold_into(&mut self, at: usize, obs: &Observation, siblings: &SiblingMap) {
        self.buckets[at]
            .1
            .ingest_ordered(std::slice::from_ref(obs), siblings);
    }

    /// Advance the head to `new_head`: evict buckets that fall out of the
    /// retention window, open the new head, reclassify.
    fn advance_to(&mut self, new_head: u64, siblings: &SiblingMap) {
        self.buckets.push_back((new_head, StatsAccumulator::new()));
        let floor = (new_head + 1).saturating_sub(self.window.windows as u64);
        while matches!(self.buckets.front(), Some(&(i, _)) if i < floor) {
            self.buckets.pop_front();
        }
        self.advances += 1;
        self.reclassify(siblings);
    }

    /// Recompute labels against the current windowed statistics,
    /// re-running the classifier only for owners whose inputs changed
    /// since the last reclassification, and fold label flips into the flap
    /// counter. Returns the flaps counted this round.
    ///
    /// An owner's classification depends on exactly two inputs: the path
    /// counts of its own communities, and whether its sibling family
    /// intersects the windowed `seen_asns` (the never-on-path exclusion).
    /// The dirty set is the union of owners touched through either — so
    /// skipping the rest is exact, not heuristic.
    pub fn reclassify(&mut self, siblings: &SiblingMap) -> u64 {
        let new = self.windowed_stats();

        let mut dirty: Vec<u16> = Vec::new();
        for (c, counts) in &new.per_community {
            if self.prev.per_community.get(c) != Some(counts) {
                dirty.push(c.asn);
            }
        }
        for c in self.prev.per_community.keys() {
            if !new.per_community.contains_key(c) {
                dirty.push(c.asn);
            }
        }
        let mut changed_asns: FxHashSet<Asn> = FxHashSet::default();
        for a in &new.seen_asns {
            if !self.prev.seen_asns.contains(a) {
                changed_asns.insert(*a);
            }
        }
        for a in &self.prev.seen_asns {
            if !new.seen_asns.contains(a) {
                changed_asns.insert(*a);
            }
        }
        if !changed_asns.is_empty() {
            let owners: FxHashSet<u16> = new
                .per_community
                .keys()
                .chain(self.prev.per_community.keys())
                .map(|c| c.asn)
                .collect();
            for &asn in &owners {
                let owner = Asn::new(u32::from(asn));
                let hit = if self.cfg.use_siblings {
                    siblings
                        .expand_ref(&owner)
                        .iter()
                        .any(|a| changed_asns.contains(a))
                } else {
                    changed_asns.contains(&owner)
                };
                if hit {
                    dirty.push(asn);
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        let by_owner = new.by_owner();
        let mut flaps_now = 0u64;
        let mut scratch = Inference::default();
        for &asn in &dirty {
            scratch.labels.clear();
            scratch.excluded.clear();
            scratch.clusters.clear();
            if let Ok(i) = by_owner.binary_search_by_key(&asn, |(a, _)| *a) {
                classify_owner(&new, siblings, &self.cfg, asn, &by_owner[i].1, &mut scratch);
            }
            for c in self.owner_communities.remove(&asn).unwrap_or_default() {
                let was = self.labels.remove(&c);
                self.excluded.remove(&c);
                if let (Some(old), Some(&now)) = (was, scratch.labels.get(&c)) {
                    if old != now {
                        flaps_now += 1;
                    }
                }
            }
            if !scratch.labels.is_empty() || !scratch.excluded.is_empty() {
                let mut comms: Vec<Community> = scratch
                    .labels
                    .keys()
                    .chain(scratch.excluded.keys())
                    .copied()
                    .collect();
                comms.sort_unstable();
                comms.dedup();
                self.owner_communities.insert(asn, comms);
            }
            for (c, i) in scratch.labels.drain() {
                self.labels.insert(c, i);
            }
            for (c, e) in scratch.excluded.drain() {
                self.excluded.insert(c, e);
            }
            self.reclassified_owners += 1;
        }
        self.flaps += flaps_now;
        self.prev = new;
        flaps_now
    }

    /// Rebuild from a checkpoint — the exact state at the recorded cursor,
    /// including the diff base, so the resumed run counts the same flaps
    /// an uninterrupted one would.
    pub fn from_checkpoint(cp: &WatchCheckpoint, cfg: InferenceConfig) -> Self {
        let mut labels: FxHashMap<Community, Intent> = FxHashMap::default();
        for &(p, intent) in &cp.labels {
            labels.insert(unpack(p), intent);
        }
        let mut excluded: FxHashMap<Community, Exclusion> = FxHashMap::default();
        for &(p, reason) in &cp.excluded {
            excluded.insert(unpack(p), reason);
        }
        let mut owner_communities: FxHashMap<u16, Vec<Community>> = FxHashMap::default();
        let mut comms: Vec<Community> = labels.keys().chain(excluded.keys()).copied().collect();
        comms.sort_unstable();
        comms.dedup();
        for c in comms {
            owner_communities.entry(c.asn).or_default().push(c);
        }
        WindowedClassifier {
            window: WindowConfig {
                window_secs: cp.window_secs,
                windows: cp.windows,
            },
            cfg,
            buckets: cp
                .buckets
                .iter()
                .map(|b| (b.index, StatsAccumulator::from_snapshot(&b.stats)))
                .collect(),
            prev: cp.windowed.to_stats(),
            labels,
            excluded,
            owner_communities,
            flaps: cp.flaps,
            advances: cp.advances,
            late_drops: cp.late_drops,
            reclassified_owners: cp.reclassified_owners,
        }
    }
}

/// One retained bucket inside a [`WatchCheckpoint`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchBucket {
    /// The bucket index (`time / window_secs`).
    pub index: u64,
    /// The bucket's accumulated statistics.
    pub stats: StatsSnapshot,
}

/// Serialized diff base: the windowed [`PathStats`] at the last
/// reclassification, stored exactly so a resumed run's next dirty-owner
/// diff — and therefore its flap count — matches the uninterrupted run.
/// (It is *not* derivable from the buckets: folds into the head bucket
/// after the reclassification are part of the buckets but not of the diff
/// base.)
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WindowedStatsSnapshot {
    /// `(packed community, on, off)` sorted by packed key.
    pub counts: Vec<(u32, u32, u32)>,
    /// ASN values on any windowed path, sorted.
    pub seen_asns: Vec<u32>,
    /// Unique `(path, communities)` tuples in the window.
    pub unique_tuples: u64,
    /// Unique AS paths in the window.
    pub unique_paths: u64,
}

impl WindowedStatsSnapshot {
    fn from_stats(stats: &PathStats) -> Self {
        let mut counts: Vec<(u32, u32, u32)> = stats
            .per_community
            .iter()
            .map(|(&c, pc)| (pack(c), pc.on, pc.off))
            .collect();
        counts.sort_unstable_by_key(|&(p, _, _)| p);
        let mut seen_asns: Vec<u32> = stats.seen_asns.iter().map(|a| a.value()).collect();
        seen_asns.sort_unstable();
        WindowedStatsSnapshot {
            counts,
            seen_asns,
            unique_tuples: stats.unique_tuples as u64,
            unique_paths: stats.unique_paths as u64,
        }
    }

    fn to_stats(&self) -> PathStats {
        let mut per_community: FxHashMap<Community, PathCounts> = FxHashMap::default();
        for &(p, on, off) in &self.counts {
            per_community.insert(unpack(p), PathCounts { on, off });
        }
        PathStats {
            per_community,
            seen_asns: self.seen_asns.iter().map(|&a| Asn::new(a)).collect(),
            unique_tuples: self.unique_tuples as usize,
            unique_paths: self.unique_paths as usize,
        }
    }
}

/// The streaming daemon's crash-recovery manifest: everything needed to
/// resume at `cursor` with bit-identical downstream behavior. Written
/// atomically ([`save_atomic`](Self::save_atomic)) and checksummed, like
/// the batch [`Checkpoint`](crate::checkpoint::Checkpoint).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchCheckpoint {
    /// Layout version ([`WATCH_CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// FNV-1a 64 over the serialized payload with this field zeroed.
    pub checksum: u64,
    /// Resume position in the delivered byte stream (frame-aligned: every
    /// byte before it has been decoded or resynced past and folded).
    pub cursor: u64,
    /// MRT records decoded so far.
    pub records: u64,
    /// Observations folded so far.
    pub observations: u64,
    /// Window advances so far.
    pub advances: u64,
    /// Label flips counted so far.
    pub flaps: u64,
    /// Late observations dropped so far.
    pub late_drops: u64,
    /// Owners re-run through the classifier so far.
    pub reclassified_owners: u64,
    /// Bucket width the run was started with (resume refuses a mismatch).
    pub window_secs: u32,
    /// Retained bucket count the run was started with.
    pub windows: usize,
    /// The cumulative accumulator (batch-parity substrate).
    pub cumulative: StatsSnapshot,
    /// Every retained window bucket, ascending by index.
    pub buckets: Vec<WatchBucket>,
    /// The dirty-owner diff base (see [`WindowedStatsSnapshot`]).
    pub windowed: WindowedStatsSnapshot,
    /// Current labels as `(packed community, intent)`, sorted by key.
    pub labels: Vec<(u32, Intent)>,
    /// Current exclusions as `(packed community, reason)`, sorted by key.
    pub excluded: Vec<(u32, Exclusion)>,
}

impl WatchCheckpoint {
    /// Capture the daemon's state. Flushes snapshot deltas in the
    /// cumulative accumulator and every bucket (`&mut`), which is what
    /// keeps the cost per checkpoint proportional to *new* elements.
    pub fn capture(
        classifier: &mut WindowedClassifier,
        cumulative: &mut StatsAccumulator,
        cursor: u64,
        records: u64,
        observations: u64,
    ) -> WatchCheckpoint {
        let mut labels: Vec<(u32, Intent)> = classifier
            .labels
            .iter()
            .map(|(&c, &i)| (pack(c), i))
            .collect();
        labels.sort_unstable_by_key(|&(p, _)| p);
        let mut excluded: Vec<(u32, Exclusion)> = classifier
            .excluded
            .iter()
            .map(|(&c, &e)| (pack(c), e))
            .collect();
        excluded.sort_unstable_by_key(|&(p, _)| p);
        let buckets = classifier
            .buckets
            .iter_mut()
            .map(|(index, acc)| WatchBucket {
                index: *index,
                stats: acc.snapshot().clone(),
            })
            .collect();
        WatchCheckpoint {
            schema: WATCH_CHECKPOINT_SCHEMA,
            checksum: 0,
            cursor,
            records,
            observations,
            advances: classifier.advances,
            flaps: classifier.flaps,
            late_drops: classifier.late_drops,
            reclassified_owners: classifier.reclassified_owners,
            window_secs: classifier.window.window_secs,
            windows: classifier.window.windows,
            cumulative: cumulative.snapshot().clone(),
            buckets,
            windowed: WindowedStatsSnapshot::from_stats(&classifier.prev),
            labels,
            excluded,
        }
    }

    /// The checksum of everything but the checksum field itself.
    pub fn payload_checksum(&self) -> u64 {
        let mut unsealed = self.clone();
        unsealed.checksum = 0;
        let json = serde_json::to_string(&unsealed).expect("checkpoint serialization cannot fail");
        fnv1a(FNV_OFFSET, json.as_bytes())
    }

    /// Write atomically: seal the checksum, serialize to `<path>.tmp`,
    /// fsync, rename. A crash at any point leaves the previous checkpoint
    /// or this one — never a torn file.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        use std::io::Write;
        let mut sealed = self.clone();
        sealed.checksum = sealed.payload_checksum();
        let json = serde_json::to_string(&sealed)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "watch-checkpoint".to_string())
        ));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load and validate: parse, check the schema, verify the checksum.
    /// Truncation and bit flips are rejected with a typed error, never a
    /// panic or partial state.
    pub fn load(path: &Path) -> Result<WatchCheckpoint, CheckpointLoadError> {
        let raw = std::fs::read_to_string(path).map_err(|source| CheckpointLoadError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let cp: WatchCheckpoint =
            serde_json::from_str(&raw).map_err(|e| CheckpointLoadError::Corrupt {
                path: path.to_path_buf(),
                detail: e.to_string(),
            })?;
        if cp.schema != WATCH_CHECKPOINT_SCHEMA {
            return Err(CheckpointLoadError::SchemaMismatch {
                path: path.to_path_buf(),
                found: cp.schema,
                expected: WATCH_CHECKPOINT_SCHEMA,
            });
        }
        let expected = cp.payload_checksum();
        if cp.checksum != expected {
            return Err(CheckpointLoadError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "payload checksum {:#018x} recorded, {expected:#018x} computed",
                    cp.checksum
                ),
            });
        }
        Ok(cp)
    }
}

/// Everything [`run_watch`] needs beyond the source and sibling map.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Sliding-window geometry.
    pub window: WindowConfig,
    /// Classifier parameters.
    pub infer: InferenceConfig,
    /// Delivery-layer tuning (queue cap, stall timeout, retry, quiesce).
    pub tuning: StreamTuning,
    /// Decode resilience policy (error budget, resync bounds).
    pub recover: RecoverConfig,
    /// Checkpoint manifest path; `None` disables checkpointing (and
    /// resume).
    pub checkpoint: Option<PathBuf>,
    /// Window advances between checkpoints (minimum 1).
    pub checkpoint_every: u64,
    /// Metrics registry to record `watch/*`, `classify/*`, `stream/*`, and
    /// `ingest/*` series into.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Test injection: sleep this long after each record, making the
    /// consumer slow enough to exercise backpressure deterministically.
    pub slow_fold: Option<Duration>,
    /// Test injection: simulate a SIGKILL (`process::exit(9)`, no
    /// checkpoint flush, no cleanup) at the first record boundary after
    /// this many total window advances.
    pub crash_after_windows: Option<u64>,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            window: WindowConfig::default(),
            infer: InferenceConfig::default(),
            tuning: StreamTuning::default(),
            recover: RecoverConfig::default(),
            checkpoint: None,
            checkpoint_every: 1,
            metrics: None,
            slow_fold: None,
            crash_after_windows: None,
        }
    }
}

/// What a watch run produced (at shutdown or the quiescent point).
#[derive(Debug)]
pub struct WatchOutcome {
    /// Whether the run resumed from an existing checkpoint.
    pub resumed: bool,
    /// MRT records decoded (including any re-delivered after resume).
    pub records: u64,
    /// Observations folded.
    pub observations: u64,
    /// Window advances.
    pub advances: u64,
    /// Label flips counted.
    pub flaps: u64,
    /// Late observations dropped.
    pub late_drops: u64,
    /// Owners re-run through the incremental classifier.
    pub reclassified_owners: u64,
    /// Final stream cursor (bytes delivered and folded).
    pub cursor: u64,
    /// Windowed labels at the end of the run.
    pub windowed_labels: FxHashMap<Community, Intent>,
    /// Cumulative statistics over everything delivered.
    pub stats: PathStats,
    /// Full classification of the cumulative statistics — the object the
    /// batch-parity check compares against a batch run.
    pub inference: Inference,
    /// Decode accounting.
    pub report: IngestReport,
    /// Delivery-layer counters (reconnects, stalls, backpressure, queue
    /// peak).
    pub counters: Arc<StreamCounters>,
}

/// Record the run's series into `metrics` (end-of-run totals, matching the
/// batch pipeline's convention).
fn record_watch_metrics(
    metrics: &MetricsRegistry,
    outcome_counters: &StreamCounters,
    classifier: &WindowedClassifier,
    records: u64,
    observations: u64,
    report: &IngestReport,
) {
    metrics.counter("watch/records").add(records);
    metrics.counter("watch/observations").add(observations);
    metrics
        .counter("watch/windows_advanced")
        .add(classifier.advances());
    metrics
        .counter("watch/late_drops")
        .add(classifier.late_drops());
    metrics.counter("classify/flaps").add(classifier.flaps());
    metrics
        .counter("classify/reclassified_owners")
        .add(classifier.reclassified_owners());
    let c = outcome_counters;
    metrics
        .counter("ingest/backpressure_stalls")
        .add(c.backpressure_stalls.load(Ordering::SeqCst));
    metrics
        .counter("stream/connections")
        .add(c.connections.load(Ordering::SeqCst));
    metrics
        .counter("stream/reconnects")
        .add(c.reconnects.load(Ordering::SeqCst));
    metrics
        .counter("stream/stalls")
        .add(c.stalls.load(Ordering::SeqCst));
    metrics
        .counter("stream/disconnects")
        .add(c.disconnects.load(Ordering::SeqCst));
    metrics
        .counter("stream/delivered_bytes")
        .add(c.delivered_bytes.load(Ordering::SeqCst));
    metrics
        .gauge("stream/queue_peak_bytes")
        .set(i64::try_from(c.queue_peak_bytes.load(Ordering::SeqCst)).unwrap_or(i64::MAX));
    report.record_metrics(metrics);
}

/// Run the streaming daemon over `source` until shutdown, the quiescent
/// point ([`StreamTuning::quiesce_after`]), or a terminal delivery error
/// (reconnect budget exhausted).
///
/// The loop per decoded record: fold each observation into the windowed
/// classifier (advance-before-fold) and the cumulative accumulator; at
/// record boundaries, honor the crash injection and the checkpoint cadence
/// (checkpoints are only ever written at record boundaries so the cursor
/// is consistent with exactly the folds performed). On exit a final
/// reclassification brings labels up to date with the head bucket, a final
/// checkpoint is flushed, and metrics are recorded — the same path for
/// graceful shutdown and quiesce.
pub fn run_watch<S: StreamSource>(
    source: S,
    siblings: &SiblingMap,
    opts: &WatchOptions,
    shutdown: Arc<AtomicBool>,
) -> io::Result<WatchOutcome> {
    let mut resumed = false;
    let (mut classifier, mut cumulative, cursor_base, base_records, mut observations) = match opts
        .checkpoint
        .as_deref()
    {
        Some(path) if path.exists() => {
            let cp = WatchCheckpoint::load(path).map_err(io::Error::from)?;
            if cp.window_secs != opts.window.window_secs || cp.windows != opts.window.windows {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "checkpoint window geometry {}s x {} does not match requested {}s x {}",
                        cp.window_secs, cp.windows, opts.window.window_secs, opts.window.windows
                    ),
                ));
            }
            resumed = true;
            (
                WindowedClassifier::from_checkpoint(&cp, opts.infer.clone()),
                StatsAccumulator::from_snapshot(&cp.cumulative),
                cp.cursor,
                cp.records,
                cp.observations,
            )
        }
        _ => (
            WindowedClassifier::new(opts.window, opts.infer.clone()),
            StatsAccumulator::new(),
            0,
            0,
            0,
        ),
    };

    let counters = Arc::new(StreamCounters::default());
    let stream = ResumingStream::new(
        source,
        opts.tuning.clone(),
        cursor_base,
        shutdown,
        counters.clone(),
    );
    let mut decoder = StreamDecoder::new(stream, opts.recover.clone());

    let checkpoint_every = opts.checkpoint_every.max(1);
    let mut last_checkpoint_advance = classifier.advances();
    let mut batch: Vec<Observation> = Vec::new();
    loop {
        batch.clear();
        if decoder.next_record(&mut batch).is_none() {
            break;
        }
        let mut advanced = false;
        for obs in &batch {
            advanced |= classifier.observe(obs, siblings);
        }
        if !batch.is_empty() {
            cumulative.ingest_ordered(&batch, siblings);
            observations += batch.len() as u64;
        }
        if let Some(pause) = opts.slow_fold {
            std::thread::sleep(pause);
        }
        if advanced {
            if let Some(after) = opts.crash_after_windows {
                if classifier.advances() >= after {
                    // Simulated SIGKILL for crash-recovery tests: no
                    // checkpoint flush, no teardown, exit code 9 (mirrors
                    // 128+SIGKILL conventions without raising a signal).
                    std::process::exit(9);
                }
            }
            if let Some(path) = opts.checkpoint.as_deref() {
                if classifier.advances() - last_checkpoint_advance >= checkpoint_every {
                    let cursor = cursor_base + decoder.consumed_bytes();
                    let records = base_records + decoder.records_decoded();
                    WatchCheckpoint::capture(
                        &mut classifier,
                        &mut cumulative,
                        cursor,
                        records,
                        observations,
                    )
                    .save_atomic(path)?;
                    last_checkpoint_advance = classifier.advances();
                }
            }
        }
    }

    let report = decoder.report();
    if let Some(reason) = &report.aborted {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            reason.clone(),
        ));
    }

    // Quiescent (or shutting down): bring labels up to date with the head
    // bucket's folds, then flush a final checkpoint so a restart resumes
    // from here instead of re-delivering the tail.
    classifier.reclassify(siblings);
    let cursor = cursor_base + decoder.consumed_bytes();
    let records = base_records + decoder.records_decoded();
    if let Some(path) = opts.checkpoint.as_deref() {
        WatchCheckpoint::capture(
            &mut classifier,
            &mut cumulative,
            cursor,
            records,
            observations,
        )
        .save_atomic(path)?;
    }

    let stats = cumulative.to_stats();
    let inference = classify(&stats, siblings, &opts.infer);
    if let Some(metrics) = opts.metrics.as_deref() {
        record_watch_metrics(
            metrics,
            &counters,
            &classifier,
            records,
            observations,
            &report,
        );
    }
    Ok(WatchOutcome {
        resumed,
        records,
        observations,
        advances: classifier.advances(),
        flaps: classifier.flaps(),
        late_drops: classifier.late_drops(),
        reclassified_owners: classifier.reclassified_owners(),
        cursor,
        windowed_labels: classifier.labels().clone(),
        stats,
        inference,
        report,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_mrt::stream::MemoryFeed;
    use bgp_types::Asn;

    fn obs(vp: u32, path: &str, comms: &[(u16, u16)], time: u32) -> Observation {
        Observation {
            vp: Asn::new(vp),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time,
        }
    }

    /// A churn workload: owner 100's community 100:10 alternates between
    /// information-looking windows (only on-path sightings) and
    /// action-looking windows (off-path sightings appear); owner 200 stays
    /// stable; owner 300 appears and disappears. Window width 100s.
    fn churn_stream() -> Vec<Observation> {
        let mut all = Vec::new();
        for w in 0u32..8 {
            let t = w * 100 + 5;
            // Keep owners on some path every window so exclusion stays off.
            all.push(obs(900, "900 100 999", &[], t));
            all.push(obs(900, "900 200 999", &[], t));
            if w % 2 == 0 {
                // Information-looking: 100:10 only on paths through 100.
                all.push(obs(
                    901,
                    &format!("901 100 {}", 600 + w),
                    &[(100, 10)],
                    t + 1,
                ));
                all.push(obs(
                    902,
                    &format!("902 100 {}", 700 + w),
                    &[(100, 10)],
                    t + 2,
                ));
            } else {
                // Action-looking: 100:10 rides paths avoiding 100 too.
                all.push(obs(903, &format!("903 {}", 800 + w), &[(100, 10)], t + 1));
                all.push(obs(
                    901,
                    &format!("901 100 {}", 600 + w),
                    &[(100, 10)],
                    t + 2,
                ));
            }
            // Stable information community.
            all.push(obs(904, "904 200 650", &[(200, 30)], t + 3));
            if w % 3 == 0 {
                all.push(obs(905, "905 300 660", &[(300, 40)], t + 4));
            }
        }
        all
    }

    fn window_cfg() -> WindowConfig {
        WindowConfig {
            window_secs: 100,
            windows: 2,
        }
    }

    #[test]
    fn incremental_reclassify_matches_full_classify() {
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig {
            threads: 1,
            ..InferenceConfig::default()
        };
        let mut wc = WindowedClassifier::new(window_cfg(), cfg.clone());
        for (i, o) in churn_stream().iter().enumerate() {
            wc.observe(o, &siblings);
            // Pin the invariant at several mid-stream points, not only at
            // the end: after a manual reclassify the incremental maps must
            // equal a full classify over the windowed statistics.
            if i % 5 == 4 {
                wc.reclassify(&siblings);
                let full = classify(&wc.windowed_stats(), &siblings, &cfg);
                assert_eq!(wc.labels(), &full.labels, "labels diverged at obs {i}");
                assert_eq!(
                    wc.excluded(),
                    &full.excluded,
                    "exclusions diverged at obs {i}"
                );
            }
        }
        wc.reclassify(&siblings);
        let full = classify(&wc.windowed_stats(), &siblings, &cfg);
        assert_eq!(wc.labels(), &full.labels);
        assert_eq!(wc.excluded(), &full.excluded);
        assert!(wc.advances() >= 7, "windows advanced: {}", wc.advances());
        assert!(wc.flaps() > 0, "churn scenario must flap");
        // Incrementality is real: strictly fewer owner runs than a full
        // pass every advance would cost (3+ owners x 7+ advances).
        assert!(
            wc.reclassified_owners() < 3 * wc.advances(),
            "reclassified {} owners over {} advances — not incremental",
            wc.reclassified_owners(),
            wc.advances()
        );
    }

    #[test]
    fn flaps_deterministic_across_thread_counts() {
        let siblings = SiblingMap::default();
        let stream = churn_stream();
        let mut baseline: Option<(u64, FxHashMap<Community, Intent>)> = None;
        for threads in [1usize, 2, 8] {
            let cfg = InferenceConfig {
                threads,
                ..InferenceConfig::default()
            };
            let mut wc = WindowedClassifier::new(window_cfg(), cfg);
            for o in &stream {
                wc.observe(o, &siblings);
            }
            wc.reclassify(&siblings);
            match &baseline {
                None => baseline = Some((wc.flaps(), wc.labels().clone())),
                Some((flaps, labels)) => {
                    assert_eq!(wc.flaps(), *flaps, "flaps differ at threads={threads}");
                    assert_eq!(wc.labels(), labels, "labels differ at threads={threads}");
                }
            }
        }
        assert!(baseline.unwrap().0 > 0);
    }

    #[test]
    fn flaps_survive_checkpoint_resume() {
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig {
            threads: 1,
            ..InferenceConfig::default()
        };
        let stream = churn_stream();

        let mut uninterrupted = WindowedClassifier::new(window_cfg(), cfg.clone());
        let mut cumulative_a = StatsAccumulator::new();
        for o in &stream {
            uninterrupted.observe(o, &siblings);
            cumulative_a.ingest_ordered(std::slice::from_ref(o), &siblings);
        }
        uninterrupted.reclassify(&siblings);

        // Crash at every possible boundary: the resumed run must always
        // land on the identical flap count and label map.
        for cut in [3usize, 9, 17, 25] {
            let mut before = WindowedClassifier::new(window_cfg(), cfg.clone());
            let mut cumulative_b = StatsAccumulator::new();
            for o in &stream[..cut] {
                before.observe(o, &siblings);
                cumulative_b.ingest_ordered(std::slice::from_ref(o), &siblings);
            }
            let cp = WatchCheckpoint::capture(&mut before, &mut cumulative_b, 0, 0, cut as u64);
            let mut resumed = WindowedClassifier::from_checkpoint(&cp, cfg.clone());
            let mut cumulative_r = StatsAccumulator::from_snapshot(&cp.cumulative);
            for o in &stream[cut..] {
                resumed.observe(o, &siblings);
                cumulative_r.ingest_ordered(std::slice::from_ref(o), &siblings);
            }
            resumed.reclassify(&siblings);
            assert_eq!(
                resumed.flaps(),
                uninterrupted.flaps(),
                "flaps differ, cut={cut}"
            );
            assert_eq!(
                resumed.labels(),
                uninterrupted.labels(),
                "labels differ, cut={cut}"
            );
            assert_eq!(
                cumulative_r.to_stats(),
                cumulative_a.to_stats(),
                "cumulative stats differ, cut={cut}"
            );
        }
    }

    #[test]
    fn late_observations_fold_or_drop_deterministically() {
        let siblings = SiblingMap::default();
        let mut wc = WindowedClassifier::new(
            WindowConfig {
                window_secs: 100,
                windows: 2,
            },
            InferenceConfig::default(),
        );
        wc.observe(&obs(1, "1 100 2", &[(100, 1)], 50), &siblings); // bucket 0
        wc.observe(&obs(1, "1 100 3", &[(100, 1)], 550), &siblings); // bucket 5
                                                                     // Late but retained (bucket 4): folds, no drop.
        wc.observe(&obs(1, "1 100 4", &[(100, 2)], 450), &siblings);
        assert_eq!(wc.late_drops(), 0);
        assert_eq!(wc.bucket_count(), 2);
        // Evicted bucket (0): dropped and counted, never folded.
        wc.observe(&obs(1, "1 100 5", &[(100, 3)], 60), &siblings);
        assert_eq!(wc.late_drops(), 1);
        let stats = wc.windowed_stats();
        assert!(stats.counts(Community::new(100, 2)).is_some());
        assert!(stats.counts(Community::new(100, 3)).is_none());
    }

    #[test]
    fn watch_checkpoint_roundtrips_and_rejects_damage() {
        let siblings = SiblingMap::default();
        let mut wc = WindowedClassifier::new(window_cfg(), InferenceConfig::default());
        let mut cumulative = StatsAccumulator::new();
        for o in &churn_stream()[..12] {
            wc.observe(o, &siblings);
            cumulative.ingest_ordered(std::slice::from_ref(o), &siblings);
        }
        let cp = WatchCheckpoint::capture(&mut wc, &mut cumulative, 777, 12, 12);

        let dir = std::env::temp_dir().join(format!("bgp-watch-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watch.json");
        cp.save_atomic(&path).unwrap();
        let loaded = WatchCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.cursor, 777);
        assert_eq!(loaded.flaps, cp.flaps);
        assert_eq!(loaded.labels, cp.labels);
        assert_eq!(loaded.buckets.len(), cp.buckets.len());

        // One flipped byte inside the payload must be rejected.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] = raw[mid].wrapping_add(1);
        std::fs::write(&path, &raw).unwrap();
        let err = WatchCheckpoint::load(&path).unwrap_err();
        assert!(err.is_invalid_data(), "got: {err}");

        // Missing file is a clean not-found, the fresh-start signal.
        std::fs::remove_file(&path).unwrap();
        assert!(WatchCheckpoint::load(&path).unwrap_err().is_not_found());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// End-to-end over an in-memory feed: the daemon's cumulative
    /// classification at the quiescent point equals a batch run over the
    /// same bytes, and the rolling machinery (advances, checkpoints)
    /// actually engaged.
    #[test]
    fn run_watch_matches_batch_over_memory_feed() {
        use bgp_experiments::scenario::{Scenario, ScenarioConfig};

        let scenario = Scenario::build(&ScenarioConfig {
            seed: 0x57A7C4,
            scale: 0.08,
            ..ScenarioConfig::default()
        });
        let sim = scenario.simulator();
        let mut wire = Vec::new();
        scenario.stream_collect(&sim, 4, &mut wire).unwrap();
        let bytes = Arc::new(wire);

        let dir = std::env::temp_dir().join(format!("bgp-watch-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cp_path = dir.join("watch.json");
        let _ = std::fs::remove_file(&cp_path);

        let opts = WatchOptions {
            window: WindowConfig {
                window_secs: 14_400,
                windows: 3,
            },
            infer: InferenceConfig {
                threads: 1,
                ..InferenceConfig::default()
            },
            tuning: StreamTuning {
                queue_bytes: 64 << 10,
                chunk_bytes: 8 << 10,
                stall_timeout: Duration::from_millis(200),
                quiesce_after: Some(2),
                ..StreamTuning::default()
            },
            checkpoint: Some(cp_path.clone()),
            ..WatchOptions::default()
        };
        let outcome = run_watch(
            MemoryFeed::new(bytes.clone()),
            &scenario.siblings,
            &opts,
            Arc::new(AtomicBool::new(false)),
        )
        .unwrap();

        assert!(outcome.advances > 0, "windows must advance");
        assert_eq!(outcome.cursor, bytes.len() as u64);
        assert!(cp_path.exists(), "final checkpoint must be flushed");

        // Batch over the same bytes, through the same accumulator
        // semantics the streaming side uses.
        let observations = bgp_mrt::obs::read_observations(&bytes[..]).unwrap();
        let mut acc = StatsAccumulator::new();
        acc.ingest(&observations, &scenario.siblings, 1);
        let batch = classify(&acc.to_stats(), &scenario.siblings, &opts.infer);
        assert_eq!(outcome.stats, acc.to_stats());
        assert_eq!(outcome.inference.labels, batch.labels);
        assert_eq!(outcome.inference.excluded, batch.excluded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
