//! Scoring inferences against ground truth (§6).

use serde::{Deserialize, Serialize};

use bgp_dictionary::GroundTruthDictionary;
use bgp_types::Intent;

use crate::classify::Inference;

/// Accuracy of an inference run against a dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Communities with both an inferred label and a ground-truth label.
    pub total: usize,
    /// Of those, correctly labeled.
    pub correct: usize,
    /// Confusion counts: `[truth][inferred]` with 0 = action, 1 = info.
    pub confusion: [[usize; 2]; 2],
    /// Ground-truth-covered communities the method excluded.
    pub covered_excluded: usize,
    /// Ground-truth-covered communities observed at all (the paper's
    /// "6,259 communities covered by the regexes").
    pub covered_observed: usize,
}

fn idx(i: Intent) -> usize {
    match i {
        Intent::Action => 0,
        Intent::Information => 1,
    }
}

impl Evaluation {
    /// Overall accuracy (the paper's 96.5%).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Precision for one class: TP / (TP + FP).
    pub fn precision(&self, class: Intent) -> f64 {
        let c = idx(class);
        let tp = self.confusion[c][c];
        let fp = self.confusion[1 - c][c];
        if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        }
    }

    /// Recall for one class: TP / (TP + FN).
    pub fn recall(&self, class: Intent) -> f64 {
        let c = idx(class);
        let tp = self.confusion[c][c];
        let fun = self.confusion[c][1 - c];
        if tp + fun == 0 {
            0.0
        } else {
            tp as f64 / (tp + fun) as f64
        }
    }

    /// Fraction of dictionary-covered observed communities that received a
    /// label (coverage in the Fig 10 sense).
    pub fn coverage(&self) -> f64 {
        if self.covered_observed == 0 {
            0.0
        } else {
            self.total as f64 / self.covered_observed as f64
        }
    }
}

/// Score an inference against the dictionary.
pub fn evaluate(inference: &Inference, dict: &GroundTruthDictionary) -> Evaluation {
    let by_asn = dict.by_asn();
    let lookup = |c: bgp_types::Community| -> Option<Intent> {
        by_asn
            .get(&c.asn)?
            .iter()
            .find(|e| e.pattern.beta.matches(c.value))
            .map(|e| e.intent)
    };

    let mut eval = Evaluation::default();
    for (&c, &inferred) in &inference.labels {
        if let Some(truth) = lookup(c) {
            eval.total += 1;
            eval.covered_observed += 1;
            eval.confusion[idx(truth)][idx(inferred)] += 1;
            if truth == inferred {
                eval.correct += 1;
            }
        }
    }
    for &c in inference.excluded.keys() {
        if lookup(c).is_some() {
            eval.covered_excluded += 1;
            eval.covered_observed += 1;
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Exclusion;
    use bgp_dictionary::DictionaryEntry;
    use bgp_types::Community;

    fn dict() -> GroundTruthDictionary {
        GroundTruthDictionary {
            entries: vec![
                DictionaryEntry {
                    pattern: "1299:25[0-9][0-9]".parse().unwrap(),
                    intent: Intent::Action,
                },
                DictionaryEntry {
                    pattern: r"1299:2\d\d\d\d".parse().unwrap(),
                    intent: Intent::Information,
                },
                DictionaryEntry {
                    pattern: "64511:1".parse().unwrap(),
                    intent: Intent::Action,
                },
            ],
        }
    }

    #[test]
    fn scores_only_covered_labels() {
        let mut inf = Inference::default();
        inf.labels
            .insert(Community::new(1299, 2569), Intent::Action); // ✓
        inf.labels
            .insert(Community::new(1299, 20000), Intent::Action); // ✗ truth info
        inf.labels
            .insert(Community::new(1299, 40000), Intent::Action); // uncovered
        inf.labels
            .insert(Community::new(3356, 1), Intent::Information); // uncovered ASN
        inf.excluded
            .insert(Community::new(64511, 1), Exclusion::PrivateAsn);

        let eval = evaluate(&inf, &dict());
        assert_eq!(eval.total, 2);
        assert_eq!(eval.correct, 1);
        assert_eq!(eval.accuracy(), 0.5);
        assert_eq!(eval.covered_excluded, 1);
        assert_eq!(eval.covered_observed, 3);
        assert!((eval.coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn confusion_and_precision_recall() {
        let mut inf = Inference::default();
        // truth action, inferred action (TP for action).
        inf.labels
            .insert(Community::new(1299, 2500), Intent::Action);
        inf.labels
            .insert(Community::new(1299, 2501), Intent::Action);
        // truth action, inferred info (FN for action).
        inf.labels
            .insert(Community::new(1299, 2502), Intent::Information);
        // truth info, inferred info.
        inf.labels
            .insert(Community::new(1299, 21000), Intent::Information);

        let eval = evaluate(&inf, &dict());
        assert_eq!(eval.confusion[0][0], 2);
        assert_eq!(eval.confusion[0][1], 1);
        assert_eq!(eval.confusion[1][1], 1);
        assert_eq!(eval.precision(Intent::Action), 1.0);
        assert!((eval.recall(Intent::Action) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(eval.recall(Intent::Information), 1.0);
        assert_eq!(eval.precision(Intent::Information), 0.5);
    }

    #[test]
    fn empty_inference() {
        let eval = evaluate(&Inference::default(), &dict());
        assert_eq!(eval.total, 0);
        assert_eq!(eval.accuracy(), 0.0);
        assert_eq!(eval.coverage(), 0.0);
    }
}
