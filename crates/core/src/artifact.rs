//! From inference output to the servable label artifact — and the first
//! workload on top of it: the anomaly-check pass.
//!
//! [`label_rows`] flattens an [`Inference`] into sorted [`LabelRow`]s (one
//! per classified community, carrying its cluster's evidence), which both
//! the CLI's `--json` writer and [`write_inference_artifact`] consume, so
//! the two outputs agree bit-for-bit by construction.
//!
//! [`check_store`] is the CommunityWatch-style detector: stream an archive
//! and flag routes whose observed communities contradict their inferred
//! intent class. Only the *contradiction-proof* subset of labels is
//! enforced — communities whose training evidence was unanimous:
//!
//! * an **information** community that was never once seen off-path
//!   (`off_paths == 0`) now appearing off-path — the leak/spoof shape, an
//!   informational tag escaping beyond its owner's cone;
//! * an **action** community that was never once seen on-path
//!   (`on_paths == 0`) now appearing on-path — a request community echoed
//!   back through the AS that should have consumed it.
//!
//! Ratio-labeled communities (mixed evidence) are *not* flagged: both
//! placements were observed in training, so a single sighting proves
//! nothing. This makes the check vacuously clean on the training archive
//! itself — any anomaly on fresh data is a genuine behavior change.

use std::io;
use std::path::Path;

use bgp_artifact::{write_artifact_atomic, LabelArtifact, LabelRow};
use bgp_relationships::SiblingMap;
use bgp_types::fx::FxHashMap;
use bgp_types::store::ObservationStore;
use bgp_types::{Asn, Community, Intent, Prefix};

use crate::classify::Inference;
use crate::stats::OnPathIndex;

/// Label confidence in `(0, 1]` from the cluster's evidence.
///
/// Unanimous clusters (`off_total == 0` or `on_total == 0`) are certain:
/// the label did not depend on the ratio threshold at all. Mixed clusters
/// map how far the ratio sits from the threshold `t` into `(0, 1)`:
/// information (`r ≥ t`) scores `r / (r + t)` (0.5 at the threshold,
/// toward 1 as the ratio dwarfs it); action (`r < t`) scores the mirror
/// `t / (r + t)` (toward 1 as the ratio vanishes). Both labels are at
/// their least confident — 0.5 — exactly at the decision boundary.
pub fn confidence(ratio: f64, on_total: u64, off_total: u64, threshold: f64, label: Intent) -> f64 {
    if off_total == 0 || on_total == 0 {
        return 1.0;
    }
    match label {
        Intent::Information => ratio / (ratio + threshold),
        Intent::Action => threshold / (ratio + threshold),
    }
}

/// Flatten an inference into artifact rows: one per classified community,
/// sorted strictly ascending by [`Community::packed_key`], each carrying
/// its containing cluster's ratio, unique-path totals, and the confidence
/// derived from them. `ratio_threshold` must be the value classification
/// ran with (it determines confidence, not labels).
pub fn label_rows(inference: &Inference, ratio_threshold: f64) -> Vec<LabelRow> {
    // Every labeled community belongs to exactly one cluster (labels are
    // only ever inserted cluster-by-cluster in `classify_owner`).
    let mut by_community: FxHashMap<Community, usize> = FxHashMap::default();
    for (i, lc) in inference.clusters.iter().enumerate() {
        for &beta in &lc.cluster.betas {
            by_community.insert(Community::new(lc.cluster.asn, beta), i);
        }
    }
    let mut rows: Vec<LabelRow> = inference
        .labels
        .iter()
        .map(|(&community, &label)| {
            let lc = &inference.clusters[by_community[&community]];
            debug_assert_eq!(lc.label, label, "{community}: label disagrees with cluster");
            LabelRow {
                community,
                label,
                confidence: confidence(lc.ratio, lc.on_total, lc.off_total, ratio_threshold, label),
                ratio: lc.ratio,
                on_paths: lc.on_total,
                off_paths: lc.off_total,
            }
        })
        .collect();
    rows.sort_unstable_by_key(|r| r.community.packed_key());
    rows
}

/// Write an inference as a label artifact (atomic temp+rename). Returns
/// the number of rows written.
pub fn write_inference_artifact(
    path: &Path,
    inference: &Inference,
    ratio_threshold: f64,
) -> io::Result<usize> {
    let rows = label_rows(inference, ratio_threshold);
    write_artifact_atomic(path, &rows)?;
    Ok(rows.len())
}

/// The two contradiction shapes [`check_store`] detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A never-off-path information community observed off-path.
    InformationOffPath,
    /// A never-on-path action community observed on-path.
    ActionOnPath,
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyKind::InformationOffPath => write!(f, "information-off-path"),
            AnomalyKind::ActionOnPath => write!(f, "action-on-path"),
        }
    }
}

/// One route whose observed community contradicts its inferred intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anomaly {
    /// Index of the observation in the checked store (deterministic
    /// stream order).
    pub index: usize,
    /// The vantage point that saw the route.
    pub vp: Asn,
    /// The announced prefix.
    pub prefix: Prefix,
    /// The contradicting community.
    pub community: Community,
    /// Which contradiction shape fired.
    pub kind: AnomalyKind,
}

/// The outcome of an anomaly-check pass over one archive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Observations streamed.
    pub observations: usize,
    /// `(observation, community)` pairs with a label in the artifact.
    pub checked: usize,
    /// `(observation, community)` pairs the artifact has no label for
    /// (excluded or never-observed communities).
    pub unknown: usize,
    /// Every contradiction, in observation order.
    pub anomalies: Vec<Anomaly>,
}

/// Per community slot, what the checker needs: the label and whether the
/// training evidence was unanimous enough to enforce.
#[derive(Clone, Copy)]
enum SlotVerdict {
    Unknown,
    /// Information with `off_paths == 0` in training.
    EnforceInformation,
    /// Action with `on_paths == 0` in training.
    EnforceAction,
    /// Labeled, but with mixed evidence — counted as checked, never flagged.
    Known,
}

/// Check every observation in `store` against a loaded artifact: flag
/// never-off-path information communities seen off-path and never-on-path
/// action communities seen on-path. `siblings` must be the map the
/// artifact's inference ran with — the on-path test here must match the
/// one that produced the labels, or the check would contradict itself.
pub fn check_store(
    artifact: &LabelArtifact,
    store: &ObservationStore,
    siblings: &SiblingMap,
) -> CheckReport {
    let index = OnPathIndex::build(store, siblings);
    // One artifact lookup per distinct community slot, not per tuple.
    let verdicts: Vec<SlotVerdict> = (0..store.community_count() as u32)
        .map(|slot| match artifact.get(store.community(slot)) {
            None => SlotVerdict::Unknown,
            Some(row) => match row.label {
                Intent::Information if row.off_paths == 0 => SlotVerdict::EnforceInformation,
                Intent::Action if row.on_paths == 0 => SlotVerdict::EnforceAction,
                _ => SlotVerdict::Known,
            },
        })
        .collect();
    let mut report = CheckReport {
        observations: store.len(),
        ..CheckReport::default()
    };
    for i in 0..store.len() {
        let path_id = store.obs_path_id(i);
        for &slot in store.cset_slots(store.obs_cset_id(i)) {
            let verdict = verdicts[slot as usize];
            if matches!(verdict, SlotVerdict::Unknown) {
                report.unknown += 1;
                continue;
            }
            report.checked += 1;
            let kind = match verdict {
                SlotVerdict::EnforceInformation if !index.on_path(store, path_id, slot) => {
                    AnomalyKind::InformationOffPath
                }
                SlotVerdict::EnforceAction if index.on_path(store, path_id, slot) => {
                    AnomalyKind::ActionOnPath
                }
                _ => continue,
            };
            report.anomalies.push(Anomaly {
                index: i,
                vp: store.vp(i),
                prefix: store.prefix(i),
                community: store.community(slot),
                kind,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, InferenceConfig};
    use crate::stats::PathStats;
    use bgp_types::Observation;

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    /// Training set with one never-off-path information community
    /// (1299:35130), one never-on-path action community (1299:2569), and
    /// one mixed ratio-labeled community (3356:100, on 2 / off 1).
    fn training() -> Vec<Observation> {
        vec![
            obs("10 1299 64496", &[(1299, 35130)]),
            obs("11 1299 64497", &[(1299, 35130)]),
            obs("10 64496", &[(1299, 2569)]),
            obs("12 3356 64496", &[(3356, 100)]),
            obs("13 3356 64497", &[(3356, 100)]),
            obs("14 64498", &[(3356, 100)]),
        ]
    }

    fn infer(observations: &[Observation]) -> Inference {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(observations, &siblings);
        classify(&stats, &siblings, &InferenceConfig::default())
    }

    fn temp_artifact(tag: &str, inference: &Inference) -> LabelArtifact {
        let dir = std::env::temp_dir().join(format!("core-artifact-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("labels.art");
        write_inference_artifact(&path, inference, 160.0).expect("write artifact");
        LabelArtifact::load(&path).expect("load artifact")
    }

    #[test]
    fn confidence_edges() {
        // Unanimous evidence is certain regardless of ratio.
        assert_eq!(confidence(37.0, 37, 0, 160.0, Intent::Information), 1.0);
        assert_eq!(confidence(0.0, 0, 9, 160.0, Intent::Action), 1.0);
        // At the decision boundary both labels sit at 0.5.
        assert_eq!(confidence(160.0, 320, 2, 160.0, Intent::Information), 0.5);
        // Far from the boundary, confidence approaches 1.
        assert!(confidence(16000.0, 32000, 2, 160.0, Intent::Information) > 0.99);
        assert!(confidence(0.016, 1, 60, 160.0, Intent::Action) > 0.99);
        // Confidence is symmetric in the evidence: a ratio k× above the
        // threshold scores the same as one k× below it.
        let hi = confidence(320.0, 640, 2, 160.0, Intent::Information);
        let lo = confidence(80.0, 160, 2, 160.0, Intent::Action);
        assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn label_rows_are_sorted_and_agree_with_the_label_map() {
        let inference = infer(&training());
        let rows = label_rows(&inference, 160.0);
        assert_eq!(rows.len(), inference.labels.len());
        for pair in rows.windows(2) {
            assert!(pair[0].community.packed_key() < pair[1].community.packed_key());
        }
        for row in &rows {
            assert_eq!(inference.label(row.community), Some(row.label));
            assert!(row.confidence > 0.0 && row.confidence <= 1.0);
        }
        // The unanimous rows carry certainty, the mixed row does not.
        let by = |c: Community| rows.iter().find(|r| r.community == c).unwrap();
        assert_eq!(by(Community::new(1299, 35130)).confidence, 1.0);
        assert_eq!(by(Community::new(1299, 2569)).confidence, 1.0);
        let mixed = by(Community::new(3356, 100));
        assert!(mixed.confidence < 1.0, "mixed evidence cannot be certain");
        assert_eq!((mixed.on_paths, mixed.off_paths), (2, 1));
    }

    #[test]
    fn artifact_round_trips_label_rows_exactly() {
        let inference = infer(&training());
        let rows = label_rows(&inference, 160.0);
        let artifact = temp_artifact("roundtrip", &inference);
        assert_eq!(artifact.rows().collect::<Vec<_>>(), rows);
        for row in &rows {
            assert_eq!(artifact.get(row.community), Some(*row));
        }
    }

    #[test]
    fn training_archive_checks_clean() {
        let observations = training();
        let inference = infer(&observations);
        let artifact = temp_artifact("clean", &inference);
        let store = ObservationStore::from_observations(&observations);
        let report = check_store(&artifact, &store, &SiblingMap::default());
        assert_eq!(report.observations, observations.len());
        assert!(report.checked > 0);
        assert!(
            report.anomalies.is_empty(),
            "training data must be self-consistent: {:?}",
            report.anomalies
        );
    }

    #[test]
    fn seeded_contradictions_are_flagged_exactly() {
        let observations = training();
        let inference = infer(&observations);
        let artifact = temp_artifact("seeded", &inference);
        let mut checked = observations.clone();
        // 1299:35130 (information, never off-path) leaking off-path.
        checked.push(obs("20 3356 64499", &[(1299, 35130)]));
        // 1299:2569 (action, never on-path) echoed through 1299 itself.
        checked.push(obs("21 1299 64499", &[(1299, 2569)]));
        // Mixed 3356:100 in both placements: never flagged.
        checked.push(obs("22 3356 64499", &[(3356, 100)]));
        checked.push(obs("23 64499", &[(3356, 100)]));
        let store = ObservationStore::from_observations(&checked);
        let report = check_store(&artifact, &store, &SiblingMap::default());
        assert_eq!(report.anomalies.len(), 2);
        let leak = report.anomalies[0];
        assert_eq!(leak.index, observations.len());
        assert_eq!(leak.community, Community::new(1299, 35130));
        assert_eq!(leak.kind, AnomalyKind::InformationOffPath);
        assert_eq!(leak.vp, Asn::new(20));
        let echo = report.anomalies[1];
        assert_eq!(echo.index, observations.len() + 1);
        assert_eq!(echo.community, Community::new(1299, 2569));
        assert_eq!(echo.kind, AnomalyKind::ActionOnPath);
    }

    #[test]
    fn unlabeled_communities_count_as_unknown() {
        let observations = training();
        let inference = infer(&observations);
        let artifact = temp_artifact("unknown", &inference);
        let checked = vec![obs("30 3356 64496", &[(9999, 1)])];
        let store = ObservationStore::from_observations(&checked);
        let report = check_store(&artifact, &store, &SiblingMap::default());
        assert_eq!((report.checked, report.unknown), (0, 1));
        assert!(report.anomalies.is_empty());
    }
}
