//! Cluster labeling and exclusion rules — steps (ii) and (iii) of Fig 8.

use serde::{Deserialize, Serialize};

use bgp_relationships::SiblingMap;
use bgp_types::fx::FxHashMap;
use bgp_types::par::{effective_threads, par_map_indexed};
use bgp_types::{Asn, Community, Intent};

use crate::cluster::{gap_clusters, Cluster};
use crate::stats::PathStats;

/// Method parameters (§5.2 defaults: gap 140, ratio 160:1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Minimum gap between clusters (Fig 9; 0 disables clustering).
    pub min_gap: u16,
    /// On-path:off-path ratio above which a cluster is informational
    /// (Fig 6).
    pub ratio_threshold: f64,
    /// Expand the on-path test to sibling ASes (as2org). On by default, as
    /// in the paper; the ablation bench switches it off.
    pub use_siblings: bool,
    /// Aggregate a cluster's ratio as pooled counts
    /// (`Σon / Σoff`) instead of the paper's mean of per-community ratios.
    /// Off by default; exists for the ablation study.
    pub pooled_ratio: bool,
    /// Apply the private-ASN / reserved / never-on-path exclusion rules.
    /// On by default (§5.2); the ablation study switches them off to
    /// measure their contribution.
    pub apply_exclusions: bool,
    /// Worker threads for statistics and classification (`0` = one per
    /// CPU, the default; `1` = sequential). Output is identical at any
    /// thread count — see `DESIGN.md` on the shard-and-merge model.
    #[serde(default)]
    pub threads: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            min_gap: 140,
            ratio_threshold: 160.0,
            use_siblings: true,
            pooled_ratio: false,
            apply_exclusions: true,
            threads: 0,
        }
    }
}

/// Why a community was not classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exclusion {
    /// `α` is in the private-use ASN range (RFC 6996).
    PrivateAsn,
    /// `α` is reserved (0, AS_TRANS, 65535 — including the RFC 1997
    /// well-known block, whose meanings are standardized, not inferred).
    ReservedAsn,
    /// `α` (and every sibling) never appeared in any AS path — the IXP
    /// route-server situation where on-path evidence cannot exist.
    NeverOnPath,
}

/// A labeled cluster, kept for figures and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledCluster {
    /// The cluster itself.
    pub cluster: Cluster,
    /// Mean per-community on:off ratio.
    pub ratio: f64,
    /// Total on-path unique-path count across members.
    pub on_total: u64,
    /// Total off-path unique-path count across members.
    pub off_total: u64,
    /// The inferred label.
    pub label: Intent,
}

/// The output of the method over one dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Inference {
    /// Label per classified community.
    pub labels: FxHashMap<Community, Intent>,
    /// Communities the method refused to classify, with the reason.
    pub excluded: FxHashMap<Community, Exclusion>,
    /// Every labeled cluster (diagnostics, Fig 4/6/9 material).
    pub clusters: Vec<LabeledCluster>,
}

impl Inference {
    /// The label of a community, if inferred.
    pub fn label(&self, c: Community) -> Option<Intent> {
        self.labels.get(&c).copied()
    }

    /// `(action, information)` counts over classified communities — the
    /// paper's headline "24,376 action and 54,104 informational".
    pub fn intent_counts(&self) -> (usize, usize) {
        let action = self
            .labels
            .values()
            .filter(|i| **i == Intent::Action)
            .count();
        (action, self.labels.len() - action)
    }

    /// Number of distinct owner ASNs with at least one classified
    /// community (the paper's "5,491 ISPs").
    pub fn owner_count(&self) -> usize {
        let mut owners: Vec<u16> = self.labels.keys().map(|c| c.asn).collect();
        owners.sort_unstable();
        owners.dedup();
        owners.len()
    }
}

/// Label one cluster from its members' path counts.
///
/// §5.2: never off-path ⇒ information; always off-path ⇒ action; otherwise
/// compare the mean per-community ratio to the threshold.
pub fn label_cluster(
    stats: &PathStats,
    cluster: &Cluster,
    cfg: &InferenceConfig,
) -> LabeledCluster {
    let mut on_total = 0u64;
    let mut off_total = 0u64;
    let mut ratio_sum = 0.0f64;
    let mut members = 0usize;
    for &beta in &cluster.betas {
        let c = Community::new(cluster.asn, beta);
        let counts = stats.counts(c).unwrap_or_default();
        on_total += counts.on as u64;
        off_total += counts.off as u64;
        ratio_sum += counts.ratio();
        members += 1;
    }
    let ratio = if cfg.pooled_ratio {
        if off_total == 0 {
            on_total as f64
        } else {
            on_total as f64 / off_total as f64
        }
    } else if members > 0 {
        ratio_sum / members as f64
    } else {
        0.0
    };
    let label = if off_total == 0 {
        Intent::Information
    } else if on_total == 0 {
        Intent::Action
    } else if ratio >= cfg.ratio_threshold {
        Intent::Information
    } else {
        Intent::Action
    };
    LabeledCluster {
        cluster: cluster.clone(),
        ratio,
        on_total,
        off_total,
        label,
    }
}

/// Steps (i)–(iii) for one owner AS: exclusion check, clustering, cluster
/// labeling. Appends into `out` so chunked workers reuse one accumulator.
/// `pub(crate)` so the streaming window (`watch`) can reclassify only the
/// owners a window advance touched.
pub(crate) fn classify_owner(
    stats: &PathStats,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    asn: u16,
    betas: &[u16],
    out: &mut Inference,
) {
    let owner = Asn::new(asn as u32);
    let exclusion = if !cfg.apply_exclusions {
        None
    } else if owner.is_private() {
        Some(Exclusion::PrivateAsn)
    } else if owner.is_reserved() {
        Some(Exclusion::ReservedAsn)
    } else {
        let family: &[Asn] = if cfg.use_siblings {
            siblings.expand_ref(&owner)
        } else {
            std::slice::from_ref(&owner)
        };
        if family.iter().any(|a| stats.seen_asns.contains(a)) {
            None
        } else {
            Some(Exclusion::NeverOnPath)
        }
    };
    if let Some(reason) = exclusion {
        for &beta in betas {
            out.excluded.insert(Community::new(asn, beta), reason);
        }
        return;
    }
    for cluster in gap_clusters(asn, betas, cfg.min_gap) {
        let labeled = label_cluster(stats, &cluster, cfg);
        for &beta in &labeled.cluster.betas {
            out.labels.insert(Community::new(asn, beta), labeled.label);
        }
        out.clusters.push(labeled);
    }
}

/// Owner count below which classification never fans out.
const CLASSIFY_PAR_MIN_OWNERS: usize = 256;

/// Community count below which classification never fans out. The owner
/// gate alone proved insufficient: the committed bench scenario has
/// hundreds of owners but so few communities per owner that
/// `pipeline/classify_par` ran ~1.2× *slower* than sequential
/// `pipeline/classify` — fork-join setup outweighed the per-owner work.
/// Communities measure the actual work (clustering + per-member count
/// lookups), so both gates must pass.
const CLASSIFY_PAR_MIN_COMMUNITIES: usize = 4096;

/// Resolve the worker count classification will actually use: the
/// requested `threads` knob (`0` = one per CPU) clamped to the owner
/// count, with a sequential fallback below the size thresholds where
/// fork-join setup costs more than it saves. Public so the bench suite
/// can assert which regime a scenario lands in.
pub fn classify_parallelism(owner_count: usize, community_count: usize, requested: usize) -> usize {
    if owner_count < CLASSIFY_PAR_MIN_OWNERS || community_count < CLASSIFY_PAR_MIN_COMMUNITIES {
        return 1;
    }
    effective_threads(requested).min(owner_count.max(1))
}

/// Run steps (i)–(iii) over precomputed path statistics.
///
/// `siblings` must be the same map used to build `stats` (it decides both
/// the on-path test and the never-on-path exclusion).
///
/// Owner ASes are independent, so with `cfg.threads != 1` they fan out
/// across workers in ASN-ordered chunks and the partial inferences are
/// merged back in ASN order — the output (including `clusters` order) is
/// identical at any thread count. Small jobs fall through to the
/// sequential loop (see [`classify_parallelism`]) — the same owner order,
/// so bit-identical output.
pub fn classify(stats: &PathStats, siblings: &SiblingMap, cfg: &InferenceConfig) -> Inference {
    let owners = stats.by_owner();
    let threads = classify_parallelism(owners.len(), stats.community_count(), cfg.threads);
    if threads <= 1 {
        let mut inference = Inference::default();
        for (asn, betas) in &owners {
            classify_owner(stats, siblings, cfg, *asn, betas, &mut inference);
        }
        return inference;
    }
    // Oversplit so one community-heavy owner cannot serialize a chunk.
    let chunk_size = owners.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<&[(u16, Vec<u16>)]> = owners.chunks(chunk_size).collect();
    let parts = par_map_indexed(chunks.len(), threads, |i| {
        let mut part = Inference::default();
        for (asn, betas) in chunks[i] {
            classify_owner(stats, siblings, cfg, *asn, betas, &mut part);
        }
        part
    });
    let mut inference = Inference::default();
    for part in parts {
        inference.labels.extend(part.labels);
        inference.excluded.extend(part.excluded);
        inference.clusters.extend(part.clusters);
    }
    inference
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Observation;

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    fn run(observations: &[Observation], cfg: &InferenceConfig) -> Inference {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(observations, &siblings);
        classify(&stats, &siblings, cfg)
    }

    #[test]
    fn never_off_path_is_information() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000)]),
            obs("11 1299 64496", &[(1299, 20000)]),
        ];
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(
            inf.label(Community::new(1299, 20000)),
            Some(Intent::Information)
        );
    }

    #[test]
    fn always_off_path_is_action() {
        let observations = vec![obs("10 64496", &[(1299, 2569)])];
        // 1299 must appear in *some* path or it is excluded entirely.
        let mut observations = observations;
        observations.push(obs("10 1299 64497", &[]));
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(inf.label(Community::new(1299, 2569)), Some(Intent::Action));
    }

    #[test]
    fn clustering_rescues_sparse_action_value() {
        // 1299:2569 is seen only on-path (would be "never off-path" ⇒ info
        // in isolation), but sits 3 away from 1299:2566, which is clearly
        // off-path. With gap 140 they share a cluster and both label action;
        // with gap 0 the sparse one is mislabeled information.
        let observations = vec![
            obs("10 1299 64496", &[(1299, 2569)]),
            obs("11 64496", &[(1299, 2566)]),
            obs("12 64497", &[(1299, 2566)]),
            obs("13 1299 64498", &[(1299, 2566)]),
        ];
        let clustered = run(&observations, &InferenceConfig::default());
        assert_eq!(
            clustered.label(Community::new(1299, 2569)),
            Some(Intent::Action)
        );
        assert_eq!(
            clustered.label(Community::new(1299, 2566)),
            Some(Intent::Action)
        );

        let isolated = run(
            &observations,
            &InferenceConfig {
                min_gap: 0,
                ..InferenceConfig::default()
            },
        );
        assert_eq!(
            isolated.label(Community::new(1299, 2569)),
            Some(Intent::Information)
        );
        assert_eq!(
            isolated.label(Community::new(1299, 2566)),
            Some(Intent::Action)
        );
    }

    #[test]
    fn ratio_threshold_splits_mixed_clusters() {
        // One community on 5 paths on-path, 1 off-path: ratio 5 < 160 ⇒ action.
        let mut observations = vec![obs("9 64496", &[(1299, 100)])];
        for vp in 10..15 {
            observations.push(obs(&format!("{vp} 1299 64496"), &[(1299, 100)]));
        }
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(inf.label(Community::new(1299, 100)), Some(Intent::Action));

        // Raise on-path count past 160×off ⇒ information.
        let mut observations = vec![obs("9 64496", &[(1299, 100)])];
        for vp in 100..265 {
            observations.push(obs(&format!("{vp} 1299 64496"), &[(1299, 100)]));
        }
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(
            inf.label(Community::new(1299, 100)),
            Some(Intent::Information)
        );
    }

    #[test]
    fn private_asn_excluded() {
        let observations = vec![obs("10 65000 64496", &[(65000, 5)])];
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(inf.label(Community::new(65000, 5)), None);
        assert_eq!(
            inf.excluded.get(&Community::new(65000, 5)),
            Some(&Exclusion::PrivateAsn)
        );
    }

    #[test]
    fn well_known_block_excluded_as_reserved() {
        let observations = vec![obs("10 3356 64496", &[(0xFFFF, 0xFF01)])];
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(
            inf.excluded.get(&Community::NO_EXPORT),
            Some(&Exclusion::ReservedAsn)
        );
    }

    #[test]
    fn never_on_path_excluded_like_ixp_route_servers() {
        // 60001 tags routes but never appears in a path.
        let observations = vec![
            obs("10 3356 64496", &[(60001, 1), (60001, 2)]),
            obs("11 3356 64497", &[(60001, 1)]),
        ];
        let inf = run(&observations, &InferenceConfig::default());
        assert_eq!(inf.labels.len(), 0);
        assert_eq!(
            inf.excluded.get(&Community::new(60001, 1)),
            Some(&Exclusion::NeverOnPath)
        );
    }

    #[test]
    fn sibling_presence_lifts_never_on_path() {
        let siblings = SiblingMap::from_orgs(vec![vec![Asn::new(60001), Asn::new(3356)]]);
        let observations = vec![obs("10 3356 64496", &[(60001, 1)])];
        let stats = PathStats::from_observations(&observations, &siblings);
        let inf = classify(&stats, &siblings, &InferenceConfig::default());
        // 3356 (sibling) is in the path ⇒ on-path ⇒ information.
        assert_eq!(
            inf.label(Community::new(60001, 1)),
            Some(Intent::Information)
        );

        let no_sib = classify(
            &stats,
            &siblings,
            &InferenceConfig {
                use_siblings: false,
                ..InferenceConfig::default()
            },
        );
        // Note: stats were built WITH sibling expansion; disabling siblings
        // at classification still changes the exclusion decision.
        assert_eq!(no_sib.label(Community::new(60001, 1)), None);
    }

    #[test]
    fn pooled_ratio_aggregation_differs_from_mean() {
        // One member with on=400/off=0 (proxy ratio 400), one with
        // on=10/off=10 (ratio 1): mean = 200.5 >= 160 -> info; pooled =
        // 410/10 = 41 < 160 -> action.
        let mut observations = Vec::new();
        for vp in 0..400 {
            observations.push(obs(&format!("{} 1299 64496", 10_000 + vp), &[(1299, 100)]));
        }
        for vp in 0..10 {
            observations.push(obs(&format!("{} 1299 64497", 20_000 + vp), &[(1299, 101)]));
            observations.push(obs(&format!("{} 64497", 30_000 + vp), &[(1299, 101)]));
        }
        let mean = run(&observations, &InferenceConfig::default());
        assert_eq!(
            mean.label(Community::new(1299, 100)),
            Some(Intent::Information)
        );
        let pooled = run(
            &observations,
            &InferenceConfig {
                pooled_ratio: true,
                ..InferenceConfig::default()
            },
        );
        assert_eq!(
            pooled.label(Community::new(1299, 100)),
            Some(Intent::Action)
        );
    }

    #[test]
    fn disabling_exclusions_classifies_everything() {
        let observations = vec![
            obs("10 65000 64496", &[(65000, 5)]),
            obs("10 3356 64496", &[(60001, 1)]),
        ];
        let cfg = InferenceConfig {
            apply_exclusions: false,
            ..InferenceConfig::default()
        };
        let inf = run(&observations, &cfg);
        assert!(inf.excluded.is_empty());
        assert!(inf.labels.contains_key(&Community::new(65000, 5)));
        assert!(inf.labels.contains_key(&Community::new(60001, 1)));
    }

    #[test]
    fn parallelism_gates_on_both_owner_and_community_counts() {
        // Too few owners: sequential no matter how many communities.
        assert_eq!(classify_parallelism(255, 1_000_000, 8), 1);
        // Too few communities: sequential no matter how many owners
        // (the committed bench scenario's regime).
        assert_eq!(classify_parallelism(10_000, 4095, 8), 1);
        // Both gates cleared: the requested knob, clamped to owners.
        assert_eq!(classify_parallelism(10_000, 100_000, 8), 8);
        assert_eq!(classify_parallelism(300, 100_000, 8), 8);
        assert_eq!(classify_parallelism(10_000, 100_000, 1), 1);
        // `0` resolves to one worker per CPU.
        assert_eq!(
            classify_parallelism(10_000, 100_000, 0),
            effective_threads(0)
        );
    }

    #[test]
    fn classify_is_deterministic_across_thread_counts() {
        // Enough owners AND communities to clear both sequential-fallback
        // thresholds and split into several chunks: 300 owner ASes × 16
        // betas, mixed on/off evidence, one private and one never-on-path
        // owner.
        let mut observations = Vec::new();
        for i in 0..300u16 {
            let owner = 1000 + i * 7;
            let betas: Vec<(u16, u16)> = (0..16).map(|b| (owner, 10 + b * 200)).collect();
            observations.push(obs(&format!("10 {owner} 64496"), &betas));
            if i % 3 == 0 {
                observations.push(obs("11 64496", &[(owner, 10)]));
            }
        }
        observations.push(obs("10 65001 64496", &[(65001, 5)]));
        observations.push(obs("10 3356 64496", &[(60001, 1)]));
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(&observations, &siblings);
        assert!(
            classify_parallelism(stats.by_owner().len(), stats.community_count(), 8) > 1,
            "test scenario must be large enough to actually fan out"
        );
        let baseline = classify(
            &stats,
            &siblings,
            &InferenceConfig {
                threads: 1,
                ..InferenceConfig::default()
            },
        );
        for threads in [2, 3, 8] {
            let cfg = InferenceConfig {
                threads,
                ..InferenceConfig::default()
            };
            assert_eq!(
                classify(&stats, &siblings, &cfg),
                baseline,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn intent_counts_and_owner_count() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("10 3356 64496", &[(3356, 5)]),
            obs("11 64496", &[(3356, 5)]),
        ];
        let inf = run(&observations, &InferenceConfig::default());
        let (action, info) = inf.intent_counts();
        assert_eq!(action, 1); // 3356:5 mixed with low ratio
        assert_eq!(info, 2);
        assert_eq!(inf.owner_count(), 2);
    }
}
