//! End-to-end convenience wiring: observations in, labeled communities and
//! (optionally) an evaluation out.

use bgp_dictionary::GroundTruthDictionary;
use bgp_mrt::IngestReport;
use bgp_relationships::SiblingMap;
use bgp_types::store::ObservationStore;
use bgp_types::Observation;

use crate::classify::{classify, Inference, InferenceConfig};
use crate::eval::{evaluate, Evaluation};
use crate::stats::PathStats;

/// Everything the pipeline produced for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Path statistics (reusable for figures).
    pub stats: PathStats,
    /// The inference output.
    pub inference: Inference,
    /// Score against ground truth, when a dictionary was supplied.
    pub evaluation: Option<Evaluation>,
    /// Ingestion accounting, when the observations came through the
    /// resilient MRT path (see [`run_inference_with_report`]). `None` means
    /// the caller supplied observations directly.
    pub ingest: Option<IngestReport>,
}

/// Run the full method: statistics → clustering → classification →
/// (optional) evaluation.
///
/// `cfg.threads` controls both the statistics and classification stages
/// (`0` = one worker per CPU, `1` = sequential); the result is identical
/// at any thread count.
pub fn run_inference(
    observations: &[Observation],
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
) -> PipelineResult {
    let store = ObservationStore::from_observations(observations);
    run_inference_store(&store, siblings, cfg, dict)
}

/// [`run_inference`] over a columnar [`ObservationStore`] — the native
/// entry point when ingestion folded straight into the store without
/// materializing a `Vec<Observation>`. The observation-slice form is a
/// thin wrapper over this.
pub fn run_inference_store(
    store: &ObservationStore,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
) -> PipelineResult {
    let stats = PathStats::from_store_threaded(store, siblings, cfg.threads);
    let inference = classify(&stats, siblings, cfg);
    let evaluation = dict.map(|d| evaluate(&inference, d));
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest: None,
    }
}

/// Run the method from precomputed [`PathStats`] — the checkpointed-run
/// path, where statistics were accumulated file-by-file (see
/// [`crate::checkpoint::StatsAccumulator`]) instead of from one in-memory
/// observation list. Classification, evaluation, and reporting behave
/// exactly as in [`run_inference`].
pub fn run_inference_from_stats(
    stats: PathStats,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    ingest: Option<IngestReport>,
) -> PipelineResult {
    let inference = classify(&stats, siblings, cfg);
    let evaluation = dict.map(|d| evaluate(&inference, d));
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest,
    }
}

/// [`run_inference`], carrying the [`IngestReport`] from a resilient MRT
/// read so downstream consumers can qualify the results ("inferred from
/// 97% of the archive") without a side channel.
pub fn run_inference_with_report(
    observations: &[Observation],
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    ingest: IngestReport,
) -> PipelineResult {
    let mut result = run_inference(observations, siblings, cfg, dict);
    result.ingest = Some(ingest);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_dictionary::DictionaryEntry;
    use bgp_types::{Community, Intent};

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    #[test]
    fn end_to_end_with_evaluation() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
            obs("13 1299 64498", &[(1299, 2569)]),
        ];
        let dict = GroundTruthDictionary {
            entries: vec![
                DictionaryEntry {
                    pattern: "1299:2000[01]".parse().unwrap(),
                    intent: Intent::Information,
                },
                DictionaryEntry {
                    pattern: "1299:2569".parse().unwrap(),
                    intent: Intent::Action,
                },
            ],
        };
        let result = run_inference(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            Some(&dict),
        );
        assert_eq!(result.stats.community_count(), 3);
        let eval = result.evaluation.unwrap();
        assert_eq!(eval.total, 3);
        assert_eq!(eval.accuracy(), 1.0);
        let (action, info) = result.inference.intent_counts();
        assert_eq!((action, info), (1, 2));
    }

    #[test]
    fn with_report_carries_the_ingest_accounting() {
        let observations = vec![obs("10 1299 64496", &[(1299, 1)])];
        let report = IngestReport {
            records_read: 1,
            bytes_ok: 60,
            bytes_read: 60,
            ..IngestReport::default()
        };
        let result = run_inference_with_report(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            None,
            report.clone(),
        );
        assert_eq!(result.ingest, Some(report));
        assert_eq!(result.inference.labels.len(), 1);
    }

    #[test]
    fn from_stats_matches_from_observations() {
        use crate::checkpoint::StatsAccumulator;
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
            obs("13 1299 64498", &[(1299, 2569)]),
        ];
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig::default();
        let direct = run_inference(&observations, &siblings, &cfg, None);
        // Accumulate the same input as two "files", then classify from the
        // accumulator-derived stats: the checkpointed-run path.
        let mut acc = StatsAccumulator::new();
        acc.ingest(&observations[..2], &siblings, 1);
        acc.ingest(&observations[2..], &siblings, 1);
        let resumed = run_inference_from_stats(acc.to_stats(), &siblings, &cfg, None, None);
        assert_eq!(resumed.stats, direct.stats);
        assert_eq!(resumed.inference, direct.inference);
    }

    #[test]
    fn store_and_slice_entry_points_agree() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
        ];
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig::default();
        let via_slice = run_inference(&observations, &siblings, &cfg, None);
        let mut store = ObservationStore::new();
        for o in &observations {
            store.push(o);
        }
        let via_store = run_inference_store(&store, &siblings, &cfg, None);
        assert_eq!(via_slice, via_store);
    }

    #[test]
    fn runs_without_dictionary() {
        let observations = vec![obs("10 1299 64496", &[(1299, 1)])];
        let result = run_inference(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            None,
        );
        assert!(result.evaluation.is_none());
        assert_eq!(result.inference.labels.len(), 1);
    }
}
