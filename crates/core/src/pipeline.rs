//! End-to-end convenience wiring: observations in, labeled communities and
//! (optionally) an evaluation out.

use bgp_dictionary::GroundTruthDictionary;
use bgp_mrt::IngestReport;
use bgp_relationships::SiblingMap;
use bgp_types::obs::{MetricsRegistry, MetricsSnapshot, Telemetry};
use bgp_types::span;
use bgp_types::store::ObservationStore;
use bgp_types::Observation;

use crate::classify::{classify, Exclusion, Inference, InferenceConfig};
use crate::eval::{evaluate, Evaluation};
use crate::stats::PathStats;

/// Everything the pipeline produced for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Path statistics (reusable for figures).
    pub stats: PathStats,
    /// The inference output.
    pub inference: Inference,
    /// Score against ground truth, when a dictionary was supplied.
    pub evaluation: Option<Evaluation>,
    /// Ingestion accounting, when the observations came through the
    /// resilient MRT path (see [`run_inference_with_report`]). `None` means
    /// the caller supplied observations directly.
    pub ingest: Option<IngestReport>,
    /// Metrics snapshot taken as the run finished, when it was
    /// telemetry-enabled (see [`run_inference_store_telemetry`]); `None`
    /// on plain runs. Benches and CI diff the
    /// [`deterministic`](MetricsSnapshot::deterministic) section.
    pub metrics: Option<MetricsSnapshot>,
}

/// Bucket bounds (inclusive upper, truncated-to-integer ratios) for the
/// `classify/cluster_ratio` histogram. Dense around the paper's 160:1
/// action threshold so a run's distance from the decision boundary is
/// visible: a pile-up in the 156–159 buckets means many clusters barely
/// missed the action label.
pub const RATIO_BUCKETS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 96, 128, 144, 152, 156, 159, 160, 168, 176, 192, 224, 256, 512, 1024,
    4096,
];

/// Record interner occupancy and collision-fallback counts under `store/*`.
fn record_store_metrics(metrics: &MetricsRegistry, store: &ObservationStore) {
    let gauge = |name: &str, v: usize| {
        metrics
            .gauge(name)
            .set(i64::try_from(v).unwrap_or(i64::MAX));
    };
    gauge("store/observations", store.len());
    gauge("store/unique_paths", store.path_count());
    gauge("store/unique_csets", store.cset_count());
    gauge("store/unique_communities", store.community_count());
    gauge("store/path_collisions", store.path_collision_count());
    gauge("store/cset_collisions", store.cset_collision_count());
}

/// Record the path-stats kernel's output shape under `stats/*`.
fn record_stats_metrics(metrics: &MetricsRegistry, stats: &PathStats) {
    metrics
        .counter("stats/communities")
        .add(stats.community_count() as u64);
    metrics
        .counter("stats/unique_tuples")
        .add(stats.unique_tuples as u64);
    metrics
        .counter("stats/unique_paths")
        .add(stats.unique_paths as u64);
    metrics
        .counter("stats/seen_asns")
        .add(stats.seen_asns.len() as u64);
}

/// Record classification outcome tallies under `classify/*`, including the
/// on/off ratio histogram around the action threshold.
fn record_classify_metrics(metrics: &MetricsRegistry, inference: &Inference) {
    let (action, info) = inference.intent_counts();
    metrics
        .counter("classify/labeled_action")
        .add(action as u64);
    metrics
        .counter("classify/labeled_information")
        .add(info as u64);
    let excluded =
        |kind: Exclusion| inference.excluded.values().filter(|x| **x == kind).count() as u64;
    metrics
        .counter("classify/excluded_private_asn")
        .add(excluded(Exclusion::PrivateAsn));
    metrics
        .counter("classify/excluded_reserved_asn")
        .add(excluded(Exclusion::ReservedAsn));
    metrics
        .counter("classify/excluded_never_on_path")
        .add(excluded(Exclusion::NeverOnPath));
    metrics
        .counter("classify/clusters")
        .add(inference.clusters.len() as u64);
    metrics
        .counter("classify/owners")
        .add(inference.owner_count() as u64);
    let ratios = metrics.histogram("classify/cluster_ratio", RATIO_BUCKETS);
    for cluster in &inference.clusters {
        // Truncation keeps the threshold crisp: everything below 160.0
        // lands at or under the 159 bound, 160.0 and up in the 160 bucket.
        ratios.observe(cluster.ratio.clamp(0.0, 1e18) as u64);
    }
}

/// Record the ground-truth evaluation under `eval/*`, confusion matrix
/// included (`[truth]_as_[inferred]`).
fn record_eval_metrics(metrics: &MetricsRegistry, eval: &Evaluation) {
    metrics.counter("eval/total").add(eval.total as u64);
    metrics.counter("eval/correct").add(eval.correct as u64);
    metrics
        .counter("eval/covered_excluded")
        .add(eval.covered_excluded as u64);
    metrics
        .counter("eval/covered_observed")
        .add(eval.covered_observed as u64);
    let names = [
        [
            "eval/confusion/action_as_action",
            "eval/confusion/action_as_information",
        ],
        [
            "eval/confusion/information_as_action",
            "eval/confusion/information_as_information",
        ],
    ];
    for (truth, row) in names.iter().enumerate() {
        for (inferred, name) in row.iter().enumerate() {
            metrics
                .counter(name)
                .add(eval.confusion[truth][inferred] as u64);
        }
    }
}

/// Run the full method: statistics → clustering → classification →
/// (optional) evaluation.
///
/// `cfg.threads` controls both the statistics and classification stages
/// (`0` = one worker per CPU, `1` = sequential); the result is identical
/// at any thread count.
pub fn run_inference(
    observations: &[Observation],
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
) -> PipelineResult {
    let store = ObservationStore::from_observations(observations);
    run_inference_store(&store, siblings, cfg, dict)
}

/// [`run_inference`] over a columnar [`ObservationStore`] — the native
/// entry point when ingestion folded straight into the store without
/// materializing a `Vec<Observation>`. The observation-slice form is a
/// thin wrapper over this.
pub fn run_inference_store(
    store: &ObservationStore,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
) -> PipelineResult {
    let stats = PathStats::from_store_threaded(store, siblings, cfg.threads);
    let inference = classify(&stats, siblings, cfg);
    let evaluation = dict.map(|d| evaluate(&inference, d));
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest: None,
        metrics: None,
    }
}

/// [`run_inference_store`] under observation: each stage (path-stats
/// kernel, classification, evaluation) runs in its own span with its
/// wall-clock total accumulated under `time/<stage>_ns`, and the registry
/// collects interner occupancy, kernel output shape, classification
/// outcome tallies (with the ratio histogram around the 160:1 threshold),
/// and the evaluation confusion matrix. The final snapshot is recorded on
/// [`PipelineResult::metrics`].
///
/// With [`Telemetry::disabled`] this *is* [`run_inference_store`] — one
/// branch, then the uninstrumented code path (the `telemetry_overhead`
/// bench holds the difference under 1% of `pipeline/end_to_end`).
pub fn run_inference_store_telemetry(
    store: &ObservationStore,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    tel: &Telemetry,
) -> PipelineResult {
    if !tel.enabled() {
        return run_inference_store(store, siblings, cfg, dict);
    }
    let _pipeline = span!(tel.tracer, "pipeline", observations = store.len());
    if let Some(metrics) = tel.registry() {
        record_store_metrics(metrics, store);
    }
    let stats = tel.stage("stats", || {
        PathStats::from_store_threaded(store, siblings, cfg.threads)
    });
    let inference = classify_telemetry(&stats, siblings, cfg, tel);
    let evaluation = evaluate_telemetry(&inference, dict, tel);
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest: None,
        metrics: tel.snapshot(),
    }
}

/// The instrumented classification stage shared by both telemetry entry
/// points: the `classify` span/timing plus the outcome tallies.
fn classify_telemetry(
    stats: &PathStats,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    tel: &Telemetry,
) -> Inference {
    if let Some(metrics) = tel.registry() {
        record_stats_metrics(metrics, stats);
    }
    let inference = tel.stage("classify", || classify(stats, siblings, cfg));
    if let Some(metrics) = tel.registry() {
        record_classify_metrics(metrics, &inference);
    }
    inference
}

/// The instrumented evaluation stage: span/timing plus `eval/*` counters.
fn evaluate_telemetry(
    inference: &Inference,
    dict: Option<&GroundTruthDictionary>,
    tel: &Telemetry,
) -> Option<Evaluation> {
    let evaluation = tel.stage("evaluate", || dict.map(|d| evaluate(inference, d)));
    if let (Some(metrics), Some(eval)) = (tel.registry(), &evaluation) {
        record_eval_metrics(metrics, eval);
    }
    evaluation
}

/// Run the method from precomputed [`PathStats`] — the checkpointed-run
/// path, where statistics were accumulated file-by-file (see
/// [`crate::checkpoint::StatsAccumulator`]) instead of from one in-memory
/// observation list. Classification, evaluation, and reporting behave
/// exactly as in [`run_inference`].
pub fn run_inference_from_stats(
    stats: PathStats,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    ingest: Option<IngestReport>,
) -> PipelineResult {
    let inference = classify(&stats, siblings, cfg);
    let evaluation = dict.map(|d| evaluate(&inference, d));
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest,
        metrics: None,
    }
}

/// [`run_inference_from_stats`] under observation — the checkpointed-run
/// analogue of [`run_inference_store_telemetry`]. The supplied
/// [`IngestReport`] (typically the checkpoint's accumulated report, which
/// covers files ingested by *previous* runs too) is recorded under
/// `ingest/*` so a resumed run's snapshot still accounts for every file.
pub fn run_inference_from_stats_telemetry(
    stats: PathStats,
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    ingest: Option<IngestReport>,
    tel: &Telemetry,
) -> PipelineResult {
    if !tel.enabled() {
        return run_inference_from_stats(stats, siblings, cfg, dict, ingest);
    }
    let _pipeline = span!(
        tel.tracer,
        "pipeline",
        communities = stats.community_count()
    );
    if let (Some(metrics), Some(report)) = (tel.registry(), &ingest) {
        report.record_metrics(metrics);
    }
    let inference = classify_telemetry(&stats, siblings, cfg, tel);
    let evaluation = evaluate_telemetry(&inference, dict, tel);
    PipelineResult {
        stats,
        inference,
        evaluation,
        ingest,
        metrics: tel.snapshot(),
    }
}

/// [`run_inference`], carrying the [`IngestReport`] from a resilient MRT
/// read so downstream consumers can qualify the results ("inferred from
/// 97% of the archive") without a side channel.
pub fn run_inference_with_report(
    observations: &[Observation],
    siblings: &SiblingMap,
    cfg: &InferenceConfig,
    dict: Option<&GroundTruthDictionary>,
    ingest: IngestReport,
) -> PipelineResult {
    let mut result = run_inference(observations, siblings, cfg, dict);
    result.ingest = Some(ingest);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_dictionary::DictionaryEntry;
    use bgp_types::{Community, Intent};

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    #[test]
    fn end_to_end_with_evaluation() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
            obs("13 1299 64498", &[(1299, 2569)]),
        ];
        let dict = GroundTruthDictionary {
            entries: vec![
                DictionaryEntry {
                    pattern: "1299:2000[01]".parse().unwrap(),
                    intent: Intent::Information,
                },
                DictionaryEntry {
                    pattern: "1299:2569".parse().unwrap(),
                    intent: Intent::Action,
                },
            ],
        };
        let result = run_inference(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            Some(&dict),
        );
        assert_eq!(result.stats.community_count(), 3);
        let eval = result.evaluation.unwrap();
        assert_eq!(eval.total, 3);
        assert_eq!(eval.accuracy(), 1.0);
        let (action, info) = result.inference.intent_counts();
        assert_eq!((action, info), (1, 2));
    }

    #[test]
    fn with_report_carries_the_ingest_accounting() {
        let observations = vec![obs("10 1299 64496", &[(1299, 1)])];
        let report = IngestReport {
            records_read: 1,
            bytes_ok: 60,
            bytes_read: 60,
            ..IngestReport::default()
        };
        let result = run_inference_with_report(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            None,
            report.clone(),
        );
        assert_eq!(result.ingest, Some(report));
        assert_eq!(result.inference.labels.len(), 1);
    }

    #[test]
    fn from_stats_matches_from_observations() {
        use crate::checkpoint::StatsAccumulator;
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
            obs("13 1299 64498", &[(1299, 2569)]),
        ];
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig::default();
        let direct = run_inference(&observations, &siblings, &cfg, None);
        // Accumulate the same input as two "files", then classify from the
        // accumulator-derived stats: the checkpointed-run path.
        let mut acc = StatsAccumulator::new();
        acc.ingest(&observations[..2], &siblings, 1);
        acc.ingest(&observations[2..], &siblings, 1);
        let resumed = run_inference_from_stats(acc.to_stats(), &siblings, &cfg, None, None);
        assert_eq!(resumed.stats, direct.stats);
        assert_eq!(resumed.inference, direct.inference);
    }

    #[test]
    fn store_and_slice_entry_points_agree() {
        let observations = vec![
            obs("10 1299 64496", &[(1299, 20000), (1299, 20001)]),
            obs("11 1299 64497", &[(1299, 20000)]),
            obs("12 64496", &[(1299, 2569)]),
        ];
        let siblings = SiblingMap::default();
        let cfg = InferenceConfig::default();
        let via_slice = run_inference(&observations, &siblings, &cfg, None);
        let mut store = ObservationStore::new();
        for o in &observations {
            store.push(o);
        }
        let via_store = run_inference_store(&store, &siblings, &cfg, None);
        assert_eq!(via_slice, via_store);
    }

    #[test]
    fn runs_without_dictionary() {
        let observations = vec![obs("10 1299 64496", &[(1299, 1)])];
        let result = run_inference(
            &observations,
            &SiblingMap::default(),
            &InferenceConfig::default(),
            None,
        );
        assert!(result.evaluation.is_none());
        assert_eq!(result.inference.labels.len(), 1);
    }
}
