//! Fine-grained category inference — a prototype of the paper's stated
//! long-term goal (§7: "automated inference of these dictionaries").
//!
//! The coarse action/information split is the paper's contribution; this
//! module takes the next step it motivates, pushing each labeled community
//! into a sub-category of the Fig 2 taxonomy using observable routing
//! features:
//!
//! * **Prepend** (action): paths through the owner that carry the community
//!   show the owner's ASN repeated consecutively — the visible footprint of
//!   community-triggered prepending.
//! * **Blackhole/NoExport** (action): the owner never propagates routes
//!   carrying the community at all (zero on-path sightings).
//! * **Relationship** (information): every on-path sighting enters the
//!   owner from the same neighbor class (customer, peer, or provider),
//!   while the ingress geography stays diffuse.
//! * **Location** (information): ingress geography concentrates well above
//!   the owner's own baseline.
//! * **OtherAction / OtherInfo**: everything without a confident signal
//!   (local-pref overrides, selective suppression, ROV tags, interface
//!   tags, …).
//!
//! This is deliberately conservative: it never contradicts the coarse
//! label, and falls back to the `Other*` buckets when evidence is weak.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_relationships::{InferredRelationships, RelView};
use bgp_types::fx::{FxHashMap, FxHashSet};
use bgp_types::{AsPath, Asn, Community, Intent, Observation};

use crate::classify::Inference;

/// A fine-grained community category (a coarse cut of Fig 2's leaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FineCategory {
    /// Action: AS-path prepending.
    Prepend,
    /// Action: blackholing / do-not-export-at-all.
    Blackhole,
    /// Action without a distinctive routing footprint (local-pref,
    /// selective suppression/announcement, …).
    OtherAction,
    /// Information: where the route was received.
    Location,
    /// Information: what kind of neighbor the route came from.
    Relationship,
    /// Information without a distinctive footprint (ROV status, ingress
    /// interface, …).
    OtherInfo,
}

impl FineCategory {
    /// The coarse label this category belongs to.
    pub fn intent(self) -> Intent {
        match self {
            FineCategory::Prepend | FineCategory::Blackhole | FineCategory::OtherAction => {
                Intent::Action
            }
            FineCategory::Location | FineCategory::Relationship | FineCategory::OtherInfo => {
                Intent::Information
            }
        }
    }
}

/// Tuning knobs for the category rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryConfig {
    /// Minimum on-path sightings before info sub-categories are attempted.
    pub min_paths: u32,
    /// Fraction of on-path sightings that must show consecutive owner
    /// repeats to call a community Prepend.
    pub prepend_share: f64,
    /// Single neighbor-class share required for Relationship.
    pub relationship_share: f64,
    /// Modal-region share required for Location.
    pub location_concentration: f64,
    /// Required lift of that share over the owner's own geographic
    /// baseline (a regional network concentrates everything).
    pub location_lift: f64,
}

impl Default for CategoryConfig {
    fn default() -> Self {
        CategoryConfig {
            min_paths: 5,
            prepend_share: 0.10,
            relationship_share: 0.97,
            location_concentration: 0.65,
            location_lift: 0.25,
        }
    }
}

/// Per-community routing features the rules consume.
#[derive(Debug, Clone, Default)]
struct Features {
    on_paths: u32,
    prepended_paths: u32,
    rel: [u32; 3], // customer, peer, provider
    regions: FxHashMap<Option<u8>, u32>,
}

/// Whether `asn` appears at least twice consecutively in the collapsed-free
/// path (i.e. was prepended).
fn has_owner_prepend(path: &AsPath, asn: Asn) -> bool {
    let mut run = 0u32;
    for a in path.iter() {
        if a == asn {
            run += 1;
            if run >= 2 {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

/// Infer a fine-grained category for every community the coarse method
/// labeled. `as_regions` plays the role of public geolocation data.
pub fn infer_categories(
    observations: &[Observation],
    inference: &Inference,
    relationships: &InferredRelationships,
    as_regions: &HashMap<Asn, u8>,
    cfg: &CategoryConfig,
) -> HashMap<Community, FineCategory> {
    // Gather features over unique (path, community) pairs where the owner
    // is on-path.
    let mut path_ids: FxHashMap<&AsPath, u32> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, Community)> = FxHashSet::default();
    let mut owner_seen: FxHashSet<(u32, u16)> = FxHashSet::default();
    let mut features: FxHashMap<Community, Features> = FxHashMap::default();
    let mut owner_baseline: FxHashMap<u16, FxHashMap<Option<u8>, u32>> = FxHashMap::default();
    for obs in observations {
        let next_id = path_ids.len() as u32;
        let id = *path_ids.entry(&obs.path).or_insert(next_id);
        for &c in &obs.communities {
            if !inference.labels.contains_key(&c) {
                continue;
            }
            let owner = Asn::new(c.asn as u32);
            if !obs.path.contains(owner) || !seen.insert((id, c)) {
                continue;
            }
            let f = features.entry(c).or_default();
            f.on_paths += 1;
            if has_owner_prepend(&obs.path, owner) {
                f.prepended_paths += 1;
            }
            let next = obs.path.next_toward_origin(owner);
            match next.and_then(|n| relationships.view(owner, n)) {
                Some(RelView::Customer) => f.rel[0] += 1,
                Some(RelView::Peer) => f.rel[1] += 1,
                Some(RelView::Provider) => f.rel[2] += 1,
                None => {}
            }
            let region = next.and_then(|n| as_regions.get(&n).copied());
            *f.regions.entry(region).or_insert(0) += 1;
            if owner_seen.insert((id, c.asn)) {
                *owner_baseline
                    .entry(c.asn)
                    .or_default()
                    .entry(region)
                    .or_insert(0) += 1;
            }
        }
    }

    let modal_share = |hist: &FxHashMap<Option<u8>, u32>| -> f64 {
        let total: u32 = hist.values().sum();
        if total == 0 {
            return 0.0;
        }
        let modal = hist
            .iter()
            .filter_map(|(r, n)| r.map(|_| *n))
            .max()
            .unwrap_or(0);
        modal as f64 / total as f64
    };

    let mut out = HashMap::new();
    for (&c, &intent) in &inference.labels {
        let f = features.get(&c);
        let category = match intent {
            Intent::Action => {
                match f {
                    // Never seen on-path at all: the owner refuses to
                    // propagate routes carrying it.
                    None => FineCategory::Blackhole,
                    Some(f) if f.on_paths == 0 => FineCategory::Blackhole,
                    Some(f)
                        if f.prepended_paths as f64 / f.on_paths as f64 >= cfg.prepend_share
                            && f.prepended_paths >= 2 =>
                    {
                        FineCategory::Prepend
                    }
                    Some(_) => FineCategory::OtherAction,
                }
            }
            Intent::Information => match f {
                Some(f) if f.on_paths >= cfg.min_paths => {
                    let rel_total: u32 = f.rel.iter().sum();
                    let rel_max = *f.rel.iter().max().expect("three classes");
                    let rel_share = if rel_total == 0 {
                        0.0
                    } else {
                        rel_max as f64 / rel_total as f64
                    };
                    let concentration = modal_share(&f.regions);
                    let baseline = owner_baseline.get(&c.asn).map(modal_share).unwrap_or(0.0);
                    let lift = concentration - baseline;
                    if concentration >= cfg.location_concentration && lift >= cfg.location_lift {
                        FineCategory::Location
                    } else if rel_share >= cfg.relationship_share
                        && rel_total >= cfg.min_paths
                        && lift < cfg.location_lift
                    {
                        FineCategory::Relationship
                    } else {
                        FineCategory::OtherInfo
                    }
                }
                _ => FineCategory::OtherInfo,
            },
        };
        out.insert(c, category);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Prefix;

    fn obs(path: &str, comms: &[(u16, u16)]) -> Observation {
        Observation {
            vp: path.split_whitespace().next().unwrap().parse().unwrap(),
            prefix: "10.0.0.0/24".parse::<Prefix>().unwrap(),
            path: path.parse().unwrap(),
            communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
            large_communities: Vec::new(),
            time: 0,
        }
    }

    fn label(inference: &mut Inference, c: (u16, u16), intent: Intent) {
        inference.labels.insert(Community::new(c.0, c.1), intent);
    }

    fn rels() -> InferredRelationships {
        // 1299's customers 100..120, peers 200..205 — built from paths.
        let mut paths: Vec<AsPath> = Vec::new();
        for s in 300..340u32 {
            paths.push(format!("{s} 1299 {}", 100 + s % 20).parse().unwrap());
            paths.push(format!("{s} 1299 {}", 100 + (s + 3) % 20).parse().unwrap());
        }
        for p in 200..205u32 {
            paths.push(format!("310 1299 {p} 900").parse().unwrap());
            paths.push(format!("311 1299 {p} 901").parse().unwrap());
        }
        bgp_relationships::infer_relationships(
            paths.iter(),
            &bgp_relationships::InferConfig::default(),
        )
    }

    #[test]
    fn prepend_detected_from_repeated_owner() {
        let mut inference = Inference::default();
        label(&mut inference, (1299, 2561), Intent::Action);
        let observations = vec![
            obs("10 1299 1299 1299 100", &[(1299, 2561)]),
            obs("11 1299 1299 1299 100", &[(1299, 2561)]),
            obs("12 1299 101", &[(1299, 2561)]),
        ];
        let cats = infer_categories(
            &observations,
            &inference,
            &rels(),
            &HashMap::new(),
            &CategoryConfig::default(),
        );
        assert_eq!(cats[&Community::new(1299, 2561)], FineCategory::Prepend);
    }

    #[test]
    fn never_propagated_is_blackhole() {
        let mut inference = Inference::default();
        label(&mut inference, (1299, 666), Intent::Action);
        // Only off-path sightings (the owner never exports it).
        let observations = vec![obs("10 100", &[(1299, 666)]), obs("11 101", &[(1299, 666)])];
        let cats = infer_categories(
            &observations,
            &inference,
            &rels(),
            &HashMap::new(),
            &CategoryConfig::default(),
        );
        assert_eq!(cats[&Community::new(1299, 666)], FineCategory::Blackhole);
    }

    #[test]
    fn plain_action_is_other() {
        let mut inference = Inference::default();
        label(&mut inference, (1299, 50), Intent::Action);
        let observations: Vec<Observation> = (0..6)
            .map(|i| obs(&format!("{} 1299 10{}", 10 + i, i % 3), &[(1299, 50)]))
            .collect();
        let cats = infer_categories(
            &observations,
            &inference,
            &rels(),
            &HashMap::new(),
            &CategoryConfig::default(),
        );
        assert_eq!(cats[&Community::new(1299, 50)], FineCategory::OtherAction);
    }

    #[test]
    fn single_class_diffuse_geo_is_relationship() {
        let relationships = rels();
        let mut inference = Inference::default();
        label(&mut inference, (1299, 40000), Intent::Information);
        // Always learned from customers (100..110), spread across regions.
        let observations: Vec<Observation> = (0..10)
            .map(|i| obs(&format!("{} 1299 {}", 20 + i, 100 + i), &[(1299, 40000)]))
            .collect();
        let as_regions: HashMap<Asn, u8> = (100..110u32)
            .map(|a| (Asn::new(a), (a % 5) as u8))
            .collect();
        let cats = infer_categories(
            &observations,
            &inference,
            &relationships,
            &as_regions,
            &CategoryConfig::default(),
        );
        assert_eq!(
            cats[&Community::new(1299, 40000)],
            FineCategory::Relationship
        );
    }

    #[test]
    fn concentrated_geo_with_lift_is_location() {
        let relationships = rels();
        let mut inference = Inference::default();
        label(&mut inference, (1299, 20000), Intent::Information);
        label(&mut inference, (1299, 1), Intent::Information);
        // 20000 rides routes from region-0 neighbors; the owner's baseline
        // is diffuse thanks to community 1299:1 on other-region routes.
        let mut observations: Vec<Observation> = (0..8)
            .map(|i| {
                obs(
                    &format!("{} 1299 {}", 30 + i, 100 + i % 4),
                    &[(1299, 20000)],
                )
            })
            .collect();
        for i in 0..12 {
            observations.push(obs(&format!("{} 1299 {}", 50 + i, 110 + i), &[(1299, 1)]));
        }
        let mut as_regions: HashMap<Asn, u8> = (100..104u32).map(|a| (Asn::new(a), 0u8)).collect();
        as_regions.extend((110..122u32).map(|a| (Asn::new(a), (a % 5) as u8)));
        let cats = infer_categories(
            &observations,
            &inference,
            &relationships,
            &as_regions,
            &CategoryConfig::default(),
        );
        assert_eq!(cats[&Community::new(1299, 20000)], FineCategory::Location);
    }

    #[test]
    fn sparse_info_falls_back_to_other() {
        let mut inference = Inference::default();
        label(&mut inference, (1299, 430), Intent::Information);
        let observations = vec![obs("10 1299 100", &[(1299, 430)])];
        let cats = infer_categories(
            &observations,
            &inference,
            &rels(),
            &HashMap::new(),
            &CategoryConfig::default(),
        );
        assert_eq!(cats[&Community::new(1299, 430)], FineCategory::OtherInfo);
    }

    #[test]
    fn categories_respect_coarse_intent() {
        let mut inference = Inference::default();
        label(&mut inference, (1299, 1), Intent::Information);
        label(&mut inference, (1299, 2), Intent::Action);
        let observations = vec![obs("10 1299 100", &[(1299, 1), (1299, 2)])];
        let cats = infer_categories(
            &observations,
            &inference,
            &rels(),
            &HashMap::new(),
            &CategoryConfig::default(),
        );
        for (c, cat) in &cats {
            assert_eq!(cat.intent(), inference.labels[c]);
        }
    }
}
