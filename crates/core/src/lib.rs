//! **The paper's contribution**: coarse-grained inference of BGP community
//! intent (action vs information) from public BGP data.
//!
//! Pipeline (§5.2, Fig 8):
//!
//! 1. [`stats`] — reduce observations to per-community path statistics: how
//!    many *unique AS paths* carry the community with its owner (or a
//!    sibling) **on-path** vs **off-path**, plus which ASNs appear in paths
//!    at all.
//! 2. [`cluster`] — group each AS's observed `β` values into numeric
//!    ranges with a minimum-gap rule (default 140), approximating the
//!    contiguous ranges operators allocate.
//! 3. [`classify`] — label each cluster by its on-path:off-path ratio
//!    (threshold 160:1), excluding private-ASN and never-on-path (IXP
//!    route server) communities, then apply cluster labels to communities.
//! 4. [`eval`] — score inferences against a ground-truth dictionary.
//!
//! [`baseline`] builds the ground-truth-regex clusters of §5.1 (Fig 6), and
//! [`features`] computes the customer:peer feature the paper shows is *not*
//! sufficient (Fig 7). [`pipeline`] wires everything together, and
//! [`watch`] runs the same method as a crash-tolerant streaming daemon
//! over rolling time windows.
//!
//! # Example
//!
//! The Fig 5 scenario from the paper, reduced to three observations:
//! AS 64496 signals action community `1299:2569` on all its announcements,
//! and AS 1299 tags routes it receives in Boston with `1299:35130`.
//!
//! ```
//! use bgp_intent::{run_inference, InferenceConfig};
//! use bgp_relationships::SiblingMap;
//! use bgp_types::{Community, Intent, Observation};
//!
//! let obs = |path: &str, comms: &[(u16, u16)]| Observation {
//!     vp: path.split_whitespace().next().unwrap().parse().unwrap(),
//!     prefix: "192.0.2.0/24".parse().unwrap(),
//!     path: path.parse().unwrap(),
//!     communities: comms.iter().map(|&(a, b)| Community::new(a, b)).collect(),
//!     large_communities: Vec::new(),
//!     time: 0,
//! };
//! let observations = vec![
//!     obs("65541 3356 1299 64496", &[(1299, 35130)]),
//!     obs("65432 64496", &[(1299, 2569)]),
//!     obs("65269 7018 1299 64496", &[(1299, 2569), (1299, 35130)]),
//! ];
//! let result = run_inference(
//!     &observations,
//!     &SiblingMap::default(),
//!     &InferenceConfig::default(),
//!     None,
//! );
//! assert_eq!(
//!     result.inference.label(Community::new(1299, 2569)),
//!     Some(Intent::Action) // seen off-path via 65432
//! );
//! assert_eq!(
//!     result.inference.label(Community::new(1299, 35130)),
//!     Some(Intent::Information) // 1299 always on-path
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod baseline;
pub mod categories;
pub mod checkpoint;
pub mod classify;
pub mod cluster;
pub mod eval;
pub mod features;
pub mod large;
pub mod pipeline;
pub mod stats;
pub mod supervisor;
pub mod watch;

pub use artifact::{
    check_store, confidence, label_rows, write_inference_artifact, Anomaly, AnomalyKind,
    CheckReport,
};
pub use categories::{infer_categories, CategoryConfig, FineCategory};
pub use checkpoint::{
    fingerprint_file, Checkpoint, CheckpointLoadError, CompletedFile, FileFingerprint,
    StatsAccumulator, StatsSnapshot,
};
pub use classify::{classify_parallelism, Exclusion, Inference, InferenceConfig};
pub use cluster::gap_clusters;
pub use eval::Evaluation;
pub use large::{classify_large, LargeInference};
pub use pipeline::{
    run_inference, run_inference_from_stats, run_inference_from_stats_telemetry,
    run_inference_store, run_inference_store_telemetry, run_inference_with_report, PipelineResult,
    RATIO_BUCKETS,
};
pub use stats::{PathCounts, PathStats};
pub use supervisor::{
    plan_shards, supervise, supervise_with_shutdown, validate_artifact, ShardEvent,
    ShardFailureKind, ShardOutcome, ShardSpec, SupervisorConfig,
};
pub use watch::{
    run_watch, WatchCheckpoint, WatchOptions, WatchOutcome, WindowConfig, WindowedClassifier,
};
