//! Ground-truth accuracy harness: simulate a world, round-trip it through
//! MRT, run the full inference pipeline, and score the labels against the
//! simulator's *complete* ground truth (`Scenario::policies` — not the
//! partial documented dictionary used for §6-style evaluation).
//!
//! The floors are calibrated well under the observed scores on these
//! exact seeds (see the table in the test), so they catch genuine
//! pipeline regressions — a broken ratio threshold, a lost off-path
//! signal, an ingest bug dropping observations — rather than simulator
//! noise. On failure the full metrics snapshot (confusion matrix
//! included) is dumped as JSON for diagnosis.

use bgp_experiments::{Scenario, ScenarioConfig};
use bgp_intent::{run_inference_store_telemetry, InferenceConfig};
use bgp_types::obs::Telemetry;
use bgp_types::store::ObservationStore;
use bgp_types::Intent;

/// Per-seed accuracy scores against complete ground truth.
#[derive(Debug)]
struct Scores {
    /// Labeled communities whose owner defined them (scoreable).
    scored: usize,
    /// Of the scored, how many labels matched the truth.
    correct: usize,
    /// `[truth][inferred]`, `0 = action`, `1 = information`.
    confusion: [[usize; 2]; 2],
}

impl Scores {
    fn accuracy(&self) -> f64 {
        self.correct as f64 / self.scored.max(1) as f64
    }

    /// Precision of the action class: of everything labeled action, how
    /// much truly is.
    fn action_precision(&self) -> f64 {
        let tp = self.confusion[0][0];
        let fp = self.confusion[1][0];
        tp as f64 / (tp + fp).max(1) as f64
    }

    /// Recall of the action class: of all true actions we labeled, how
    /// many we got.
    fn action_recall(&self) -> f64 {
        let tp = self.confusion[0][0];
        let fnn = self.confusion[0][1];
        tp as f64 / (tp + fnn).max(1) as f64
    }
}

/// Simulate → MRT encode → parse → infer, then score every label with
/// known truth and record the tallies in the run's metrics registry.
fn run_seed(seed: u64) -> (Scores, Telemetry) {
    let scenario = Scenario::build(&ScenarioConfig {
        seed,
        scale: 0.1, // ~100 ASes; debug-mode friendly (≈1 s per seed)
        documented: 12,
        ..ScenarioConfig::default()
    });
    // collect() writes the RIB + churn days to in-memory MRT and parses
    // it back, so the wire codecs sit inside the scored path.
    let observations = scenario.collect(3);
    let store = ObservationStore::from_observations(&observations);

    let tel = Telemetry::with_metrics();
    let result = run_inference_store_telemetry(
        &store,
        &scenario.siblings,
        &InferenceConfig::default(),
        Some(&scenario.dict),
        &tel,
    );

    let mut scores = Scores {
        scored: 0,
        correct: 0,
        confusion: [[0; 2]; 2],
    };
    for (&community, &inferred) in &result.inference.labels {
        let Some(truth) = scenario.policies.intent_of(community) else {
            continue; // undefined by its owner: unscoreable, not wrong
        };
        let row = |i: Intent| match i {
            Intent::Action => 0,
            Intent::Information => 1,
        };
        scores.scored += 1;
        scores.confusion[row(truth)][row(inferred)] += 1;
        if truth == inferred {
            scores.correct += 1;
        }
    }

    let metrics = tel.registry().expect("with_metrics carries a registry");
    metrics.counter("accuracy/scored").add(scores.scored as u64);
    metrics
        .counter("accuracy/correct")
        .add(scores.correct as u64);
    for (truth, truth_name) in ["action", "information"].iter().enumerate() {
        for (inferred, inferred_name) in ["action", "information"].iter().enumerate() {
            metrics
                .counter(&format!(
                    "accuracy/confusion/{truth_name}_as_{inferred_name}"
                ))
                .add(scores.confusion[truth][inferred] as u64);
        }
    }
    (scores, tel)
}

/// Dump the metrics snapshot (confusion matrix and all pipeline
/// accounting) so a floor failure is diagnosable from the test log alone.
fn dump_metrics(seed: u64, tel: &Telemetry) {
    let snapshot = tel.snapshot().expect("registry present");
    let json = serde_json::to_string_pretty(&snapshot.deterministic())
        .expect("metrics snapshot serializes");
    eprintln!("--- metrics for seed {seed} ---\n{json}");
}

#[test]
fn inference_meets_accuracy_floors_on_three_seeds() {
    // Observed on these exact seeds (scale 0.1, 12 documented, 3 days):
    //
    //   seed       scored  accuracy  action-precision  action-recall
    //   20230501     410     0.893        0.868             0.857
    //   42           451     0.854        0.779             0.876
    //   7            455     0.815        0.733             0.831
    //
    // Floors leave a wide margin under those; dropping below any of them
    // means the method broke, not that the world got unlucky.
    const MIN_SCORED: usize = 150;
    const MIN_ACCURACY: f64 = 0.70;
    const MIN_ACTION_PRECISION: f64 = 0.60;
    const MIN_ACTION_RECALL: f64 = 0.65;

    for seed in [20230501u64, 42, 7] {
        let (scores, tel) = run_seed(seed);
        let ok = scores.scored >= MIN_SCORED
            && scores.accuracy() >= MIN_ACCURACY
            && scores.action_precision() >= MIN_ACTION_PRECISION
            && scores.action_recall() >= MIN_ACTION_RECALL;
        if !ok {
            dump_metrics(seed, &tel);
            panic!(
                "seed {seed}: accuracy floors violated: scored={} (floor {MIN_SCORED}), \
                 accuracy={:.3} (floor {MIN_ACCURACY}), action precision={:.3} \
                 (floor {MIN_ACTION_PRECISION}), action recall={:.3} (floor {MIN_ACTION_RECALL}); \
                 confusion [truth][inferred]={:?}",
                scores.scored,
                scores.accuracy(),
                scores.action_precision(),
                scores.action_recall(),
                scores.confusion,
            );
        }
        eprintln!(
            "seed {seed}: scored={} accuracy={:.3} action_precision={:.3} action_recall={:.3}",
            scores.scored,
            scores.accuracy(),
            scores.action_precision(),
            scores.action_recall(),
        );
    }
}

#[test]
fn accuracy_metrics_land_in_registry() {
    let (scores, tel) = run_seed(20230501);
    let snapshot = tel.snapshot().expect("registry present");
    assert_eq!(
        snapshot.counters["accuracy/scored"], scores.scored as u64,
        "registry tally must match the struct"
    );
    assert_eq!(
        snapshot.counters["accuracy/confusion/action_as_action"],
        scores.confusion[0][0] as u64
    );
    // The pipeline's own metrics ride along in the same registry.
    assert!(snapshot.counters["stats/communities"] > 0);
    assert!(snapshot.counters["classify/clusters"] > 0);
}
