//! Property-based tests: invariants of clustering, statistics, and
//! classification.

use proptest::prelude::*;

use bgp_intent::classify::{classify, InferenceConfig};
use bgp_intent::cluster::gap_clusters;
use bgp_intent::stats::{reference_stats, PathCounts, PathStats};
use bgp_intent::StatsAccumulator;
use bgp_relationships::SiblingMap;
use bgp_types::store::ObservationStore;
use bgp_types::{AsPath, Asn, Community, Observation, PathSegment};

fn arb_betas() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::btree_set(any::<u16>(), 0..80).prop_map(|s| s.into_iter().collect())
}

fn arb_observations() -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec(
        (
            1u32..50,                               // vp
            prop::collection::vec(2u32..200, 1..5), // path tail
            prop::collection::vec((1u16..300, any::<u16>()), 0..6),
        ),
        0..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(vp, tail, comms)| {
                let mut communities: Vec<Community> = comms
                    .into_iter()
                    .map(|(a, b)| Community::new(a, b))
                    .collect();
                communities.sort_unstable();
                communities.dedup();
                Observation {
                    vp: Asn::new(vp),
                    prefix: "10.0.0.0/24".parse().unwrap(),
                    path: AsPath::from_sequence(std::iter::once(vp).chain(tail).map(Asn::new)),
                    communities,
                    large_communities: Vec::new(),
                    time: 0,
                }
            })
            .collect()
    })
}

/// Disjoint sibling organizations over the same small ASN range the messy
/// observations draw from, so on-path decisions routinely go through a
/// sibling rather than the owner itself.
fn arb_siblings() -> impl Strategy<Value = SiblingMap> {
    prop::collection::btree_set(1u32..40, 0..12).prop_map(|asns| {
        let asns: Vec<u32> = asns.into_iter().collect();
        SiblingMap::from_orgs(
            asns.chunks(3)
                .map(|org| org.iter().map(|&a| Asn::new(a)).collect::<Vec<_>>()),
        )
    })
}

/// Observations exercising everything the interned kernel must get right:
/// duplicate rows, prepended hops, `AS_SET` segments, and community lists
/// that recur across rows in different orders (distinct store identities).
fn arb_messy_observations() -> impl Strategy<Value = Vec<Observation>> {
    let segment = (any::<bool>(), prop::collection::vec(1u32..40, 1..4));
    let row = (
        1u32..40,                                         // vp / head ASN
        0usize..3,                                        // head prepend count
        prop::collection::vec(segment, 0..3),             // tail, sets included
        prop::collection::vec((1u16..40, 0u16..6), 0..6), // communities, unsorted
    );
    prop::collection::vec(row, 0..40).prop_map(|rows| {
        rows.into_iter()
            .map(|(vp, prepend, tail, comms)| {
                let mut segments = vec![PathSegment::Sequence(vec![Asn::new(vp); 1 + prepend])];
                segments.extend(tail.into_iter().map(|(set, members)| {
                    let members: Vec<Asn> = members.into_iter().map(Asn::new).collect();
                    if set {
                        PathSegment::Set(members)
                    } else {
                        PathSegment::Sequence(members)
                    }
                }));
                Observation {
                    vp: Asn::new(vp),
                    prefix: "10.0.0.0/24".parse().unwrap(),
                    path: AsPath::from_segments(segments),
                    communities: comms
                        .into_iter()
                        .map(|(a, b)| Community::new(a, b))
                        .collect(),
                    large_communities: Vec::new(),
                    time: 0,
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn clusters_partition_the_input(betas in arb_betas(), gap in 0u16..2000) {
        let clusters = gap_clusters(7, &betas, gap);
        let flattened: Vec<u16> =
            clusters.iter().flat_map(|c| c.betas.iter().copied()).collect();
        prop_assert_eq!(flattened, betas);
    }

    #[test]
    fn cluster_boundaries_respect_gap(betas in arb_betas(), gap in 0u16..2000) {
        let clusters = gap_clusters(7, &betas, gap);
        for c in &clusters {
            for w in c.betas.windows(2) {
                prop_assert!(w[1] - w[0] <= gap, "intra-cluster gap exceeds {gap}");
            }
        }
        for w in clusters.windows(2) {
            let last = *w[0].betas.last().unwrap();
            let first = w[1].betas[0];
            prop_assert!(first - last > gap, "adjacent clusters closer than {gap}");
        }
    }

    #[test]
    fn larger_gap_never_more_clusters(betas in arb_betas(), g1 in 0u16..1000, g2 in 0u16..1000) {
        let (small, large) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let a = gap_clusters(7, &betas, small).len();
        let b = gap_clusters(7, &betas, large).len();
        prop_assert!(b <= a, "gap {large} made {b} clusters > gap {small}'s {a}");
    }

    #[test]
    fn stats_counts_are_bounded_by_unique_paths(observations in arb_observations()) {
        let stats = PathStats::from_observations(&observations, &SiblingMap::default());
        for counts in stats.per_community.values() {
            prop_assert!((counts.on as usize) <= stats.unique_paths);
            prop_assert!((counts.off as usize) <= stats.unique_paths);
            prop_assert!((counts.on + counts.off) as usize <= stats.unique_paths);
        }
        prop_assert!(stats.unique_paths <= observations.len().max(1));
    }

    #[test]
    fn every_observed_community_is_labeled_or_excluded(observations in arb_observations()) {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(&observations, &siblings);
        let inference = classify(&stats, &siblings, &InferenceConfig::default());
        for c in stats.per_community.keys() {
            let labeled = inference.labels.contains_key(c);
            let excluded = inference.excluded.contains_key(c);
            prop_assert!(labeled ^ excluded, "{c} labeled={labeled} excluded={excluded}");
        }
        prop_assert_eq!(
            inference.labels.len() + inference.excluded.len(),
            stats.community_count()
        );
    }

    #[test]
    fn cluster_labels_agree_with_community_labels(observations in arb_observations()) {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(&observations, &siblings);
        let inference = classify(&stats, &siblings, &InferenceConfig::default());
        for lc in &inference.clusters {
            for &beta in &lc.cluster.betas {
                let c = Community::new(lc.cluster.asn, beta);
                prop_assert_eq!(inference.labels.get(&c), Some(&lc.label));
            }
        }
    }

    #[test]
    fn gap_zero_yields_singleton_clusters(observations in arb_observations()) {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(&observations, &siblings);
        let cfg = InferenceConfig { min_gap: 0, ..InferenceConfig::default() };
        let inference = classify(&stats, &siblings, &cfg);
        for lc in &inference.clusters {
            prop_assert_eq!(lc.cluster.betas.len(), 1);
        }
    }

    #[test]
    fn ratio_is_finite_and_nonnegative(on in any::<u32>(), off in any::<u32>()) {
        let r = PathCounts { on, off }.ratio();
        prop_assert!(r.is_finite());
        prop_assert!(r >= 0.0);
    }

    #[test]
    fn kernel_matches_reference_on_messy_inputs(
        observations in arb_messy_observations(),
        siblings in arb_siblings(),
    ) {
        let kernel = PathStats::from_observations(&observations, &siblings);
        let reference = reference_stats(&observations, &siblings);
        prop_assert_eq!(kernel, reference);
    }

    #[test]
    fn kernel_identical_at_any_thread_count(
        observations in arb_messy_observations(),
        siblings in arb_siblings(),
    ) {
        let store = ObservationStore::from_observations(&observations);
        let base = PathStats::from_store(&store, &siblings);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &PathStats::from_store_threaded(&store, &siblings, threads),
                &base
            );
            prop_assert_eq!(
                &PathStats::from_observations_threaded(&observations, &siblings, threads),
                &base
            );
        }
    }

    #[test]
    fn checkpointed_store_ingest_is_deterministic_and_resumable(
        observations in arb_messy_observations(),
        siblings in arb_siblings(),
    ) {
        // Reference run: the retained slice fold, single-threaded, with a
        // snapshot after every "file" (chunk).
        let chunk = observations.len().div_ceil(3).max(1);
        let mut slice_acc = StatsAccumulator::new();
        for file in observations.chunks(chunk) {
            slice_acc.ingest(file, &siblings, 1);
            slice_acc.snapshot();
        }
        let expected = slice_acc.snapshot().clone();
        let expected_stats = slice_acc.to_stats();

        for threads in [1usize, 2, 8] {
            let mut acc = StatsAccumulator::new();
            let mut resumed: Option<StatsAccumulator> = None;
            for (i, file) in observations.chunks(chunk).enumerate() {
                let store = ObservationStore::from_observations(file);
                acc.ingest_store(&store, &siblings, threads);
                let snap = acc.snapshot().clone();
                if i == 0 {
                    // Simulate a crash right after the first checkpoint:
                    // restart from its bytes and replay the remaining files.
                    resumed = Some(StatsAccumulator::from_snapshot(&snap));
                } else if let Some(r) = resumed.as_mut() {
                    r.ingest_store(&store, &siblings, threads);
                    r.snapshot();
                }
            }
            prop_assert_eq!(acc.snapshot(), &expected);
            prop_assert_eq!(&acc.to_stats(), &expected_stats);
            if let Some(mut r) = resumed {
                prop_assert_eq!(r.snapshot(), &expected);
            }
        }
    }

    #[test]
    fn classification_is_deterministic(observations in arb_observations()) {
        let siblings = SiblingMap::default();
        let stats = PathStats::from_observations(&observations, &siblings);
        let a = classify(&stats, &siblings, &InferenceConfig::default());
        let b = classify(&stats, &siblings, &InferenceConfig::default());
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.excluded, b.excluded);
    }
}
