//! Property-based tests for the core BGP types.

use proptest::prelude::*;

use bgp_types::obs::{FixedHistogram, Histogram};
use bgp_types::{AsPath, Asn, Community, LargeCommunity, PathSegment, Prefix};

fn arb_asn() -> impl Strategy<Value = Asn> {
    any::<u32>().prop_map(Asn::new)
}

fn arb_community() -> impl Strategy<Value = Community> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Community::new(a, b))
}

fn arb_segment() -> impl Strategy<Value = PathSegment> {
    prop_oneof![
        prop::collection::vec(arb_asn(), 1..8).prop_map(PathSegment::Sequence),
        prop::collection::vec(arb_asn(), 1..4).prop_map(PathSegment::Set),
    ]
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_segment(), 0..4).prop_map(AsPath::from_segments)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
            Prefix::new(std::net::Ipv4Addr::from(addr).into(), len).expect("len <= 32")
        }),
        (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
            Prefix::new(std::net::Ipv6Addr::from(addr).into(), len).expect("len <= 128")
        }),
    ]
}

/// Strictly increasing, non-empty bucket bounds.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(1u64..10_000, 1..12).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn sharded_histogram_merge_equals_single_threaded_fill(
        bounds in arb_bounds(),
        // (value, shard) pairs: which worker observes each value.
        samples in prop::collection::vec((0u64..20_000, 0usize..5), 0..64),
    ) {
        // Single-threaded reference: every value into one histogram.
        let direct = Histogram::new(&bounds);
        for &(value, _) in &samples {
            direct.observe(value);
        }

        // Sharded: route each value to its worker's private shard (some
        // shards stay empty), then merge in an arbitrary-but-fixed order.
        let sharded = Histogram::new(&bounds);
        let mut shards: Vec<FixedHistogram> = (0..5).map(|_| sharded.shard()).collect();
        for &(value, shard) in &samples {
            shards[shard].observe(value);
        }
        for shard in &shards {
            sharded.merge_shard(shard);
        }

        prop_assert_eq!(sharded.snapshot(), direct.snapshot());
    }

    #[test]
    fn histogram_totals_match_input(
        bounds in arb_bounds(),
        values in prop::collection::vec(0u64..20_000, 0..64),
    ) {
        let hist = Histogram::new(&bounds);
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), values.len() as u64);
        // One overflow bucket past the last bound.
        prop_assert_eq!(snap.counts.len(), bounds.len() + 1);
    }

    #[test]
    fn saturating_shard_merge_never_wraps(
        bounds in arb_bounds(),
        n in 1u64..4,
    ) {
        // Drive a shard's counters to the brink, then merge repeatedly:
        // totals must pin at u64::MAX instead of wrapping.
        let hist = Histogram::new(&bounds);
        let mut shard = hist.shard();
        shard.observe_n(0, u64::MAX - 1);
        for _ in 0..n {
            hist.merge_shard(&shard);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, if n == 1 { u64::MAX - 1 } else { u64::MAX });
        prop_assert_eq!(snap.counts[0], snap.count);
    }

    #[test]
    fn community_u32_roundtrip(c in arb_community()) {
        prop_assert_eq!(Community::from_u32(c.to_u32()), c);
    }

    #[test]
    fn community_display_parse_roundtrip(c in arb_community()) {
        let s = c.to_string();
        prop_assert_eq!(s.parse::<Community>().unwrap(), c);
    }

    #[test]
    fn large_community_display_parse_roundtrip(
        g in any::<u32>(), l1 in any::<u32>(), l2 in any::<u32>()
    ) {
        let lc = LargeCommunity::new(g, l1, l2);
        prop_assert_eq!(lc.to_string().parse::<LargeCommunity>().unwrap(), lc);
    }

    #[test]
    fn asn_display_parse_roundtrip(asn in arb_asn()) {
        prop_assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn asn_private_and_reserved_are_disjoint(asn in arb_asn()) {
        prop_assert!(!(asn.is_private() && asn.is_reserved()));
        prop_assert_eq!(asn.is_public(), !asn.is_private() && !asn.is_reserved());
    }

    #[test]
    fn prefix_is_canonical_and_self_contained(p in arb_prefix()) {
        // Reconstructing from the canonical address is a no-op.
        let again = Prefix::new(p.addr(), p.len()).unwrap();
        prop_assert_eq!(again, p);
        prop_assert!(p.contains(&p));
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        prop_assert_eq!(p.to_string().parse::<Prefix>().unwrap(), p);
    }

    #[test]
    fn prefix_containment_is_antisymmetric_for_distinct(p in arb_prefix(), q in arb_prefix()) {
        if p != q && p.contains(&q) {
            prop_assert!(!q.contains(&p));
        }
    }

    #[test]
    fn path_display_parse_roundtrip(path in arb_path()) {
        let s = path.to_string();
        let parsed: AsPath = s.parse().unwrap();
        // Empty sets/segments may normalize; compare via the ASN stream.
        let a: Vec<Asn> = path.iter().collect();
        let b: Vec<Asn> = parsed.iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prepend_increases_length_by_count(path in arb_path(), asn in arb_asn(), count in 0usize..5) {
        let before = path.path_length();
        let after = path.prepended(asn, count).path_length();
        prop_assert_eq!(after, before + count);
    }

    #[test]
    fn prepended_path_contains_the_prepended_asn(path in arb_path(), asn in arb_asn()) {
        prop_assert!(path.prepended(asn, 1).contains(asn));
        prop_assert_eq!(path.prepended(asn, 1).head(), Some(asn));
    }

    #[test]
    fn unique_asns_has_no_duplicates(path in arb_path()) {
        let unique = path.unique_asns();
        let mut sorted = unique.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), unique.len());
        // And every unique ASN is on-path.
        for asn in unique {
            prop_assert!(path.contains(asn));
        }
    }

    #[test]
    fn path_length_counts_sets_once(asns in prop::collection::vec(arb_asn(), 1..6)) {
        let set_path = AsPath::from_segments(vec![PathSegment::Set(asns.clone())]);
        prop_assert_eq!(set_path.path_length(), 1);
        let seq_path = AsPath::from_segments(vec![PathSegment::Sequence(asns.clone())]);
        prop_assert_eq!(seq_path.path_length(), asns.len());
    }

    #[test]
    fn next_toward_origin_is_on_path(path in arb_path(), asn in arb_asn()) {
        if let Some(next) = path.next_toward_origin(asn) {
            prop_assert!(path.contains(asn));
            prop_assert!(path.contains(next));
            prop_assert_ne!(next, asn);
        }
    }
}
