//! Error type for parsing the textual forms of BGP values.

use std::fmt;

/// An error produced when parsing the textual representation of a BGP value
/// (ASN, prefix, community, AS path, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What kind of value was being parsed (e.g. `"community"`).
    pub what: &'static str,
    /// The offending input, truncated for display.
    pub input: String,
    /// Human-readable reason.
    pub reason: String,
}

impl ParseError {
    /// Create a new parse error for `what`, failing on `input` for `reason`.
    pub fn new(what: &'static str, input: &str, reason: impl Into<String>) -> Self {
        let mut input = input.to_string();
        if input.len() > 64 {
            input.truncate(64);
            input.push('…');
        }
        ParseError {
            what,
            input,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} {:?}: {}", self.what, self.input, self.reason)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_reason() {
        let e = ParseError::new("community", "1299:x", "bad beta");
        let s = e.to_string();
        assert!(s.contains("community"));
        assert!(s.contains("1299:x"));
        assert!(s.contains("bad beta"));
    }

    #[test]
    fn long_input_is_truncated() {
        let long = "a".repeat(200);
        let e = ParseError::new("asn", &long, "too long");
        assert!(e.input.chars().count() <= 65);
        assert!(e.input.ends_with('…'));
    }
}
