//! Parsed routes: a prefix plus the BGP path attributes the pipeline reads.

use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::aspath::AsPath;
use crate::community::{Community, LargeCommunity};
use crate::prefix::Prefix;

/// BGP ORIGIN attribute (RFC 4271 §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Origin {
    /// Learned from an IGP (`ORIGIN=IGP`, wire value 0).
    #[default]
    Igp,
    /// Learned from EGP (wire value 1, historical).
    Egp,
    /// Incomplete — typically redistributed (wire value 2).
    Incomplete,
}

impl Origin {
    /// RFC 4271 wire encoding.
    pub const fn to_u8(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decode from the wire value.
    pub const fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

/// The path attributes of a route that this pipeline consumes or encodes.
///
/// This is the analytical (already parsed) representation; the wire form
/// lives in the `bgp-mrt` crate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAttrs {
    /// ORIGIN attribute.
    pub origin: Origin,
    /// AS_PATH attribute.
    pub as_path: AsPath,
    /// NEXT_HOP attribute.
    pub next_hop: IpAddr,
    /// MULTI_EXIT_DISC, if present.
    pub med: Option<u32>,
    /// LOCAL_PREF, if present (iBGP only in real deployments; the simulator
    /// records it for introspection).
    pub local_pref: Option<u32>,
    /// Regular communities (RFC 1997), order preserved as announced.
    pub communities: Vec<Community>,
    /// Large communities (RFC 8092).
    pub large_communities: Vec<LargeCommunity>,
    /// ATOMIC_AGGREGATE flag.
    pub atomic_aggregate: bool,
}

impl RouteAttrs {
    /// Attributes for a freshly originated route with the given path and
    /// next hop and no optional attributes.
    pub fn originated(as_path: AsPath, next_hop: IpAddr) -> Self {
        RouteAttrs {
            origin: Origin::Igp,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
            large_communities: Vec::new(),
            atomic_aggregate: false,
        }
    }

    /// Add a regular community if not already present (BGP communities are a
    /// set on the wire; duplicates are legal but meaningless).
    pub fn add_community(&mut self, c: Community) {
        if !self.communities.contains(&c) {
            self.communities.push(c);
        }
    }

    /// Remove every community whose authority (`α`) is `asn` — what a router
    /// does with `set comm-list delete` when scrubbing a neighbor's values.
    pub fn strip_communities_of(&mut self, asn: u16) {
        self.communities.retain(|c| c.asn != asn);
    }

    /// Remove all communities (the "≈400 ASes filter all communities"
    /// behaviour from §5.1).
    pub fn strip_all_communities(&mut self) {
        self.communities.clear();
        self.large_communities.clear();
    }
}

impl Default for RouteAttrs {
    fn default() -> Self {
        RouteAttrs::originated(AsPath::empty(), IpAddr::from([0, 0, 0, 0]))
    }
}

/// A route announcement: a prefix and its attributes, as recorded by a
/// vantage point or carried in an UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix (NLRI).
    pub prefix: Prefix,
    /// The route's attributes.
    pub attrs: RouteAttrs,
}

impl Announcement {
    /// Convenience constructor.
    pub fn new(prefix: Prefix, attrs: RouteAttrs) -> Self {
        Announcement { prefix, attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;

    #[test]
    fn origin_wire_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_u8(o.to_u8()), Some(o));
        }
        assert_eq!(Origin::from_u8(3), None);
    }

    #[test]
    fn add_community_deduplicates() {
        let mut attrs = RouteAttrs::default();
        let c = Community::new(1299, 2569);
        attrs.add_community(c);
        attrs.add_community(c);
        assert_eq!(attrs.communities, vec![c]);
    }

    #[test]
    fn strip_by_authority() {
        let mut attrs = RouteAttrs::default();
        attrs.add_community(Community::new(1299, 2569));
        attrs.add_community(Community::new(3356, 100));
        attrs.strip_communities_of(1299);
        assert_eq!(attrs.communities, vec![Community::new(3356, 100)]);
    }

    #[test]
    fn strip_all_clears_both_kinds() {
        let mut attrs = RouteAttrs::default();
        attrs.add_community(Community::new(1299, 2569));
        attrs
            .large_communities
            .push(LargeCommunity::new(1299, 1, 2));
        attrs.strip_all_communities();
        assert!(attrs.communities.is_empty());
        assert!(attrs.large_communities.is_empty());
    }

    #[test]
    fn originated_has_no_optional_attrs() {
        let attrs = RouteAttrs::originated(
            AsPath::from_sequence([Asn::new(64496)]),
            IpAddr::from([192, 0, 2, 1]),
        );
        assert_eq!(attrs.med, None);
        assert_eq!(attrs.local_pref, None);
        assert!(attrs.communities.is_empty());
        assert!(!attrs.atomic_aggregate);
    }
}
