//! IP prefixes (CIDR blocks) for route NLRI.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// An IPv4 or IPv6 prefix in canonical form: all bits beyond the prefix
/// length are zero.
///
/// Construction through [`Prefix::new`] masks host bits, so two textual
/// spellings of the same block (`10.0.0.1/8` and `10.0.0.0/8`) compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: IpAddr,
    len: u8,
}

impl Prefix {
    /// Create a prefix, masking any host bits in `addr`.
    ///
    /// Returns `None` when `len` exceeds the address family's bit width
    /// (32 for IPv4, 128 for IPv6).
    pub fn new(addr: IpAddr, len: u8) -> Option<Self> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return None;
        }
        Some(Prefix {
            addr: mask_addr(addr, len),
            len,
        })
    }

    /// Create an IPv4 prefix from octets; panics on invalid length.
    ///
    /// Convenience for tests and generators where the length is a constant.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Prefix::new(IpAddr::V4(Ipv4Addr::new(a, b, c, d)), len)
            .expect("IPv4 prefix length must be <= 32")
    }

    /// The canonical network address.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether the prefix length is zero (clippy-mandated companion to
    /// [`Prefix::len`]; identical to [`Prefix::is_default_route`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is the zero-length default route (`0.0.0.0/0` or `::/0`).
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// Whether this prefix is IPv4.
    pub fn is_ipv4(&self) -> bool {
        self.addr.is_ipv4()
    }

    /// Whether `other` is equal to or more specific than (contained in) `self`.
    ///
    /// Prefixes of different address families never contain each other.
    pub fn contains(&self, other: &Prefix) -> bool {
        if other.len < self.len {
            return false;
        }
        match (self.addr, other.addr) {
            (IpAddr::V4(a), IpAddr::V4(b)) => mask_v4(b, self.len) == a,
            (IpAddr::V6(a), IpAddr::V6(b)) => mask_v6(b, self.len) == a,
            _ => false,
        }
    }
}

fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(a) => IpAddr::V4(mask_v4(a, len)),
        IpAddr::V6(a) => IpAddr::V6(mask_v6(a, len)),
    }
}

fn mask_v4(a: Ipv4Addr, len: u8) -> Ipv4Addr {
    let raw = u32::from(a);
    let masked = if len == 0 {
        0
    } else {
        raw & (u32::MAX << (32 - len as u32))
    };
    Ipv4Addr::from(masked)
}

fn mask_v6(a: Ipv6Addr, len: u8) -> Ipv6Addr {
    let raw = u128::from(a);
    let masked = if len == 0 {
        0
    } else {
        raw & (u128::MAX << (128 - len as u32))
    };
    Ipv6Addr::from(masked)
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new("prefix", s, "expected addr/len"))?;
        let addr = addr
            .parse::<IpAddr>()
            .map_err(|e| ParseError::new("prefix", s, e.to_string()))?;
        let len = len
            .parse::<u8>()
            .map_err(|e| ParseError::new("prefix", s, e.to_string()))?;
        Prefix::new(addr, len).ok_or_else(|| ParseError::new("prefix", s, "length too long"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let a: Prefix = "10.1.2.3/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn rejects_overlong() {
        assert!(Prefix::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 33).is_none());
        assert!("::/129".parse::<Prefix>().is_err());
        assert!(Prefix::new("::".parse().unwrap(), 128).is_some());
    }

    #[test]
    fn contains_more_specifics() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let more: Prefix = "192.0.2.128/25".parse().unwrap();
        let other: Prefix = "192.0.3.0/24".parse().unwrap();
        assert!(p.contains(&more));
        assert!(p.contains(&p));
        assert!(!p.contains(&other));
        assert!(!more.contains(&p)); // less specific not contained
    }

    #[test]
    fn contains_is_family_aware() {
        let v4: Prefix = "0.0.0.0/0".parse().unwrap();
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(!v4.contains(&v6));
        assert!(!v6.contains(&v4));
        assert!(v4.is_default_route());
    }

    #[test]
    fn ipv6_masking() {
        let p: Prefix = "2001:db8:ffff::1/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
    }

    #[test]
    fn zero_length_masks_to_zero() {
        let p = Prefix::new("203.0.113.9".parse().unwrap(), 0).unwrap();
        assert_eq!(p.to_string(), "0.0.0.0/0");
    }

    #[test]
    fn v4_helper() {
        assert_eq!(
            Prefix::v4(198, 51, 100, 0, 24).to_string(),
            "198.51.100.0/24"
        );
    }

    #[test]
    #[should_panic(expected = "IPv4 prefix length")]
    fn v4_helper_panics_on_bad_len() {
        let _ = Prefix::v4(198, 51, 100, 0, 40);
    }
}
