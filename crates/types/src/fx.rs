//! A fast, non-cryptographic hasher for the analysis hot paths.
//!
//! `std`'s default SipHash is DoS-resistant but costs real throughput on the
//! pipeline's hottest maps (path interning, tuple dedup, per-community
//! counters), where keys come from data we generated or already validated.
//! This is an in-tree FxHash-style multiply-rotate hasher: each 8-byte word
//! is folded in with a rotate, xor, and multiply by a large odd constant.
//! Not keyed, not collision-resistant against adversaries — use only for
//! in-process maps, never for anything an attacker chooses unboundedly.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplier: a large odd constant with well-mixed bits (derived from the
/// golden ratio, as in FxHash).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Rotation applied before each fold, so word order matters.
const ROTATE: u32 = 5;

/// The hasher state. Construct through [`FxBuildHasher`] / `Default`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.fold(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (word, tail) = rest.split_at(4);
            self.fold(u32::from_le_bytes(word.try_into().expect("4 bytes")) as u64);
            rest = tail;
        }
        for &b in rest {
            self.fold(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Build with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`]. Build with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value to a `u64` (e.g. for shard routing). Deterministic across
/// runs and platforms: the hasher is unkeyed and folds little-endian words.
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = fx_hash_one("10 1299 64496");
        let b = fx_hash_one("10 1299 64496");
        assert_eq!(a, b);
        assert_ne!(a, fx_hash_one("10 1299 64497"));
    }

    #[test]
    fn word_order_matters() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn byte_stream_tail_is_mixed() {
        // Streams differing only in the trailing partial word must differ.
        assert_ne!(fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]), {
            fx_hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..])
        });
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        map.insert(7, 49);
        assert_eq!(map.get(&7), Some(&49));
        let mut set: FxHashSet<&str> = FxHashSet::default();
        assert!(set.insert("x"));
        assert!(!set.insert("x"));
    }
}
