//! AS paths and the on-path membership tests the inference method uses.
//!
//! The paper's core signal is whether the community authority `α` "appears in
//! the AS path" of the routes carrying `α:β`. This module provides the path
//! representation ([`AsPath`]) plus the operations the pipeline needs:
//! membership, origin extraction, the adjacency lookups behind the Fig 7
//! customer:peer feature, and prepend-aware de-duplication.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::ParseError;

/// Canonical segment tag for `AS_SET`, matching the RFC 4271 wire value.
pub const SEG_SET: u8 = 1;
/// Canonical segment tag for `AS_SEQUENCE`, matching the RFC 4271 wire value.
pub const SEG_SEQUENCE: u8 = 2;

/// One segment of an AS path (RFC 4271 §4.3 / §5.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathSegment {
    /// An ordered sequence of ASNs (`AS_SEQUENCE`).
    Sequence(Vec<Asn>),
    /// An unordered set of ASNs, produced by route aggregation (`AS_SET`).
    Set(Vec<Asn>),
}

impl PathSegment {
    /// The canonical wire tag of this segment kind ([`SEG_SET`] /
    /// [`SEG_SEQUENCE`]).
    pub fn tag(&self) -> u8 {
        match self {
            PathSegment::Sequence(_) => SEG_SEQUENCE,
            PathSegment::Set(_) => SEG_SET,
        }
    }

    /// The ASNs in this segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            PathSegment::Sequence(v) | PathSegment::Set(v) => v,
        }
    }

    /// RFC 4271 path-length contribution: each sequence element counts one,
    /// a set counts one regardless of size.
    pub fn path_length(&self) -> usize {
        match self {
            PathSegment::Sequence(v) => v.len(),
            PathSegment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// A full AS path: the neighbor that announced the route is leftmost, the
/// origin AS rightmost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AsPath {
    segments: Vec<PathSegment>,
}

/// The canonical path hash walks the flat wire shape — segment count, then
/// per segment its tag ([`SEG_SET`]/[`SEG_SEQUENCE`]), ASN count, and raw
/// ASN values — so a borrowed [`AsPathView`] over flat arrays fingerprints
/// identically to the owned path without materializing it.
impl Hash for AsPath {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.segments.len());
        for seg in &self.segments {
            state.write_u8(seg.tag());
            let asns = seg.asns();
            state.write_usize(asns.len());
            for asn in asns {
                state.write_u32(asn.value());
            }
        }
    }
}

/// A borrowed AS path over flat arrays: segment descriptors plus the
/// concatenated ASN values, typically slices into an [`ObservationStore`]
/// pool or a decoder's scratch arena. Semantically identical to the
/// [`AsPath`] it would materialize, including hashing.
///
/// [`ObservationStore`]: crate::store::ObservationStore
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsPathView<'a> {
    /// Per-segment `(tag, ASN count)` pairs; tags are [`SEG_SET`] /
    /// [`SEG_SEQUENCE`]. Counts sum to `asns.len()`.
    pub segs: &'a [(u8, u32)],
    /// Every ASN value in path order (leftmost first), sets inline.
    pub asns: &'a [u32],
}

impl<'a> AsPathView<'a> {
    /// View of an owned path's flat form, given caller-provided scratch.
    pub fn of(path: &AsPath, segs: &'a mut Vec<(u8, u32)>, asns: &'a mut Vec<u32>) -> Self {
        segs.clear();
        asns.clear();
        for seg in path.segments() {
            segs.push((seg.tag(), seg.asns().len() as u32));
            asns.extend(seg.asns().iter().map(|a| a.value()));
        }
        AsPathView { segs, asns }
    }

    /// The canonical fingerprint — equals `fx_hash_one(&self.to_path())`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fx::FxHasher::default();
        h.write_usize(self.segs.len());
        let mut rest = self.asns;
        for &(tag, len) in self.segs {
            h.write_u8(tag);
            h.write_usize(len as usize);
            let (seg, tail) = rest.split_at(len as usize);
            for &asn in seg {
                h.write_u32(asn);
            }
            rest = tail;
        }
        h.finish()
    }

    /// Whether this view denotes the same path as `path`.
    pub fn matches(&self, path: &AsPath) -> bool {
        let segments = path.segments();
        if segments.len() != self.segs.len() {
            return false;
        }
        let mut rest = self.asns;
        for (seg, &(tag, len)) in segments.iter().zip(self.segs) {
            let asns = seg.asns();
            if seg.tag() != tag || asns.len() != len as usize {
                return false;
            }
            let (head, tail) = rest.split_at(len as usize);
            if !asns.iter().zip(head).all(|(a, &v)| a.value() == v) {
                return false;
            }
            rest = tail;
        }
        true
    }

    /// Materialize the owned path.
    pub fn to_path(&self) -> AsPath {
        let mut rest = self.asns;
        let segments = self
            .segs
            .iter()
            .map(|&(tag, len)| {
                let (seg, tail) = rest.split_at(len as usize);
                rest = tail;
                let asns: Vec<Asn> = seg.iter().map(|&v| Asn::new(v)).collect();
                if tag == SEG_SET {
                    PathSegment::Set(asns)
                } else {
                    PathSegment::Sequence(asns)
                }
            })
            .collect();
        AsPath::from_segments(segments)
    }
}

impl AsPath {
    /// An empty path (as sent by a route's originator over iBGP).
    pub fn empty() -> Self {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Build a path consisting of a single `AS_SEQUENCE`.
    pub fn from_sequence(asns: impl IntoIterator<Item = Asn>) -> Self {
        AsPath {
            segments: vec![PathSegment::Sequence(asns.into_iter().collect())],
        }
    }

    /// Build a path from explicit segments.
    pub fn from_segments(segments: Vec<PathSegment>) -> Self {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Whether the path has no ASNs at all.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// RFC 4271 decision-process length (prepending inflates this).
    pub fn path_length(&self) -> usize {
        self.segments.iter().map(PathSegment::path_length).sum()
    }

    /// Iterate over every ASN mention, leftmost (most recent) first,
    /// including duplicates from prepending and the contents of sets.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// The origin AS: the last ASN of the path, if any.
    ///
    /// When the path ends in an `AS_SET` (aggregated route) the origin is
    /// ambiguous; this returns the set's last stored member, matching the
    /// common "pick one" convention of measurement pipelines.
    pub fn origin(&self) -> Option<Asn> {
        self.iter().last()
    }

    /// The neighbor AS that announced this route to the observer: the first
    /// ASN of the path.
    pub fn head(&self) -> Option<Asn> {
        self.iter().next()
    }

    /// Whether `asn` appears anywhere in the path — the paper's **on-path**
    /// test for a single ASN.
    pub fn contains(&self, asn: Asn) -> bool {
        self.iter().any(|a| a == asn)
    }

    /// Whether any of `asns` appears in the path — the paper's on-path test
    /// including siblings ("the ASN (or a sibling thereof)").
    pub fn contains_any(&self, asns: &[Asn]) -> bool {
        self.iter().any(|a| asns.contains(&a))
    }

    /// The distinct ASNs of the path in first-appearance order, collapsing
    /// prepends. This is the unit for "unique AS paths" counting.
    pub fn unique_asns(&self) -> Vec<Asn> {
        let mut seen = Vec::new();
        for asn in self.iter() {
            if !seen.contains(&asn) {
                seen.push(asn);
            }
        }
        seen
    }

    /// The ASN immediately *after* (to the right of, i.e. announced the route
    /// to) the first occurrence of `asn` in the collapsed path.
    ///
    /// This is the "subsequent AS in the path" of §5.1: for a route
    /// `… 1299 64496`, `next_toward_origin(1299)` is `64496`, the neighbor
    /// that AS 1299 learned the route from. Returns `None` when `asn` is the
    /// origin or absent.
    pub fn next_toward_origin(&self, asn: Asn) -> Option<Asn> {
        let collapsed = self.unique_asns();
        collapsed
            .iter()
            .position(|&a| a == asn)
            .and_then(|i| collapsed.get(i + 1))
            .copied()
    }

    /// Prepend `asn` to the front `count` times, as a router does when
    /// exporting (count > 1 models AS-path prepending for traffic
    /// engineering).
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(PathSegment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                self.segments
                    .insert(0, PathSegment::Sequence(vec![asn; count]));
            }
        }
    }

    /// A copy with `asn` prepended `count` times.
    pub fn prepended(&self, asn: Asn, count: usize) -> Self {
        let mut p = self.clone();
        p.prepend(asn, count);
        p
    }

    /// Whether the collapsed path contains a loop (an ASN appearing in two
    /// non-adjacent positions). Loop-free is an invariant of valid BGP
    /// propagation; the simulator's property tests check it.
    pub fn has_loop(&self) -> bool {
        let mut last: Option<Asn> = None;
        let mut seen = Vec::new();
        for asn in self.iter() {
            if last == Some(asn) {
                continue; // prepending is not a loop
            }
            if seen.contains(&asn) {
                return true;
            }
            seen.push(asn);
            last = Some(asn);
        }
        false
    }
}

impl fmt::Display for AsPath {
    /// Space-separated ASNs; `AS_SET` segments render as `{a,b,c}`, matching
    /// the conventional looking-glass format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                PathSegment::Sequence(v) => {
                    for asn in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{asn}")?;
                        first = false;
                    }
                }
                PathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{asn}")?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<PathSegment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(inner) = token.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| ParseError::new("as path", s, "unterminated AS_SET"))?;
                if !seq.is_empty() {
                    segments.push(PathSegment::Sequence(std::mem::take(&mut seq)));
                }
                let set = inner
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse::<Asn>())
                    .collect::<Result<Vec<_>, _>>()?;
                segments.push(PathSegment::Set(set));
            } else {
                seq.push(token.parse::<Asn>()?);
            }
        }
        if !seq.is_empty() {
            segments.push(PathSegment::Sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath::from_sequence(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().copied().map(Asn::new))
    }

    #[test]
    fn origin_and_head() {
        let p = path(&[65269, 7018, 1299, 64496]);
        assert_eq!(p.origin(), Some(Asn::new(64496)));
        assert_eq!(p.head(), Some(Asn::new(65269)));
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn on_path_membership() {
        let p = path(&[65269, 7018, 1299, 64496]);
        assert!(p.contains(Asn::new(1299)));
        assert!(!p.contains(Asn::new(3356)));
        assert!(p.contains_any(&[Asn::new(9), Asn::new(7018)]));
        assert!(!p.contains_any(&[]));
    }

    #[test]
    fn prepend_inflates_length_but_not_unique() {
        let mut p = path(&[3356, 64496]);
        p.prepend(Asn::new(1299), 3);
        assert_eq!(p.path_length(), 5);
        assert_eq!(
            p.unique_asns(),
            vec![Asn::new(1299), Asn::new(3356), Asn::new(64496)]
        );
        assert!(!p.has_loop());
    }

    #[test]
    fn prepend_zero_is_noop() {
        let mut p = path(&[3356]);
        p.prepend(Asn::new(1299), 0);
        assert_eq!(p, path(&[3356]));
    }

    #[test]
    fn prepend_onto_empty_path() {
        let mut p = AsPath::empty();
        p.prepend(Asn::new(1299), 2);
        assert_eq!(p.path_length(), 2);
        assert_eq!(p.origin(), Some(Asn::new(1299)));
    }

    #[test]
    fn next_toward_origin_matches_fig5() {
        // RC3 path from Fig 5: 65269 7018 1299 64496, community 1299:2569.
        let p = path(&[65269, 7018, 1299, 64496]);
        assert_eq!(p.next_toward_origin(Asn::new(1299)), Some(Asn::new(64496)));
        assert_eq!(p.next_toward_origin(Asn::new(64496)), None); // origin
        assert_eq!(p.next_toward_origin(Asn::new(3356)), None); // off-path
    }

    #[test]
    fn next_toward_origin_skips_prepends() {
        let p = path(&[7018, 1299, 1299, 1299, 64496]);
        assert_eq!(p.next_toward_origin(Asn::new(1299)), Some(Asn::new(64496)));
    }

    #[test]
    fn loop_detection() {
        assert!(path(&[1, 2, 1]).has_loop());
        assert!(!path(&[1, 1, 2]).has_loop()); // prepend
        assert!(!path(&[1, 2, 3]).has_loop());
        assert!(!AsPath::empty().has_loop());
    }

    #[test]
    fn set_segment_length_counts_one() {
        let p = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(3356)]),
            PathSegment::Set(vec![Asn::new(9), Asn::new(10)]),
        ]);
        assert_eq!(p.path_length(), 2);
        assert!(p.contains(Asn::new(10)));
        assert_eq!(p.origin(), Some(Asn::new(10)));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let p = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(65269), Asn::new(7018)]),
            PathSegment::Set(vec![Asn::new(64496), Asn::new(64497)]),
        ]);
        let s = p.to_string();
        assert_eq!(s, "65269 7018 {64496,64497}");
        assert_eq!(s.parse::<AsPath>().unwrap(), p);
    }

    #[test]
    fn parse_plain_sequence() {
        let p: AsPath = "65269 7018 1299 64496".parse().unwrap();
        assert_eq!(p, path(&[65269, 7018, 1299, 64496]));
        assert!("65269 {1,2".parse::<AsPath>().is_err());
        assert!("abc".parse::<AsPath>().is_err());
    }

    #[test]
    fn empty_parse() {
        let p: AsPath = "".parse().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.path_length(), 0);
    }

    #[test]
    fn view_fingerprint_matches_owned_hash() {
        use crate::fx::fx_hash_one;
        let paths: Vec<AsPath> = [
            "65269 7018 1299 64496",
            "65269 7018 {64496,64497}",
            "{1,2} 3 {4}",
            "7 7 7",
            "",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let mut segs = Vec::new();
        let mut asns = Vec::new();
        for p in &paths {
            let view = AsPathView::of(p, &mut segs, &mut asns);
            assert_eq!(view.fingerprint(), fx_hash_one(p), "{p}");
            assert!(view.matches(p), "{p}");
            assert_eq!(view.to_path(), *p, "{p}");
        }
    }

    #[test]
    fn view_matches_rejects_near_misses() {
        let p: AsPath = "65269 7018 {64496,64497}".parse().unwrap();
        let mut segs = Vec::new();
        let mut asns = Vec::new();
        let _ = AsPathView::of(&p, &mut segs, &mut asns);
        // Same flat ASNs, different segmentation / tags must not match.
        let seq_only = AsPathView {
            segs: &[(SEG_SEQUENCE, 4)],
            asns: &[65269, 7018, 64496, 64497],
        };
        assert!(!seq_only.matches(&p));
        let set_as_seq = AsPathView {
            segs: &[(SEG_SEQUENCE, 2), (SEG_SEQUENCE, 2)],
            asns: &[65269, 7018, 64496, 64497],
        };
        assert!(!set_as_seq.matches(&p));
        let view = AsPathView {
            segs: &segs,
            asns: &asns,
        };
        assert_ne!(view.fingerprint(), seq_only.fingerprint());
        assert_ne!(view.fingerprint(), set_as_seq.fingerprint());
    }

    #[test]
    fn segment_boundaries_change_the_hash() {
        use crate::fx::fx_hash_one;
        let a: AsPath = "1 2 3".parse().unwrap();
        let b = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(1)]),
            PathSegment::Sequence(vec![Asn::new(2), Asn::new(3)]),
        ]);
        assert_ne!(a, b);
        assert_ne!(fx_hash_one(&a), fx_hash_one(&b));
    }
}
