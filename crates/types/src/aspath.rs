//! AS paths and the on-path membership tests the inference method uses.
//!
//! The paper's core signal is whether the community authority `α` "appears in
//! the AS path" of the routes carrying `α:β`. This module provides the path
//! representation ([`AsPath`]) plus the operations the pipeline needs:
//! membership, origin extraction, the adjacency lookups behind the Fig 7
//! customer:peer feature, and prepend-aware de-duplication.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::ParseError;

/// One segment of an AS path (RFC 4271 §4.3 / §5.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathSegment {
    /// An ordered sequence of ASNs (`AS_SEQUENCE`).
    Sequence(Vec<Asn>),
    /// An unordered set of ASNs, produced by route aggregation (`AS_SET`).
    Set(Vec<Asn>),
}

impl PathSegment {
    /// The ASNs in this segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            PathSegment::Sequence(v) | PathSegment::Set(v) => v,
        }
    }

    /// RFC 4271 path-length contribution: each sequence element counts one,
    /// a set counts one regardless of size.
    pub fn path_length(&self) -> usize {
        match self {
            PathSegment::Sequence(v) => v.len(),
            PathSegment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// A full AS path: the neighbor that announced the route is leftmost, the
/// origin AS rightmost.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AsPath {
    segments: Vec<PathSegment>,
}

impl AsPath {
    /// An empty path (as sent by a route's originator over iBGP).
    pub fn empty() -> Self {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Build a path consisting of a single `AS_SEQUENCE`.
    pub fn from_sequence(asns: impl IntoIterator<Item = Asn>) -> Self {
        AsPath {
            segments: vec![PathSegment::Sequence(asns.into_iter().collect())],
        }
    }

    /// Build a path from explicit segments.
    pub fn from_segments(segments: Vec<PathSegment>) -> Self {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Whether the path has no ASNs at all.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// RFC 4271 decision-process length (prepending inflates this).
    pub fn path_length(&self) -> usize {
        self.segments.iter().map(PathSegment::path_length).sum()
    }

    /// Iterate over every ASN mention, leftmost (most recent) first,
    /// including duplicates from prepending and the contents of sets.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// The origin AS: the last ASN of the path, if any.
    ///
    /// When the path ends in an `AS_SET` (aggregated route) the origin is
    /// ambiguous; this returns the set's last stored member, matching the
    /// common "pick one" convention of measurement pipelines.
    pub fn origin(&self) -> Option<Asn> {
        self.iter().last()
    }

    /// The neighbor AS that announced this route to the observer: the first
    /// ASN of the path.
    pub fn head(&self) -> Option<Asn> {
        self.iter().next()
    }

    /// Whether `asn` appears anywhere in the path — the paper's **on-path**
    /// test for a single ASN.
    pub fn contains(&self, asn: Asn) -> bool {
        self.iter().any(|a| a == asn)
    }

    /// Whether any of `asns` appears in the path — the paper's on-path test
    /// including siblings ("the ASN (or a sibling thereof)").
    pub fn contains_any(&self, asns: &[Asn]) -> bool {
        self.iter().any(|a| asns.contains(&a))
    }

    /// The distinct ASNs of the path in first-appearance order, collapsing
    /// prepends. This is the unit for "unique AS paths" counting.
    pub fn unique_asns(&self) -> Vec<Asn> {
        let mut seen = Vec::new();
        for asn in self.iter() {
            if !seen.contains(&asn) {
                seen.push(asn);
            }
        }
        seen
    }

    /// The ASN immediately *after* (to the right of, i.e. announced the route
    /// to) the first occurrence of `asn` in the collapsed path.
    ///
    /// This is the "subsequent AS in the path" of §5.1: for a route
    /// `… 1299 64496`, `next_toward_origin(1299)` is `64496`, the neighbor
    /// that AS 1299 learned the route from. Returns `None` when `asn` is the
    /// origin or absent.
    pub fn next_toward_origin(&self, asn: Asn) -> Option<Asn> {
        let collapsed = self.unique_asns();
        collapsed
            .iter()
            .position(|&a| a == asn)
            .and_then(|i| collapsed.get(i + 1))
            .copied()
    }

    /// Prepend `asn` to the front `count` times, as a router does when
    /// exporting (count > 1 models AS-path prepending for traffic
    /// engineering).
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(PathSegment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                self.segments
                    .insert(0, PathSegment::Sequence(vec![asn; count]));
            }
        }
    }

    /// A copy with `asn` prepended `count` times.
    pub fn prepended(&self, asn: Asn, count: usize) -> Self {
        let mut p = self.clone();
        p.prepend(asn, count);
        p
    }

    /// Whether the collapsed path contains a loop (an ASN appearing in two
    /// non-adjacent positions). Loop-free is an invariant of valid BGP
    /// propagation; the simulator's property tests check it.
    pub fn has_loop(&self) -> bool {
        let mut last: Option<Asn> = None;
        let mut seen = Vec::new();
        for asn in self.iter() {
            if last == Some(asn) {
                continue; // prepending is not a loop
            }
            if seen.contains(&asn) {
                return true;
            }
            seen.push(asn);
            last = Some(asn);
        }
        false
    }
}

impl fmt::Display for AsPath {
    /// Space-separated ASNs; `AS_SET` segments render as `{a,b,c}`, matching
    /// the conventional looking-glass format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                PathSegment::Sequence(v) => {
                    for asn in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{asn}")?;
                        first = false;
                    }
                }
                PathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{asn}")?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<PathSegment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(inner) = token.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| ParseError::new("as path", s, "unterminated AS_SET"))?;
                if !seq.is_empty() {
                    segments.push(PathSegment::Sequence(std::mem::take(&mut seq)));
                }
                let set = inner
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse::<Asn>())
                    .collect::<Result<Vec<_>, _>>()?;
                segments.push(PathSegment::Set(set));
            } else {
                seq.push(token.parse::<Asn>()?);
            }
        }
        if !seq.is_empty() {
            segments.push(PathSegment::Sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath::from_sequence(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_sequence(asns.iter().copied().map(Asn::new))
    }

    #[test]
    fn origin_and_head() {
        let p = path(&[65269, 7018, 1299, 64496]);
        assert_eq!(p.origin(), Some(Asn::new(64496)));
        assert_eq!(p.head(), Some(Asn::new(65269)));
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn on_path_membership() {
        let p = path(&[65269, 7018, 1299, 64496]);
        assert!(p.contains(Asn::new(1299)));
        assert!(!p.contains(Asn::new(3356)));
        assert!(p.contains_any(&[Asn::new(9), Asn::new(7018)]));
        assert!(!p.contains_any(&[]));
    }

    #[test]
    fn prepend_inflates_length_but_not_unique() {
        let mut p = path(&[3356, 64496]);
        p.prepend(Asn::new(1299), 3);
        assert_eq!(p.path_length(), 5);
        assert_eq!(
            p.unique_asns(),
            vec![Asn::new(1299), Asn::new(3356), Asn::new(64496)]
        );
        assert!(!p.has_loop());
    }

    #[test]
    fn prepend_zero_is_noop() {
        let mut p = path(&[3356]);
        p.prepend(Asn::new(1299), 0);
        assert_eq!(p, path(&[3356]));
    }

    #[test]
    fn prepend_onto_empty_path() {
        let mut p = AsPath::empty();
        p.prepend(Asn::new(1299), 2);
        assert_eq!(p.path_length(), 2);
        assert_eq!(p.origin(), Some(Asn::new(1299)));
    }

    #[test]
    fn next_toward_origin_matches_fig5() {
        // RC3 path from Fig 5: 65269 7018 1299 64496, community 1299:2569.
        let p = path(&[65269, 7018, 1299, 64496]);
        assert_eq!(p.next_toward_origin(Asn::new(1299)), Some(Asn::new(64496)));
        assert_eq!(p.next_toward_origin(Asn::new(64496)), None); // origin
        assert_eq!(p.next_toward_origin(Asn::new(3356)), None); // off-path
    }

    #[test]
    fn next_toward_origin_skips_prepends() {
        let p = path(&[7018, 1299, 1299, 1299, 64496]);
        assert_eq!(p.next_toward_origin(Asn::new(1299)), Some(Asn::new(64496)));
    }

    #[test]
    fn loop_detection() {
        assert!(path(&[1, 2, 1]).has_loop());
        assert!(!path(&[1, 1, 2]).has_loop()); // prepend
        assert!(!path(&[1, 2, 3]).has_loop());
        assert!(!AsPath::empty().has_loop());
    }

    #[test]
    fn set_segment_length_counts_one() {
        let p = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(3356)]),
            PathSegment::Set(vec![Asn::new(9), Asn::new(10)]),
        ]);
        assert_eq!(p.path_length(), 2);
        assert!(p.contains(Asn::new(10)));
        assert_eq!(p.origin(), Some(Asn::new(10)));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let p = AsPath::from_segments(vec![
            PathSegment::Sequence(vec![Asn::new(65269), Asn::new(7018)]),
            PathSegment::Set(vec![Asn::new(64496), Asn::new(64497)]),
        ]);
        let s = p.to_string();
        assert_eq!(s, "65269 7018 {64496,64497}");
        assert_eq!(s.parse::<AsPath>().unwrap(), p);
    }

    #[test]
    fn parse_plain_sequence() {
        let p: AsPath = "65269 7018 1299 64496".parse().unwrap();
        assert_eq!(p, path(&[65269, 7018, 1299, 64496]));
        assert!("65269 {1,2".parse::<AsPath>().is_err());
        assert!("abc".parse::<AsPath>().is_err());
    }

    #[test]
    fn empty_parse() {
        let p: AsPath = "".parse().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.path_length(), 0);
    }
}
