//! Shared thread-count resolution and a deterministic fork-join helper.
//!
//! Every parallel stage in the workspace — simulator propagation, MRT file
//! ingestion, path statistics, per-AS classification — follows the same
//! contract: a `threads` knob where `0` means "one worker per CPU", and
//! output that is bit-identical to the sequential computation at any thread
//! count. This module centralizes both halves: [`effective_threads`] for
//! the knob and [`par_map_indexed`] for the order-restoring fan-out.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `threads` knob: a positive value is taken literally, `0` means
/// one worker per available CPU (at least 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A panic captured from one parallel job, with the payload rendered as a
/// string (panic payloads are `Box<dyn Any>`; the common `&str`/`String`
/// messages are preserved verbatim, anything else becomes a placeholder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the job whose closure panicked.
    pub job: usize,
    /// The captured panic message.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Render a panic payload as a string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map_indexed`] with per-job panic isolation: each job runs under
/// `catch_unwind`, so one panicking job surfaces as `Err(TaskPanic)` in its
/// own slot while every other job still completes and returns its result.
///
/// This is the supervision primitive for long multi-file runs: a poisoned
/// input must degrade the run (one failed slot), not destroy it (a process
/// abort that loses hours of accumulated work).
pub fn try_par_map_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| TaskPanic {
            job: i,
            message: panic_message(payload.as_ref()),
        })
    };
    let threads = threads.min(jobs);
    if threads <= 1 {
        return (0..jobs).map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, Result<T, TaskPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, run_one(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker never unwinds: jobs are caught"))
            .collect()
    });
    let mut indexed: Vec<(usize, Result<T, TaskPanic>)> = parts.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// Run `f(0..jobs)` across `threads` scoped workers and return the results
/// in job-index order.
///
/// Workers pull job indices from a shared atomic counter (work stealing, so
/// uneven jobs balance), and results are reassembled by index afterwards —
/// the output is therefore independent of scheduling and thread count.
/// With `threads <= 1` (or fewer jobs than that) the closure runs inline on
/// the caller's thread, spawning nothing.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
/// Callers that must survive a poisoned job use [`try_par_map_indexed`].
pub fn par_map_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_indexed(jobs, threads, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(v) => v,
            Err(p) => panic!("parallel worker panicked: {}", p.message),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_counts_are_literal() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(8), 8);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_map_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(par_map_indexed(2, 16, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn panicking_job_is_isolated_to_its_slot() {
        for threads in [1, 2, 8] {
            let out = try_par_map_indexed(10, threads, |i| {
                if i == 3 {
                    panic!("poisoned input {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 10, "threads = {threads}");
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let p = slot.as_ref().unwrap_err();
                    assert_eq!(p.job, 3);
                    assert_eq!(p.message, "poisoned input 3");
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 2), "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let out = try_par_map_indexed(1, 1, |_| -> usize {
            std::panic::panic_any(String::from("owned message"))
        });
        assert_eq!(out[0].as_ref().unwrap_err().message, "owned message");
    }

    #[test]
    fn par_map_indexed_still_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(4, 2, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
