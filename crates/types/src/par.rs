//! Shared thread-count resolution and a deterministic fork-join helper.
//!
//! Every parallel stage in the workspace — simulator propagation, MRT file
//! ingestion, path statistics, per-AS classification — follows the same
//! contract: a `threads` knob where `0` means "one worker per CPU", and
//! output that is bit-identical to the sequential computation at any thread
//! count. This module centralizes both halves: [`effective_threads`] for
//! the knob and [`par_map_indexed`] for the order-restoring fan-out.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `threads` knob: a positive value is taken literally, `0` means
/// one worker per available CPU (at least 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run `f(0..jobs)` across `threads` scoped workers and return the results
/// in job-index order.
///
/// Workers pull job indices from a shared atomic counter (work stealing, so
/// uneven jobs balance), and results are reassembled by index afterwards —
/// the output is therefore independent of scheduling and thread count.
/// With `threads <= 1` (or fewer jobs than that) the closure runs inline on
/// the caller's thread, spawning nothing.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn par_map_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(jobs);
    if threads <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_counts_are_literal() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(8), 8);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_map_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(par_map_indexed(2, 16, |i| i + 1), vec![1, 2]);
    }
}
