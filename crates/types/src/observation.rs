//! Vantage-point observations — the analytical unit of the paper.
//!
//! The method consumes "unique AS path and BGP Community tuples observed in
//! RIBs and updates" (§4). An [`Observation`] is one such sighting: a
//! vantage point, the prefix, the AS path as recorded at the collector, and
//! the communities on the route.

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::aspath::AsPath;
use crate::community::{Community, LargeCommunity};
use crate::prefix::Prefix;

/// One route sighting at a collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The vantage point (collector peer) that exported the route.
    pub vp: Asn,
    /// The observed prefix.
    pub prefix: Prefix,
    /// The AS path as recorded (vantage point first, origin last).
    pub path: AsPath,
    /// Regular communities on the route.
    pub communities: Vec<Community>,
    /// Large communities (RFC 8092) on the route.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub large_communities: Vec<LargeCommunity>,
    /// Unix seconds when the route was (last) observed.
    pub time: u32,
}

impl Observation {
    /// The `(path, communities)` tuple identity used for "unique tuple"
    /// counting in §4. Two observations of the same tuple from different
    /// vantage points or prefixes still count once.
    pub fn tuple_key(&self) -> (&AsPath, &[Community]) {
        (&self.path, &self.communities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_key_ignores_vp_prefix_time() {
        let path: AsPath = "64500 1299 64496".parse().unwrap();
        let communities = vec![Community::new(1299, 2569)];
        let a = Observation {
            vp: Asn::new(64500),
            prefix: "192.0.2.0/24".parse().unwrap(),
            path: path.clone(),
            communities: communities.clone(),
            large_communities: Vec::new(),
            time: 1,
        };
        let b = Observation {
            vp: Asn::new(64501),
            prefix: "198.51.100.0/24".parse().unwrap(),
            path,
            communities,
            large_communities: Vec::new(),
            time: 9,
        };
        assert_eq!(a.tuple_key(), b.tuple_key());
    }
}
