//! Autonomous System Numbers.
//!
//! The inference method cares about three properties of an ASN beyond its
//! numeric value:
//!
//! * whether it fits in 16 bits — only 16-bit ASNs can own a *regular*
//!   community's `α` field (RFC 1997);
//! * whether it is **private** (RFC 6996) — the paper excludes communities
//!   whose `α` is a private ASN from classification;
//! * whether it is **reserved** (RFC 7607, RFC 4893's AS_TRANS, RFC 7300) —
//!   such values never identify a real network.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// An Autonomous System Number (32-bit per RFC 6793).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// First 16-bit private ASN (RFC 6996).
pub const PRIVATE_16_START: u32 = 64512;
/// Last 16-bit private ASN (RFC 6996).
pub const PRIVATE_16_END: u32 = 65534;
/// First 32-bit private ASN (RFC 6996).
pub const PRIVATE_32_START: u32 = 4_200_000_000;
/// Last 32-bit private ASN (RFC 6996).
pub const PRIVATE_32_END: u32 = 4_294_967_294;
/// AS_TRANS, the 16-bit placeholder for 32-bit ASNs (RFC 4893).
pub const AS_TRANS: u32 = 23456;
/// First ASN reserved for documentation (RFC 5398).
pub const DOC_16_START: u32 = 64496;
/// Last ASN of the first documentation block (RFC 5398).
pub const DOC_16_END: u32 = 64511;

impl Asn {
    /// The reserved ASN 0 (RFC 7607).
    pub const RESERVED_ZERO: Asn = Asn(0);

    /// Construct an ASN from a raw `u32`.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this ASN fits in 16 bits and can therefore appear as the `α`
    /// of a regular community.
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Whether this ASN falls in a private-use range (RFC 6996).
    ///
    /// The paper: *"We did not classify communities where the first 16 bits
    /// were from the private ASN range."*
    pub const fn is_private(self) -> bool {
        (self.0 >= PRIVATE_16_START && self.0 <= PRIVATE_16_END)
            || (self.0 >= PRIVATE_32_START && self.0 <= PRIVATE_32_END)
    }

    /// Whether this ASN is reserved and can never identify an operating
    /// network: 0 (RFC 7607), AS_TRANS (RFC 4893), 65535 (RFC 7300),
    /// 4294967295 (RFC 7300), or the documentation blocks (RFC 5398).
    pub const fn is_reserved(self) -> bool {
        matches!(self.0, 0 | AS_TRANS | 65535 | u32::MAX)
            || (self.0 >= DOC_16_START && self.0 <= DOC_16_END)
            || (self.0 >= 65536 && self.0 <= 65551) // RFC 5398 32-bit doc block
    }

    /// Whether this ASN identifies (or could identify) a real, publicly
    /// routable network: neither private nor reserved.
    pub const fn is_public(self) -> bool {
        !self.is_private() && !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<u16> for Asn {
    fn from(value: u16) -> Self {
        Asn(value as u32)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    /// Parse `"3356"` or the RFC 5396 `"AS3356"` form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("AS").unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|e| ParseError::new("asn", s, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bit_boundary() {
        assert!(Asn::new(65535).is_16bit());
        assert!(!Asn::new(65536).is_16bit());
        assert!(Asn::new(0).is_16bit());
    }

    #[test]
    fn private_ranges() {
        assert!(!Asn::new(64511).is_private());
        assert!(Asn::new(64512).is_private());
        assert!(Asn::new(65000).is_private());
        assert!(Asn::new(65534).is_private());
        assert!(!Asn::new(65535).is_private()); // reserved, not private
        assert!(Asn::new(4_200_000_000).is_private());
        assert!(Asn::new(4_294_967_294).is_private());
        assert!(!Asn::new(4_294_967_295).is_private()); // reserved
        assert!(!Asn::new(3356).is_private());
    }

    #[test]
    fn reserved_values() {
        assert!(Asn::new(0).is_reserved());
        assert!(Asn::new(AS_TRANS).is_reserved());
        assert!(Asn::new(65535).is_reserved());
        assert!(Asn::new(u32::MAX).is_reserved());
        assert!(Asn::new(64496).is_reserved()); // documentation
        assert!(Asn::new(64511).is_reserved());
        assert!(!Asn::new(1299).is_reserved());
    }

    #[test]
    fn public_excludes_private_and_reserved() {
        assert!(Asn::new(1299).is_public());
        assert!(Asn::new(3356).is_public());
        assert!(!Asn::new(64512).is_public());
        assert!(!Asn::new(0).is_public());
        assert!(!Asn::new(AS_TRANS).is_public());
    }

    #[test]
    fn parse_plain_and_rfc5396() {
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn::new(3356));
        assert_eq!("AS3356".parse::<Asn>().unwrap(), Asn::new(3356));
        assert!("AS".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        let asn = Asn::new(393226);
        assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn::new(2) < Asn::new(10));
    }
}
